//! Combined batch verification of spends: one small-exponent check per
//! tower group for a whole deposit batch, instead of the full proof
//! gauntlet per spend.
//!
//! The expensive part of [`Spend::verify`] is exponentiations: the
//! Stadler root proof (`zkp_rounds` full-width outer exps), the
//! level-1 linked-representation proof, one OR-proof per deeper edge,
//! plus the per-edge inversions that reconstruct the OR statement.
//! Across a batch, every one of those equations becomes a
//! [`GroupClaim`] and folds into a single Bellare–Garay–Rabin combined
//! check per group (a batch with an invalid spend survives with
//! probability ≤ 2⁻⁶⁴); the edge inversions collapse into one
//! Montgomery batch inversion per tower level.
//!
//! Per-item accept/reject decisions are **bit-identical** to the
//! sequential path, by construction:
//!
//! - the structural screens (depth, edge count), the RSA bank-signature
//!   batch (itself bisection-exact) and the membership screens
//!   reproduce [`Spend::verify`]'s checks in its exact error
//!   precedence;
//! - any spend whose proofs cannot be expressed as claims (a screen
//!   inside an extractor failed) is decided by full sequential
//!   [`Spend::verify`];
//! - a combined-check failure triggers bisection whose base case is
//!   full sequential [`Spend::verify`] — the combined check only ever
//!   *accepts* whole sub-batches, never rejects an item.

use crate::coin::{edge_binding, root_tag_base, token_for};
use crate::error::DecError;
use crate::params::DecParams;
use crate::spend::Spend;
use ppms_bigint::BigUint;
use ppms_crypto::hash::hash_tagged;
use ppms_crypto::rsa::{self, RsaPublicKey};
use ppms_crypto::zkp::ddlog::DdlogStatement;
use ppms_crypto::zkp::{bisect_verify, BatchAccumulator, GroupClaim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sub-chunk size for [`verify_batch_chunked`]: big enough that the
/// combined check amortizes well, small enough that rayon has
/// parallelism to exploit on typical deposit batches.
pub const DEPOSIT_CHUNK: usize = 16;

/// A deterministic seed for the batch multipliers, derived from the
/// batch content. Verdicts do not depend on the seed (up to the 2⁻⁶⁴
/// combined-check soundness error), but a content-derived seed makes
/// retried batches take the exact same verification path — useful for
/// replay debugging and the idempotency chaos tests.
pub fn batch_seed(spends: &[Spend], binding: &[u8]) -> u64 {
    let mut acc = u64::from_be_bytes(
        hash_tagged("dec-batch-seed", binding)[..8]
            .try_into()
            .expect("8 bytes"),
    );
    for s in spends {
        let h = hash_tagged("dec-batch-seed-item", &s.serial().to_bytes_be());
        acc = acc
            .rotate_left(17)
            .wrapping_add(u64::from_be_bytes(h[..8].try_into().expect("8 bytes")));
    }
    acc
}

/// Claims for one spend, tagged with the tower level whose group each
/// claim lives in (root + link claims in level 1, edge claims at their
/// depth).
type SpendClaims = Vec<(usize, GroupClaim)>;

/// Verifies a batch of spends with combined checks. Returns exactly
/// what mapping [`Spend::verify`] over the batch would return, item
/// for item.
///
/// Span: `ecash.batch_verify_ns`.
pub fn verify_batch<R: Rng + ?Sized>(
    rng: &mut R,
    params: &DecParams,
    bank_pk: &RsaPublicKey,
    binding: &[u8],
    spends: &[Spend],
) -> Vec<Result<u64, DecError>> {
    let _span = ppms_obs::timed!("ecash.batch_verify_ns");
    let n = spends.len();
    let mut out: Vec<Option<Result<u64, DecError>>> = vec![None; n];

    // 0. Structural screens, in Spend::verify's order.
    let mut alive: Vec<usize> = Vec::with_capacity(n);
    for (i, s) in spends.iter().enumerate() {
        let depth = s.depth();
        if depth == 0 || depth > params.levels {
            out[i] = Some(Err(DecError::BadDepth));
        } else if s.edge_proofs.len() != depth - 1 {
            out[i] = Some(Err(DecError::BadProof("edge proof count".into())));
        } else {
            alive.push(i);
        }
    }

    // 1. Bank signatures. rsa::batch_verify applies its cost model:
    //    with the bank's e = 65537 the combined small-exponent check
    //    never beats per-item verification (0.18–0.70× measured), so
    //    the batch goes down the sequential path — and either way the
    //    verdicts are exact, so a `false` here is precisely the
    //    sequential BadBankSignature decision.
    let tokens: Vec<Vec<u8>> = alive
        .iter()
        .map(|&i| token_for(&spends[i].root_tag))
        .collect();
    let sig_items: Vec<(&[u8], &BigUint)> = alive
        .iter()
        .zip(&tokens)
        .map(|(&i, tok)| (tok.as_slice(), &spends[i].bank_sig))
        .collect();
    let sig_ok = rsa::batch_verify(rng, bank_pk, &sig_items);
    let mut survivors = Vec::with_capacity(alive.len());
    for (&i, ok) in alive.iter().zip(&sig_ok) {
        if *ok {
            survivors.push(i);
        } else {
            out[i] = Some(Err(DecError::BadBankSignature));
        }
    }
    let mut alive = survivors;

    // 2. Membership of the revealed keys (contains() is exact, so this
    //    is the sequential decision, in the sequential order).
    let lvl1 = params.tower.level(1);
    alive.retain(|&i| {
        let s = &spends[i];
        let member = lvl1.group.contains(&s.root_tag)
            && s.keys
                .iter()
                .enumerate()
                .all(|(j, key)| params.tower.level(j + 1).group.contains(key));
        if !member {
            out[i] = Some(Err(DecError::BadGroupElement));
        }
        member
    });

    // 3. Edge OR-statement reconstruction: the `y` values need one
    //    inversion per edge side; gather them per tower level and run
    //    one Montgomery batch inversion per level instead.
    //    edge_ys[k][d - 2] = ys for spend alive[k] at depth d.
    let mut edge_ys: Vec<Vec<[BigUint; 2]>> = alive
        .iter()
        .map(|&i| Vec::with_capacity(spends[i].depth().saturating_sub(1)))
        .collect();
    for d in 2..=params.levels {
        let lvl = params.tower.level(d);
        let mut members: Vec<usize> = Vec::new(); // positions in `alive`
        let mut denoms: Vec<BigUint> = Vec::new();
        for (k, &i) in alive.iter().enumerate() {
            let s = &spends[i];
            if s.depth() < d {
                continue;
            }
            let t_prev = &s.keys[d - 2];
            denoms.push(lvl.group.exp(&lvl.g0, t_prev));
            denoms.push(lvl.group.exp(&lvl.g1, t_prev));
            members.push(k);
        }
        if members.is_empty() {
            continue;
        }
        let invs = lvl.group.ring().batch_inv(&denoms);
        for (pos, &k) in members.iter().enumerate() {
            let s = &spends[alive[k]];
            let t_cur = &s.keys[d - 1];
            // Group elements are units mod p, so inversion never fails.
            let inv0 = invs[2 * pos].as_ref().expect("group element is a unit");
            let inv1 = invs[2 * pos + 1].as_ref().expect("group element is a unit");
            edge_ys[k].push([lvl.group.mul(t_cur, inv0), lvl.group.mul(t_cur, inv1)]);
        }
    }

    // 4. Claim extraction. Any extractor returning None sends the
    //    spend to the sequential verifier right here (same decision,
    //    same error precedence).
    let u = root_tag_base(params);
    let lvl0 = params.tower.level(0);
    let mut pending: Vec<usize> = Vec::with_capacity(alive.len());
    let mut claims: Vec<Option<SpendClaims>> = vec![None; n];
    for (k, &i) in alive.iter().enumerate() {
        let s = &spends[i];
        let depth = s.depth();
        let extracted = (|| {
            let mut cs: SpendClaims = Vec::with_capacity(2 * depth + params.zkp_rounds);
            let stmt = DdlogStatement {
                outer: &lvl1.group,
                inner: &lvl0.group,
                g: &u,
                h: &lvl0.group.g,
                y: &s.root_tag,
            };
            for c in s
                .root_proof
                .batch_claims(&stmt, params.zkp_rounds, "dec-root", binding)?
            {
                cs.push((1, c));
            }
            let gb = if s.first_bit { &lvl1.g1 } else { &lvl1.g0 };
            for c in s.link.batch_claims(
                &lvl1.group,
                &u,
                &s.root_tag,
                gb,
                &lvl1.h,
                &s.keys[0],
                binding,
            )? {
                cs.push((1, c));
            }
            for d in 2..=depth {
                let lvl = params.tower.level(d);
                let ys = &edge_ys[k][d - 2];
                let extra = edge_binding(&s.root_tag, &s.keys[d - 2], &s.keys[d - 1], d, binding);
                for c in
                    s.edge_proofs[d - 2].batch_claims(&lvl.group, &lvl.h, ys, "dec-edge", &extra)?
                {
                    cs.push((d, c));
                }
            }
            Some(cs)
        })();
        match extracted {
            Some(cs) => {
                claims[i] = Some(cs);
                pending.push(i);
            }
            None => out[i] = Some(s.verify(params, bank_pk, binding)),
        }
    }

    // 5. Combined check with bisection; base case is full sequential
    //    Spend::verify, so errors keep their canonical precedence.
    let mut results = vec![false; n];
    {
        let mut combined = |rng: &mut R, subset: &[usize]| {
            let mut acc = BatchAccumulator::new();
            for &i in subset {
                for (lvl, claim) in claims[i].as_ref().expect("pending items have claims") {
                    acc.push(rng, &params.tower.level(*lvl).group, claim);
                }
            }
            acc.verify()
        };
        let mut sequential = |i: usize| {
            let r = spends[i].verify(params, bank_pk, binding);
            let ok = r.is_ok();
            out[i] = Some(r);
            ok
        };
        bisect_verify(rng, &pending, &mut results, &mut combined, &mut sequential);
    }
    for &i in &pending {
        if results[i] && out[i].is_none() {
            out[i] = Some(Ok(params.node_value(spends[i].depth())));
        }
    }

    out.into_iter()
        .map(|o| o.expect("every spend decided"))
        .collect()
}

/// [`verify_batch`] over rayon-parallel sub-chunks of
/// [`DEPOSIT_CHUNK`] spends, each with a deterministic per-chunk RNG
/// derived from `seed`. Ordering and per-item verdicts are identical
/// to the single-chunk call.
pub fn verify_batch_chunked(
    seed: u64,
    chunk_size: usize,
    params: &DecParams,
    bank_pk: &RsaPublicKey,
    binding: &[u8],
    spends: &[Spend],
) -> Vec<Result<u64, DecError>> {
    use rayon::prelude::*;
    let chunk_size = chunk_size.max(1);
    let chunks: Vec<Vec<Result<u64, DecError>>> = spends
        .par_chunks(chunk_size)
        .enumerate()
        .map(|(ci, chunk)| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ci as u64 + 1));
            verify_batch(&mut rng, params, bank_pk, binding, chunk)
        })
        .collect();
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spend::NodePath;
    use crate::DecBank;

    fn setup(levels: usize) -> (DecParams, DecBank, crate::Coin, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xBA7C4);
        let params = DecParams::fixture(levels, 10);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        let coin = bank.withdraw_coin(&mut rng);
        (params, bank, coin, rng)
    }

    fn spend_at(
        coin: &crate::Coin,
        params: &DecParams,
        rng: &mut StdRng,
        depth: usize,
        idx: u64,
    ) -> Spend {
        coin.spend(rng, params, &NodePath::from_index(depth, idx), b"rcv")
    }

    #[test]
    fn all_valid_batch_accepts_via_combined_check() {
        let (params, bank, coin, mut rng) = setup(3);
        let spends: Vec<Spend> = (0..4)
            .map(|i| spend_at(&coin, &params, &mut rng, 3, i))
            .collect();
        let got = verify_batch(&mut rng, &params, bank.public_key(), b"rcv", &spends);
        assert_eq!(got, vec![Ok(1); 4]);
    }

    #[test]
    fn forged_items_get_sequential_errors() {
        let (params, bank, coin, mut rng) = setup(3);
        let mut spends: Vec<Spend> = (0..6)
            .map(|i| spend_at(&coin, &params, &mut rng, 3, i))
            .collect();
        // Structural: truncate keys on item 0 (edge proof count).
        spends[0].keys.pop();
        // Bad bank signature on item 1.
        spends[1].bank_sig = (&spends[1].bank_sig + 1u64) % &bank.public_key().n;
        // Non-member serial on item 2.
        spends[2].keys[2] = BigUint::zero();
        // Tampered link response on item 3 (combined check must fail
        // and bisection must isolate exactly this item).
        spends[3].link.s0 = (&spends[3].link.s0 + 1u64) % &params.tower.level(1).group.q;
        let got = verify_batch(&mut rng, &params, bank.public_key(), b"rcv", &spends);
        let expect: Vec<Result<u64, DecError>> = spends
            .iter()
            .map(|s| s.verify(&params, bank.public_key(), b"rcv"))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(got[0], Err(DecError::BadProof("edge proof count".into())));
        assert_eq!(got[1], Err(DecError::BadBankSignature));
        assert_eq!(got[2], Err(DecError::BadGroupElement));
        assert_eq!(got[3], Err(DecError::BadProof("level-1 link".into())));
        assert_eq!(got[4], Ok(1));
        assert_eq!(got[5], Ok(1));
    }

    #[test]
    fn wrong_binding_matches_sequential_error() {
        let (params, bank, coin, mut rng) = setup(2);
        let spends = vec![spend_at(&coin, &params, &mut rng, 2, 0)];
        let got = verify_batch(&mut rng, &params, bank.public_key(), b"other", &spends);
        assert_eq!(
            got[0],
            spends[0].verify(&params, bank.public_key(), b"other")
        );
        assert!(got[0].is_err());
    }

    #[test]
    fn mixed_depths_batch() {
        let (params, bank, coin, mut rng) = setup(3);
        let spends = vec![
            spend_at(&coin, &params, &mut rng, 1, 0),
            spend_at(&coin, &params, &mut rng, 2, 2),
            spend_at(&coin, &params, &mut rng, 3, 6),
        ];
        let got = verify_batch(&mut rng, &params, bank.public_key(), b"rcv", &spends);
        assert_eq!(got, vec![Ok(4), Ok(2), Ok(1)]);
    }

    #[test]
    fn chunked_matches_unchunked_and_is_seed_stable() {
        let (params, bank, coin, mut rng) = setup(2);
        let mut spends: Vec<Spend> = (0..5)
            .map(|i| spend_at(&coin, &params, &mut rng, 2, i % 4))
            .collect();
        spends[3].bank_sig = BigUint::one();
        let seed = batch_seed(&spends, b"rcv");
        let a = verify_batch_chunked(seed, 2, &params, bank.public_key(), b"rcv", &spends);
        let b = verify_batch_chunked(seed, 2, &params, bank.public_key(), b"rcv", &spends);
        assert_eq!(a, b, "same seed, same path");
        let mut rng2 = StdRng::seed_from_u64(7);
        let whole = verify_batch(&mut rng2, &params, bank.public_key(), b"rcv", &spends);
        assert_eq!(a, whole, "chunking must not change verdicts");
        assert!(verify_batch_chunked(seed, 2, &params, bank.public_key(), b"rcv", &[]).is_empty());
    }
}
