//! # ppms-ecash
//!
//! Binary-tree **divisible e-cash** (DEC), modeled on the schemes the
//! paper cites (Okamoto \[22\], Chan–Frankel–Tsiounis \[23\]) and adapted
//! the way PPMSdec requires: the bank (market administrator) is
//! *online* and sits between spender and receiver, so double-spend
//! detection happens at deposit time against a serial database.
//!
//! ## The coin tree (paper §III-C1)
//!
//! A coin of value `2^L` is a binary tree of `L + 1` levels; a node at
//! depth `d` is worth `2^(L−d)`. Spending a node consumes it, its
//! ancestors and its descendants; disjoint nodes can be spent
//! independently. Node keys are derived down a [group
//! tower](ppms_crypto::tower) whose orders form a Cunningham chain:
//!
//! ```text
//! t_0 = g_1^s                    (coin secret s; t_0 never revealed)
//! R   = u_2^{t_0}                (public root tag, blind-signed by the bank)
//! t_d = g_{d+1,b_d}^{t_{d−1}} · h_{d+1}^s      (node key at depth d)
//! ```
//!
//! A spend of the node at depth `d` reveals `t_1 … t_d` (the spent
//! node's key is the serial; the ancestors enable conflict detection)
//! together with zero-knowledge proofs that the chain is well-formed:
//! a Stadler double-dlog proof for the root tag, a linked
//! representation proof for level 1, and one CDS OR-proof per deeper
//! edge (hiding the path bits). Proof cost grows linearly with depth —
//! exactly the shape of the paper's Fig. 3/4.
//!
//! ## Cash break (paper §IV-C)
//!
//! [`brk`] implements the three strategies the paper analyses: the
//! unitary break, PCBA (Algorithm 2) and EPCBA (Algorithm 3), plus the
//! fake-coin padding `E(0)` that defeats length inspection.

pub mod bank;
pub mod batch;
pub mod brk;
pub mod coin;
pub mod error;
pub mod params;
pub mod spend;
pub mod trace;
pub mod wallet;
pub mod wire;

pub use bank::{DecBank, DecBankState};
pub use batch::{batch_seed, verify_batch, verify_batch_chunked, DEPOSIT_CHUNK};
pub use brk::{
    allocate_nodes, break_epcba, break_pcba, break_unitary, build_payment, cover_range, plan_break,
    receive_payment, BreakPlan, CashBreak,
};
pub use coin::{Coin, FakeCoin, PaymentItem};
pub use error::DecError;
pub use params::DecParams;
pub use spend::{NodePath, Spend};
pub use trace::{trace_double_spender, trace_tag, verify_tag, TraceKey, TraceTag};
pub use wallet::Wallet;
pub use wire::{decode_payment, encode_payment, WireError};
