//! `Setup(DEC)` — the public parameters of the divisible e-cash
//! scheme (paper §III-C1 and §VI-A).
//!
//! A coin of value `2^L` needs the group tower `G_1 … G_{L+1}`, i.e. a
//! Cunningham chain of `L + 2` links. Finding that chain is the
//! expensive part of setup the paper's Fig. 2 measures; tests use the
//! known [fixture chains](ppms_primes::cunningham::fixture_chain)
//! (mirroring the paper's decision to run setup offline).

use ppms_bigint::BigUint;
use ppms_crypto::tower::GroupTower;
use ppms_primes::{find_chain_parallel, fixture_chain, CunninghamChain};

/// Public DEC parameters.
#[derive(Debug, Clone)]
pub struct DecParams {
    /// Coin denomination exponent: face value is `2^L`.
    pub levels: usize,
    /// The group tower `G_1 … G_{L+1}`.
    pub tower: GroupTower,
    /// Stadler cut-and-choose rounds for the root proof.
    pub zkp_rounds: usize,
    /// Root-tag generator `u ∈ G_2`, derived once at setup (it used to
    /// be re-derived by hash-to-group on every mint/spend/verify) and
    /// registered as a fixed base in the level-1 ring.
    root_tag_base: BigUint,
}

impl DecParams {
    /// Builds parameters from an explicit chain (needs `L + 2` links).
    pub fn from_chain(chain: &CunninghamChain, levels: usize, zkp_rounds: usize) -> DecParams {
        assert!(levels >= 1, "a coin needs at least one divisible level");
        assert!(
            chain.len() >= levels + 2,
            "tree of {} levels needs a chain of {} links, got {}",
            levels + 1,
            levels + 2,
            chain.len()
        );
        let tower = GroupTower::from_chain(&chain.prefix(levels + 2));
        let root_tag_base = tower.level(1).group.derive_generator("dec-root-tag");
        DecParams {
            levels,
            tower,
            zkp_rounds,
            root_tag_base,
        }
    }

    /// The cached root-tag generator `u ∈ G_2`.
    pub fn root_tag_base(&self) -> &BigUint {
        &self.root_tag_base
    }

    /// Eagerly builds the fixed-base window tables of every tower
    /// level (the tree generators plus the root-tag base). Call once
    /// before spawning market workers: params clones share the
    /// per-ring caches, so the threads reuse one set of tables instead
    /// of each paying the lazy first-use build.
    pub fn precompute(&self) {
        self.tower.precompute();
    }

    /// Test/bench parameters from the known fixture chains
    /// (`levels <= 12`), i.e. setup with the chain search done
    /// "offline" as the paper recommends.
    ///
    /// Always slices the **length-14 record chain** (66-bit start) so
    /// every group in the tower is cryptographically shaped; the short
    /// fixture chains (start 2, 3, …) have degenerate tiny groups
    /// where node keys collide.
    pub fn fixture(levels: usize, zkp_rounds: usize) -> DecParams {
        DecParams::from_chain(&fixture_chain(14), levels, zkp_rounds)
    }

    /// Full online setup: searches a fresh Cunningham chain with
    /// `start_bits`-bit starting prime (rayon-parallel). This is the
    /// operation whose cost explodes with `L` (paper Fig. 2).
    pub fn setup_online(
        levels: usize,
        start_bits: usize,
        zkp_rounds: usize,
        seed: u64,
    ) -> DecParams {
        let chain = find_chain_parallel(start_bits, levels + 2, seed);
        DecParams::from_chain(&chain, levels, zkp_rounds)
    }

    /// Coin face value `2^L`.
    pub fn face_value(&self) -> u64 {
        1u64 << self.levels
    }

    /// Value of a node at `depth` (`2^(L−depth)`).
    pub fn node_value(&self, depth: usize) -> u64 {
        assert!(depth <= self.levels);
        1u64 << (self.levels - depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_params_shape() {
        let p = DecParams::fixture(4, 16);
        assert_eq!(p.levels, 4);
        assert_eq!(p.tower.depth(), 5, "tower has L+1 groups");
        assert_eq!(p.face_value(), 16);
        assert_eq!(p.node_value(0), 16);
        assert_eq!(p.node_value(4), 1);
    }

    #[test]
    #[should_panic(expected = "at least one divisible level")]
    fn zero_levels_rejected() {
        DecParams::fixture(0, 16);
    }

    #[test]
    fn online_setup_small() {
        let p = DecParams::setup_online(1, 18, 8, 42);
        assert_eq!(p.levels, 1);
        assert_eq!(p.tower.depth(), 2);
    }
}
