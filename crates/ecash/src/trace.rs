//! Double-spender **identity tracing** — the offline-e-cash feature of
//! the schemes the paper builds on (Okamoto \[22\], Chan–Frankel–
//! Tsiounis \[23\], following Brands/Chaum): one spend reveals nothing
//! about the spender, but *two* spends of the same node algebraically
//! expose an identity key the bank can map back to an account.
//!
//! Mechanism (simplified Brands-style secret splitting):
//!
//! * The coin carries an identity exponent `k_id`. At withdrawal the
//!   owner registers the commitment `I = g^{k_id}` with the bank
//!   (the bank sees `I`, never `k_id`).
//! * Every spend of node `N` publishes a trace pair `(c, r)` with
//!   `r = u_N + c · k_id mod q`, where `u_N = PRF(s, N)` is a
//!   *deterministic per-node* nonce and `c` is the Fiat–Shamir
//!   challenge of the spend (it binds the receiver, so two spends of
//!   the same node have different `c` w.h.p.).
//! * One pair is one equation in two unknowns — perfectly hiding.
//!   Two pairs for the same node share `u_N`, so
//!   `k_id = (r_1 − r_2) / (c_1 − c_2)` and the bank recovers `I`.
//!
//! **Documented simplification** (as in DESIGN.md): a full scheme
//! forces the coin to embed the *registered* `k_id` via restrictive
//! blinding / cut-and-choose at withdrawal; here the binding is by
//! construction of the honest wallet, which suffices to demonstrate
//! and measure the tracing path the paper's citations rely on.

use crate::coin::Coin;
use crate::params::DecParams;
use crate::spend::NodePath;
use ppms_bigint::{random_below, BigUint};
use ppms_crypto::hash::hash_to_int;
use rand::Rng;

/// The spender-side tracing state attached to a coin.
#[derive(Debug, Clone)]
pub struct TraceKey {
    /// Secret identity exponent.
    k_id: BigUint,
    /// Public commitment `I = g^{k_id}` registered with the bank.
    pub commitment: BigUint,
}

impl TraceKey {
    /// Draws a fresh identity key over the tower's level-1 group
    /// (order `q_2` — the same group the trace equations live in).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, params: &DecParams) -> TraceKey {
        let group = &params.tower.level(1).group;
        let k_id = random_below(rng, &group.q);
        let commitment = group.g_exp(&k_id);
        TraceKey { k_id, commitment }
    }
}

/// The per-spend trace pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTag {
    /// The spend's challenge (binds the receiver context).
    pub c: BigUint,
    /// The response `u_N + c·k_id mod q`.
    pub r: BigUint,
    /// `g^{u_N}` — lets the bank sanity-check a single tag against the
    /// registered commitment (`g^r == U · I^c`).
    pub u_commit: BigUint,
}

/// Deterministic per-node nonce `u_N = PRF(coin secret, node)`.
fn node_nonce(params: &DecParams, coin: &Coin, path: &NodePath) -> BigUint {
    let group = &params.tower.level(1).group;
    let path_bytes: Vec<u8> = path.bits().iter().map(|&b| b as u8).collect();
    hash_to_int(
        "dec-trace-nonce",
        &[&coin.trace_seed(), &path_bytes],
        &group.q,
    )
}

/// Builds the trace tag for spending `path` toward `binding`.
pub fn trace_tag(
    params: &DecParams,
    coin: &Coin,
    key: &TraceKey,
    path: &NodePath,
    binding: &[u8],
) -> TraceTag {
    let group = &params.tower.level(1).group;
    let u = node_nonce(params, coin, path);
    let path_bytes: Vec<u8> = path.bits().iter().map(|&b| b as u8).collect();
    let c = hash_to_int(
        "dec-trace-challenge",
        &[&coin.root_tag.to_bytes_be(), &path_bytes, binding],
        &group.q,
    );
    let r = (&u + &c.modmul(&key.k_id, &group.q)) % &group.q;
    TraceTag {
        c,
        r,
        u_commit: group.g_exp(&u),
    }
}

/// Bank-side single-tag consistency check: `g^r == U · I^c` ties the
/// tag to the registered identity commitment without revealing it.
pub fn verify_tag(params: &DecParams, commitment: &BigUint, tag: &TraceTag) -> bool {
    let group = &params.tower.level(1).group;
    group.g_exp(&tag.r) == group.mul(&tag.u_commit, &group.exp(commitment, &tag.c))
}

/// Recovers the identity commitment `I = g^{k_id}` from two trace tags
/// of the same node. Returns `None` if the tags cannot be combined
/// (equal challenges or mismatched nonces — i.e. not a double spend).
pub fn trace_double_spender(
    params: &DecParams,
    tag1: &TraceTag,
    tag2: &TraceTag,
) -> Option<BigUint> {
    let group = &params.tower.level(1).group;
    if tag1.c == tag2.c || tag1.u_commit != tag2.u_commit {
        return None;
    }
    // k_id = (r1 - r2) / (c1 - c2) mod q
    let dr = tag1.r.modsub(&tag2.r, &group.q);
    let dc = tag1.c.modsub(&tag2.c, &group.q);
    let k_id = dr.modmul(&dc.modinv(&group.q)?, &group.q);
    Some(group.g_exp(&k_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DecParams, Coin, TraceKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x72ACE);
        let params = DecParams::fixture(3, 8);
        let coin = Coin::mint(&mut rng, &params);
        let key = TraceKey::generate(&mut rng, &params);
        (params, coin, key, rng)
    }

    #[test]
    fn single_tag_verifies_and_hides() {
        let (params, coin, key, _) = setup();
        let path = NodePath::from_index(2, 1);
        let tag = trace_tag(&params, &coin, &key, &path, b"alice");
        assert!(verify_tag(&params, &key.commitment, &tag));
        // A tag alone does not expose the identity: r is uniform given
        // unknown u. Structural check: tampering breaks verification.
        let mut bad = tag.clone();
        bad.r = &bad.r + 1u64;
        assert!(!verify_tag(&params, &key.commitment, &bad));
    }

    #[test]
    fn double_spend_recovers_identity() {
        let (params, coin, key, _) = setup();
        let path = NodePath::from_index(3, 5);
        // Same node, two different receivers => different challenges.
        let t1 = trace_tag(&params, &coin, &key, &path, b"receiver-A");
        let t2 = trace_tag(&params, &coin, &key, &path, b"receiver-B");
        assert_ne!(t1.c, t2.c);
        let recovered = trace_double_spender(&params, &t1, &t2).expect("traceable");
        assert_eq!(
            recovered, key.commitment,
            "bank recovers the registered identity"
        );
    }

    #[test]
    fn different_nodes_not_traceable() {
        let (params, coin, key, _) = setup();
        let t1 = trace_tag(&params, &coin, &key, &NodePath::from_index(2, 0), b"A");
        let t2 = trace_tag(&params, &coin, &key, &NodePath::from_index(2, 1), b"B");
        // Different nodes have different nonces; combination refuses.
        assert_eq!(trace_double_spender(&params, &t1, &t2), None);
    }

    #[test]
    fn same_receiver_twice_not_traceable() {
        // Identical challenges give no second equation (and identical
        // tags anyway — the bank's serial check catches this case).
        let (params, coin, key, _) = setup();
        let path = NodePath::from_index(1, 0);
        let t1 = trace_tag(&params, &coin, &key, &path, b"same");
        let t2 = trace_tag(&params, &coin, &key, &path, b"same");
        assert_eq!(t1, t2);
        assert_eq!(trace_double_spender(&params, &t1, &t2), None);
    }

    #[test]
    fn wrong_identity_recovered_for_forged_tags() {
        // If an attacker mixes tags from two coins sharing a node path,
        // the nonces differ and tracing refuses (no false accusation).
        let (params, coin1, key, mut rng) = setup();
        let coin2 = Coin::mint(&mut rng, &params);
        let path = NodePath::from_index(2, 2);
        let t1 = trace_tag(&params, &coin1, &key, &path, b"A");
        let t2 = trace_tag(&params, &coin2, &key, &path, b"B");
        assert_eq!(
            trace_double_spender(&params, &t1, &t2),
            None,
            "different coins never combine"
        );
    }
}
