//! The DEC-side bank: blind issuance at withdrawal and deposit with
//! double-spend detection over the coin tree.
//!
//! PPMSdec's market administrator owns one of these. The detection
//! rules implement the binary-tree divisibility semantics: a node
//! conflicts with itself, any ancestor and any descendant; disjoint
//! nodes coexist. Because every spend reveals its ancestor keys, the
//! bank can enforce this with two hash sets — no tree reconstruction.

use crate::coin::Coin;
use crate::error::DecError;
use crate::params::DecParams;
use crate::spend::Spend;
use ppms_bigint::BigUint;
use ppms_crypto::hash::hash_tagged;
use ppms_crypto::rsa::{self, RsaPrivateKey, RsaPublicKey};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// The bank component of the DEC scheme.
#[derive(Debug)]
pub struct DecBank {
    params: DecParams,
    key: RsaPrivateKey,
    /// Hashes of spent serials.
    spent: HashSet<[u8; 32]>,
    /// Hashes of every revealed ancestor key of a spent node.
    ancestors: HashSet<[u8; 32]>,
    /// Total value deposited per coin (keyed by root-tag hash).
    coin_totals: HashMap<[u8; 32], u64>,
}

fn key_hash(k: &BigUint) -> [u8; 32] {
    hash_tagged("dec-serial", &k.to_bytes_be())
}

impl DecBank {
    /// Creates a bank with a fresh blind-signing key of `rsa_bits`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, params: DecParams, rsa_bits: usize) -> DecBank {
        DecBank {
            params,
            key: rsa::keygen(rng, rsa_bits),
            spent: HashSet::new(),
            ancestors: HashSet::new(),
            coin_totals: HashMap::new(),
        }
    }

    /// The bank's public blind-signing key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.key.public
    }

    /// The DEC parameters this bank operates under.
    pub fn params(&self) -> &DecParams {
        &self.params
    }

    /// Withdrawal step 2 (bank side): signs a blinded coin token.
    /// The caller is responsible for debiting the withdrawer's account
    /// by the face value `2^L` (done by the market layer).
    pub fn sign_blinded(&self, blinded: &BigUint) -> BigUint {
        rsa::sign_blinded(&self.key, blinded)
    }

    /// Convenience: runs the whole withdrawal against this bank and
    /// returns a signed coin.
    pub fn withdraw_coin<R: Rng + ?Sized>(&self, rng: &mut R) -> Coin {
        let _span = ppms_obs::timed!("ecash.withdraw_ns");
        let mut coin = Coin::mint(rng, &self.params);
        let (blinded, factor) = coin.blind_token(rng, self.public_key());
        let sig = self.sign_blinded(&blinded);
        let ok = coin.attach_signature(self.public_key(), &sig, &factor);
        debug_assert!(ok, "bank's own signature must verify");
        coin
    }

    /// Deposits a spend: verifies it, runs double-spend detection, and
    /// returns the credited value.
    pub fn deposit(&mut self, spend: &Spend, binding: &[u8]) -> Result<u64, DecError> {
        let _span = ppms_obs::timed!("ecash.deposit_ns");
        let value = spend.verify(&self.params, self.public_key(), binding)?;
        self.record_deposit(spend, value)
    }

    /// Deposits a batch of spends: cryptographic verification runs as
    /// combined small-exponent batch checks over rayon-parallel
    /// sub-chunks (see [`crate::batch::verify_batch_chunked`]; per-item
    /// verdicts are bit-identical to sequential verification), then the
    /// double-spend bookkeeping is applied sequentially in order (so
    /// intra-batch conflicts resolve deterministically: first wins).
    pub fn deposit_batch(
        &mut self,
        spends: &[Spend],
        binding: &[u8],
    ) -> Vec<Result<u64, DecError>> {
        let seed = crate::batch::batch_seed(spends, binding);
        let verified = crate::batch::verify_batch_chunked(
            seed,
            crate::batch::DEPOSIT_CHUNK,
            &self.params,
            self.public_key(),
            binding,
            spends,
        );
        spends
            .iter()
            .zip(verified)
            .map(|(spend, v)| {
                let value = v?;
                self.record_deposit(spend, value)
            })
            .collect()
    }

    /// The bookkeeping half of [`DecBank::deposit`] for callers that
    /// have already verified the spend themselves (e.g. a sharded
    /// service that parallelizes verification outside the bank lock):
    /// runs only double-spend detection and face-value accounting.
    ///
    /// `value` must be the node value returned by
    /// [`Spend::verify`](crate::Spend::verify); passing an unverified
    /// spend here bypasses the cryptographic checks entirely.
    pub fn deposit_preverified(&mut self, spend: &Spend, value: u64) -> Result<u64, DecError> {
        self.record_deposit(spend, value)
    }

    /// The bookkeeping half of [`DecBank::deposit`] (verification
    /// already done).
    fn record_deposit(&mut self, spend: &Spend, value: u64) -> Result<u64, DecError> {
        let serial = key_hash(spend.serial());
        let anc_hashes: Vec<[u8; 32]> = spend.keys[..spend.keys.len() - 1]
            .iter()
            .map(key_hash)
            .collect();

        if self.spent.contains(&serial) {
            return Err(DecError::DoubleSpend("node already spent".into()));
        }
        if self.ancestors.contains(&serial) {
            return Err(DecError::DoubleSpend(
                "a descendant was already spent".into(),
            ));
        }
        if anc_hashes.iter().any(|h| self.spent.contains(h)) {
            return Err(DecError::DoubleSpend(
                "an ancestor was already spent".into(),
            ));
        }

        let root_hash = hash_tagged("dec-root-hash", &spend.root_tag.to_bytes_be());
        let total = self.coin_totals.entry(root_hash).or_insert(0);
        if *total + value > self.params.face_value() {
            return Err(DecError::Overspend);
        }

        *total += value;
        self.spent.insert(serial);
        self.ancestors.extend(anc_hashes);
        Ok(value)
    }

    /// Number of distinct serials deposited so far.
    pub fn deposited_count(&self) -> usize {
        self.spent.len()
    }

    /// Exports the double-spend bookkeeping (spent serials, revealed
    /// ancestors, per-coin deposit totals) in a canonical sorted
    /// order — the durable tier checkpoints this alongside the
    /// ledger. The signing key is *not* part of the export: key
    /// material is provisioned separately (regenerated from the same
    /// seed in the simulated market, a sealed key file in a real
    /// deployment).
    pub fn export_state(&self) -> DecBankState {
        let mut spent: Vec<[u8; 32]> = self.spent.iter().copied().collect();
        spent.sort_unstable();
        let mut ancestors: Vec<[u8; 32]> = self.ancestors.iter().copied().collect();
        ancestors.sort_unstable();
        let mut coin_totals: Vec<([u8; 32], u64)> =
            self.coin_totals.iter().map(|(k, &v)| (*k, v)).collect();
        coin_totals.sort_unstable();
        DecBankState {
            spent,
            ancestors,
            coin_totals,
        }
    }

    /// Replaces the double-spend bookkeeping with an exported state —
    /// the recovery half of [`DecBank::export_state`].
    pub fn restore_state(&mut self, state: &DecBankState) {
        self.spent = state.spent.iter().copied().collect();
        self.ancestors = state.ancestors.iter().copied().collect();
        self.coin_totals = state.coin_totals.iter().copied().collect();
    }
}

/// A point-in-time export of a [`DecBank`]'s double-spend state, in
/// canonical (sorted) order so two banks with equal state export
/// equal values — the crash-matrix tests compare these directly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecBankState {
    /// Hashes of spent serials, sorted.
    pub spent: Vec<[u8; 32]>,
    /// Hashes of revealed ancestor keys, sorted.
    pub ancestors: Vec<[u8; 32]>,
    /// `(root-tag hash, deposited total)` per coin, sorted.
    pub coin_totals: Vec<([u8; 32], u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spend::NodePath;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(levels: usize) -> (DecParams, DecBank, Coin, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xBA27);
        let params = DecParams::fixture(levels, 10);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        let coin = bank.withdraw_coin(&mut rng);
        (params, bank, coin, rng)
    }

    #[test]
    fn deposit_credits_node_value() {
        let (params, mut bank, coin, mut rng) = setup(3);
        let spend = coin.spend(&mut rng, &params, &NodePath::from_index(2, 1), b"sp");
        assert_eq!(bank.deposit(&spend, b"sp"), Ok(2));
    }

    #[test]
    fn same_node_twice_rejected() {
        let (params, mut bank, coin, mut rng) = setup(2);
        let path = NodePath::from_index(2, 0);
        let s1 = coin.spend(&mut rng, &params, &path, b"a");
        let s2 = coin.spend(&mut rng, &params, &path, b"b");
        assert!(bank.deposit(&s1, b"a").is_ok());
        assert_eq!(
            bank.deposit(&s2, b"b"),
            Err(DecError::DoubleSpend("node already spent".into()))
        );
    }

    #[test]
    fn ancestor_after_descendant_rejected() {
        let (params, mut bank, coin, mut rng) = setup(3);
        let leaf = coin.spend(&mut rng, &params, &NodePath::from_index(3, 0), b"a");
        assert!(bank.deposit(&leaf, b"a").is_ok());
        // The depth-1 node above it.
        let anc = coin.spend(&mut rng, &params, &NodePath::from_index(1, 0), b"b");
        assert_eq!(
            bank.deposit(&anc, b"b"),
            Err(DecError::DoubleSpend(
                "a descendant was already spent".into()
            ))
        );
    }

    #[test]
    fn descendant_after_ancestor_rejected() {
        let (params, mut bank, coin, mut rng) = setup(3);
        let anc = coin.spend(&mut rng, &params, &NodePath::from_index(1, 1), b"a");
        assert!(bank.deposit(&anc, b"a").is_ok());
        let leaf = coin.spend(&mut rng, &params, &NodePath::from_index(3, 7), b"b");
        assert_eq!(
            bank.deposit(&leaf, b"b"),
            Err(DecError::DoubleSpend(
                "an ancestor was already spent".into()
            ))
        );
    }

    #[test]
    fn disjoint_nodes_all_deposit_and_sum_to_face_value() {
        let (params, mut bank, coin, mut rng) = setup(3);
        // Cover: depth-1 right half (4) + depth-2 node (2) + two leaves (1+1) = 8.
        let spends = [
            NodePath::from_index(1, 1),
            NodePath::from_index(2, 1),
            NodePath::from_index(3, 0),
            NodePath::from_index(3, 1),
        ];
        let mut total = 0;
        for p in &spends {
            let s = coin.spend(&mut rng, &params, p, b"sp");
            total += bank.deposit(&s, b"sp").unwrap();
        }
        assert_eq!(total, params.face_value());
    }

    #[test]
    fn overspend_rejected() {
        let (params, mut bank, coin, mut rng) = setup(2);
        // Depth-1 nodes are worth 2 each; spending both = 4 = face value. OK.
        let a = coin.spend(&mut rng, &params, &NodePath::from_index(1, 0), b"x");
        let b = coin.spend(&mut rng, &params, &NodePath::from_index(1, 1), b"x");
        assert!(bank.deposit(&a, b"x").is_ok());
        assert!(bank.deposit(&b, b"x").is_ok());
        // Any further node of this coin conflicts; craft a disjoint-tree
        // scenario instead with a second coin to show totals are per-coin.
        let coin2 = bank.withdraw_coin(&mut rng);
        let c = coin2.spend(&mut rng, &params, &NodePath::from_index(1, 0), b"x");
        assert!(
            bank.deposit(&c, b"x").is_ok(),
            "fresh coin has its own budget"
        );
        assert_eq!(bank.deposited_count(), 3);
    }

    #[test]
    fn batch_deposit_matches_sequential_semantics() {
        let (params, mut bank, coin, mut rng) = setup(3);
        // Mix: two valid disjoint nodes, one intra-batch duplicate, one
        // ancestor conflict.
        let a = coin.spend(&mut rng, &params, &NodePath::from_index(2, 0), b"x");
        let b = coin.spend(&mut rng, &params, &NodePath::from_index(2, 1), b"x");
        let dup = coin.spend(&mut rng, &params, &NodePath::from_index(2, 0), b"x");
        let anc = coin.spend(&mut rng, &params, &NodePath::from_index(1, 0), b"x");
        let results = bank.deposit_batch(&[a, b, dup, anc], b"x");
        assert_eq!(results[0], Ok(2));
        assert_eq!(results[1], Ok(2));
        assert_eq!(
            results[2],
            Err(DecError::DoubleSpend("node already spent".into()))
        );
        assert_eq!(
            results[3],
            Err(DecError::DoubleSpend(
                "a descendant was already spent".into()
            ))
        );
        assert_eq!(bank.deposited_count(), 2);
    }

    #[test]
    fn batch_deposit_rejects_bad_binding() {
        let (params, mut bank, coin, mut rng) = setup(2);
        let s = coin.spend(&mut rng, &params, &NodePath::from_index(1, 0), b"alice");
        let results = bank.deposit_batch(&[s], b"bob");
        assert!(matches!(results[0], Err(DecError::BadProof(_))));
        assert_eq!(bank.deposited_count(), 0);
    }

    #[test]
    fn two_coins_do_not_interfere() {
        let (params, mut bank, coin1, mut rng) = setup(2);
        let coin2 = bank.withdraw_coin(&mut rng);
        let p = NodePath::from_index(2, 2);
        let s1 = coin1.spend(&mut rng, &params, &p, b"r");
        let s2 = coin2.spend(&mut rng, &params, &p, b"r");
        assert!(bank.deposit(&s1, b"r").is_ok());
        assert!(
            bank.deposit(&s2, b"r").is_ok(),
            "same path, different coins"
        );
    }
}
