//! Cash breaking (paper §IV-A4 and §IV-C): splitting a payment `w`
//! into coin denominations that thwart the **denomination attack**.
//!
//! Three strategies, exactly as the paper analyses them:
//!
//! * **Unitary** — `w` coins of value 1 plus `2^L − w` fakes. Maximal
//!   privacy (the deposit stream is featureless), maximal cost.
//! * **PCBA** (Algorithm 2) — the binary decomposition of `w`, padded
//!   with fakes to exactly `L + 1` items.
//! * **EPCBA** (Algorithm 3) — decomposes `w` or `w − 1 (+1)`,
//!   whichever yields **more** set bits (more, smaller coins ⇒ more
//!   candidate sums `Σ C(k,i)` for the attacker), padded to `L + 2`
//!   items.
//!
//! [`allocate_nodes`] maps denominations onto disjoint tree nodes and
//! [`build_payment`] produces the final `E(w_1) … E(w_k), E(0) …`
//! bundle the JO sends.

use crate::coin::{Coin, FakeCoin, PaymentItem};
use crate::error::DecError;
use crate::params::DecParams;
use crate::spend::NodePath;
use rand::Rng;

/// Which break algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CashBreak {
    /// No breaking: one coin of the exact (power-of-two-summed) value.
    /// Only for the attack baseline — vulnerable to the denomination
    /// attack.
    None,
    /// All-unitary break.
    Unitary,
    /// Privacy-aware Cash Break (paper Algorithm 2).
    Pcba,
    /// Enhanced PCBA (paper Algorithm 3).
    Epcba,
}

/// A break plan: the denomination of every payment slot (0 = fake).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakPlan {
    /// Slot denominations; zeros become fake coins `E(0)`.
    pub denominations: Vec<u64>,
    /// The amount `w` the real slots sum to.
    pub amount: u64,
}

impl BreakPlan {
    fn check(&self) {
        debug_assert_eq!(
            self.denominations.iter().sum::<u64>(),
            self.amount,
            "break plan must sum to the amount"
        );
    }

    /// Number of real (nonzero) coins.
    pub fn real_coins(&self) -> usize {
        self.denominations.iter().filter(|&&d| d != 0).count()
    }
}

/// `B(w)[i]`: the `i`-th least significant bit (1-based, as in the
/// paper's notation).
fn bit(w: u64, i: usize) -> u64 {
    (w >> (i - 1)) & 1
}

/// All-unitary break: `w` ones and `2^L − w` zeros (paper eq. (4)).
pub fn break_unitary(w: u64, levels: usize) -> Result<BreakPlan, DecError> {
    let face = 1u64 << levels;
    if w == 0 || w > face {
        return Err(DecError::BadAmount);
    }
    let mut denominations = vec![1u64; w as usize];
    denominations.resize(face as usize, 0);
    let plan = BreakPlan {
        denominations,
        amount: w,
    };
    plan.check();
    Ok(plan)
}

/// PCBA (paper Algorithm 2): `w_i = 2^{i−1}·B(w)[i]` for
/// `i ∈ [1, L+1]`.
pub fn break_pcba(w: u64, levels: usize) -> Result<BreakPlan, DecError> {
    let face = 1u64 << levels;
    if w == 0 || w > face {
        return Err(DecError::BadAmount);
    }
    let denominations = (1..=levels + 1)
        .map(|i| (1u64 << (i - 1)) * bit(w, i))
        .collect();
    let plan = BreakPlan {
        denominations,
        amount: w,
    };
    plan.check();
    Ok(plan)
}

/// EPCBA (paper Algorithm 3): picks the decomposition of `w` or of
/// `w − 1` plus a unit coin, whichever has more set bits.
pub fn break_epcba(w: u64, levels: usize) -> Result<BreakPlan, DecError> {
    let face = 1u64 << levels;
    if w == 0 || w > face {
        return Err(DecError::BadAmount);
    }
    let a = w.count_ones();
    let a_prime = (w - 1).count_ones();
    let mut denominations: Vec<u64>;
    if a <= a_prime {
        // Use B(w−1) plus an extra unitary coin (w_{L+2} = 1).
        denominations = (1..=levels + 1)
            .map(|i| (1u64 << (i - 1)) * bit(w - 1, i))
            .collect();
        denominations.push(1);
    } else {
        denominations = (1..=levels + 1)
            .map(|i| (1u64 << (i - 1)) * bit(w, i))
            .collect();
        denominations.push(0);
    }
    let plan = BreakPlan {
        denominations,
        amount: w,
    };
    plan.check();
    Ok(plan)
}

/// Dispatches on the chosen strategy. `CashBreak::None` yields the
/// plain binary decomposition with **no fake padding** (the attack
/// baseline).
pub fn plan_break(strategy: CashBreak, w: u64, levels: usize) -> Result<BreakPlan, DecError> {
    match strategy {
        CashBreak::None => {
            let mut plan = break_pcba(w, levels)?;
            plan.denominations.retain(|&d| d != 0);
            Ok(plan)
        }
        CashBreak::Unitary => break_unitary(w, levels),
        CashBreak::Pcba => break_pcba(w, levels),
        CashBreak::Epcba => break_epcba(w, levels),
    }
}

/// Tracks which leaves of one coin's tree are still unspent, and
/// serves aligned node allocations for successive payments — a coin
/// can pay several SPs, so the allocation state must persist across
/// break plans.
#[derive(Debug, Clone)]
pub struct NodeAllocator {
    levels: usize,
    free: Vec<bool>,
}

impl NodeAllocator {
    /// A fresh coin: every leaf free.
    pub fn new(levels: usize) -> NodeAllocator {
        NodeAllocator {
            levels,
            free: vec![true; 1usize << levels],
        }
    }

    /// Unspent value remaining.
    pub fn remaining(&self) -> u64 {
        self.free.iter().filter(|&&f| f).count() as u64
    }

    /// Allocates node(s) worth `denom` (a power of two). The face
    /// value `2^L` is served as two depth-1 nodes (the root key is the
    /// coin secret and cannot be spent). Returns `None` when no
    /// aligned free block exists.
    pub fn allocate(&mut self, denom: u64) -> Option<Vec<NodePath>> {
        let face = 1u64 << self.levels;
        assert!(denom >= 1 && denom <= face && denom.is_power_of_two());
        if denom == face {
            let half = face / 2;
            let left = self.allocate(half)?;
            let right = self.allocate(half)?;
            return Some([left, right].concat());
        }
        let d = denom as usize;
        let mut j = 0usize;
        while j + d <= self.free.len() {
            if self.free[j..j + d].iter().all(|&f| f) {
                self.free[j..j + d].iter_mut().for_each(|f| *f = false);
                let depth = self.levels - denom.trailing_zeros() as usize;
                return Some(vec![NodePath::from_index(depth, (j / d) as u64)]);
            }
            j += d;
        }
        None
    }

    /// Allocates all real denominations of a plan; one node list per
    /// slot (empty for fakes). Rolls back nothing on failure — callers
    /// treat failure as a spent-out coin.
    pub fn allocate_plan(&mut self, plan: &BreakPlan) -> Result<Vec<Vec<NodePath>>, DecError> {
        let mut order: Vec<usize> = (0..plan.denominations.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(plan.denominations[i]));
        let mut result = vec![Vec::new(); plan.denominations.len()];
        for &slot in &order {
            let d = plan.denominations[slot];
            if d == 0 {
                continue;
            }
            result[slot] = self.allocate(d).ok_or(DecError::BadAmount)?;
        }
        Ok(result)
    }

    /// A minimal disjoint node cover of the remaining free leaves
    /// (for change redemption).
    pub fn free_nodes(&self) -> Vec<NodePath> {
        let face = self.free.len();
        let mut nodes = Vec::new();
        let mut pos = 0usize;
        while pos < face {
            if !self.free[pos] {
                pos += 1;
                continue;
            }
            // Largest aligned all-free block at pos, depth >= 1.
            let align = if pos == 0 {
                face / 2
            } else {
                1 << pos.trailing_zeros()
            };
            let mut size = align.min(face / 2).max(1);
            while size > 1 && !self.free[pos..pos + size].iter().all(|&f| f) {
                size /= 2;
            }
            if !self.free[pos..pos + size].iter().all(|&f| f) {
                pos += 1;
                continue;
            }
            let depth = self.levels - (size as u64).trailing_zeros() as usize;
            nodes.push(NodePath::from_index(depth, (pos / size) as u64));
            pos += size;
        }
        nodes
    }
}

/// Allocates disjoint tree nodes for a single plan on a fresh coin.
pub fn allocate_nodes(plan: &BreakPlan, levels: usize) -> Result<Vec<Vec<NodePath>>, DecError> {
    NodeAllocator::new(levels).allocate_plan(plan)
}

/// Builds the full payment bundle: real spends for every allocated
/// node, fake coins `E(0)` for the zero slots (paper §IV-A4:
/// "generates `2^L − w` fake coins with the same size").
pub fn build_payment<R: Rng + ?Sized>(
    rng: &mut R,
    params: &DecParams,
    coin: &Coin,
    plan: &BreakPlan,
    binding: &[u8],
    bank_sig_bytes: usize,
) -> Result<Vec<PaymentItem>, DecError> {
    let mut allocator = NodeAllocator::new(params.levels);
    build_payment_with(
        rng,
        params,
        coin,
        plan,
        binding,
        bank_sig_bytes,
        &mut allocator,
    )
}

/// [`build_payment`] against a persistent per-coin allocator, for
/// coins that pay several receivers.
#[allow(clippy::too_many_arguments)]
pub fn build_payment_with<R: Rng + ?Sized>(
    rng: &mut R,
    params: &DecParams,
    coin: &Coin,
    plan: &BreakPlan,
    binding: &[u8],
    bank_sig_bytes: usize,
    allocator: &mut NodeAllocator,
) -> Result<Vec<PaymentItem>, DecError> {
    let alloc = allocator.allocate_plan(plan)?;
    let mut items = Vec::with_capacity(plan.denominations.len());
    for (slot, d) in plan.denominations.iter().enumerate() {
        if *d == 0 {
            // Depth of the fake mirrors a unitary coin (the common case
            // for padding slots in the unitary scheme); PCBA/EPCBA pads
            // match the slot's would-be denomination 2^{slot}.
            let claimed = 1u64 << slot.min(params.levels);
            let depth = params.levels - (claimed.trailing_zeros() as usize).min(params.levels);
            let depth = depth.max(1);
            items.push(PaymentItem::Fake(FakeCoin::matching(
                rng,
                params,
                depth,
                bank_sig_bytes,
            )));
        } else {
            for path in &alloc[slot] {
                items.push(PaymentItem::Real(coin.spend(rng, params, path, binding)));
            }
        }
    }
    Ok(items)
}

/// Decomposes the leaf interval `[from, to)` into a minimal set of
/// disjoint, aligned tree nodes. Used to enumerate a coin's *change*
/// (the leaves the payment allocation did not consume).
pub fn cover_range(from: u64, to: u64, levels: usize) -> Vec<NodePath> {
    assert!(from <= to && to <= (1u64 << levels));
    let mut nodes = Vec::new();
    let mut pos = from;
    while pos < to {
        // Largest aligned block starting at pos that fits in [pos, to).
        let align = if pos == 0 {
            1u64 << levels
        } else {
            1u64 << pos.trailing_zeros()
        };
        let mut size = align.min(1u64 << levels.saturating_sub(1)); // depth >= 1
        while pos + size > to {
            size >>= 1;
        }
        let depth = levels - size.trailing_zeros() as usize;
        nodes.push(NodePath::from_index(depth, pos / size));
        pos += size;
    }
    nodes
}

/// Receiver-side processing of a payment bundle: verifies every item,
/// discards fakes, and returns the valid spends plus the total value.
pub fn receive_payment(
    params: &DecParams,
    bank_pk: &ppms_crypto::rsa::RsaPublicKey,
    items: &[PaymentItem],
    binding: &[u8],
) -> (Vec<crate::spend::Spend>, u64) {
    let mut good = Vec::new();
    let mut total = 0;
    for item in items {
        if let PaymentItem::Real(spend) = item {
            if let Ok(v) = spend.verify(params, bank_pk, binding) {
                total += v;
                good.push(spend.clone());
            }
        }
        // Fake items carry no structure to verify — dropped, exactly as
        // the paper describes ("they cannot pass the verification").
    }
    (good, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unitary_break_shape() {
        let plan = break_unitary(5, 3).unwrap();
        assert_eq!(plan.denominations.len(), 8, "always 2^L slots");
        assert_eq!(plan.real_coins(), 5);
        assert_eq!(plan.denominations.iter().sum::<u64>(), 5);
    }

    #[test]
    fn pcba_is_binary_decomposition() {
        // w = 11 = 1011b, L = 4 → slots [1, 2, 0, 8, 0].
        let plan = break_pcba(11, 4).unwrap();
        assert_eq!(plan.denominations, vec![1, 2, 0, 8, 0]);
        assert_eq!(plan.denominations.len(), 5, "always L+1 slots");
    }

    #[test]
    fn pcba_all_amounts_sum() {
        for l in 1..=6 {
            for w in 1..=(1u64 << l) {
                let plan = break_pcba(w, l).unwrap();
                assert_eq!(plan.denominations.iter().sum::<u64>(), w, "w={w} L={l}");
                assert_eq!(plan.denominations.len(), l + 1);
            }
        }
    }

    #[test]
    fn epcba_prefers_more_coins() {
        // w = 8 = 1000b has 1 bit; w−1 = 7 = 111b has 3 bits → EPCBA
        // uses 7 + 1: [1, 2, 4, 0, 1].
        let plan = break_epcba(8, 3).unwrap();
        assert_eq!(plan.denominations, vec![1, 2, 4, 0, 1]);
        assert_eq!(plan.real_coins(), 4);
        // w = 7 = 111b (3 bits) vs w−1 = 6 (2 bits) → keep B(7), pad 0.
        let plan7 = break_epcba(7, 3).unwrap();
        assert_eq!(plan7.denominations, vec![1, 2, 4, 0, 0]);
    }

    #[test]
    fn epcba_all_amounts_sum() {
        for l in 1..=6 {
            for w in 1..=(1u64 << l) {
                let plan = break_epcba(w, l).unwrap();
                assert_eq!(plan.denominations.iter().sum::<u64>(), w, "w={w} L={l}");
                assert_eq!(plan.denominations.len(), l + 2, "always L+2 slots");
                assert!(
                    plan.real_coins()
                        >= break_pcba(w, l)
                            .unwrap()
                            .real_coins()
                            .min(plan.real_coins())
                );
            }
        }
    }

    #[test]
    fn epcba_never_fewer_coins_than_pcba() {
        for l in 1..=6 {
            for w in 2..=(1u64 << l) {
                let e = break_epcba(w, l).unwrap().real_coins();
                let p = break_pcba(w, l).unwrap().real_coins();
                assert!(e >= p, "EPCBA({w},{l}) = {e} < PCBA = {p}");
            }
        }
    }

    #[test]
    fn bad_amounts_rejected() {
        assert_eq!(break_pcba(0, 3), Err(DecError::BadAmount));
        assert_eq!(break_pcba(9, 3), Err(DecError::BadAmount));
        assert_eq!(break_unitary(0, 3), Err(DecError::BadAmount));
        assert_eq!(break_epcba(100, 3), Err(DecError::BadAmount));
    }

    #[test]
    fn allocation_disjoint_and_correct_value() {
        for l in 2..=5 {
            for w in 1..=(1u64 << l) {
                let plan = break_epcba(w, l).unwrap();
                let alloc = allocate_nodes(&plan, l).unwrap();
                let mut paths: Vec<NodePath> = alloc.iter().flatten().cloned().collect();
                // Values sum to w.
                let total: u64 = paths.iter().map(|p| 1u64 << (l - p.depth())).sum();
                assert_eq!(total, w, "w={w} L={l}");
                // Pairwise disjoint (no prefix relations).
                for i in 0..paths.len() {
                    for j in 0..paths.len() {
                        if i != j {
                            assert!(!paths[i].is_prefix_of(&paths[j]), "w={w} L={l}");
                        }
                    }
                }
                paths.dedup();
            }
        }
    }

    #[test]
    fn cover_range_exact_and_disjoint() {
        for l in 1..=5 {
            let face = 1u64 << l;
            for from in 0..=face {
                for to in from..=face {
                    let nodes = cover_range(from, to, l);
                    let total: u64 = nodes.iter().map(|p| 1u64 << (l - p.depth())).sum();
                    assert_eq!(total, to - from, "[{from},{to}) L={l}");
                    for i in 0..nodes.len() {
                        for j in 0..nodes.len() {
                            if i != j {
                                assert!(!nodes[i].is_prefix_of(&nodes[j]));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cover_complements_allocation() {
        // Allocation takes [0, w); cover_range takes [w, 2^L); together
        // they tile the whole coin.
        let l = 4;
        for w in 1..=(1u64 << l) {
            let plan = break_pcba(w, l).unwrap();
            let alloc = allocate_nodes(&plan, l).unwrap();
            let change = cover_range(w, 1 << l, l);
            let paid: u64 = alloc
                .iter()
                .flatten()
                .map(|p| 1u64 << (l - p.depth()))
                .sum();
            let rest: u64 = change.iter().map(|p| 1u64 << (l - p.depth())).sum();
            assert_eq!(paid + rest, 1 << l, "w={w}");
            for a in alloc.iter().flatten() {
                for c in &change {
                    assert!(!a.is_prefix_of(c) && !c.is_prefix_of(a), "w={w}");
                }
            }
        }
    }

    #[test]
    fn whole_coin_served_as_two_nodes() {
        let plan = break_pcba(8, 3).unwrap(); // w = 2^L
        let alloc = allocate_nodes(&plan, 3).unwrap();
        let slot = plan.denominations.iter().position(|&d| d == 8).unwrap();
        assert_eq!(alloc[slot].len(), 2);
        assert_eq!(alloc[slot][0].depth(), 1);
    }
}
