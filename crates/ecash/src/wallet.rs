//! A multi-coin wallet: the JO-side purse that PPMSdec draws payments
//! from. One coin's unspent change carries over to later payments, and
//! a payment larger than any single coin's remainder is served from
//! several coins — the natural lifecycle the paper implies when a JO
//! "withdraws a divisible e-cash" once and pays many SPs.

use crate::brk::{plan_break, NodeAllocator};
use crate::coin::{Coin, FakeCoin, PaymentItem};
use crate::error::DecError;
use crate::params::DecParams;
use crate::spend::Spend;
use ppms_crypto::rsa::RsaPublicKey;
use rand::Rng;

/// One coin plus its allocation state.
#[derive(Debug, Clone)]
struct WalletCoin {
    coin: Coin,
    allocator: NodeAllocator,
}

/// A purse of withdrawn coins.
#[derive(Debug, Clone, Default)]
pub struct Wallet {
    coins: Vec<WalletCoin>,
}

impl Wallet {
    /// An empty wallet.
    pub fn new() -> Wallet {
        Wallet::default()
    }

    /// Adds a freshly withdrawn (bank-signed) coin.
    ///
    /// Panics if the coin carries no bank signature — unsigned coins
    /// cannot be spent and would strand their face value.
    pub fn add_coin(&mut self, params: &DecParams, coin: Coin) {
        assert!(coin.is_signed(), "withdraw the coin before adding it");
        self.coins.push(WalletCoin {
            coin,
            allocator: NodeAllocator::new(params.levels),
        });
    }

    /// Total unspent value across all coins.
    pub fn balance(&self) -> u64 {
        self.coins.iter().map(|c| c.allocator.remaining()).sum()
    }

    /// Number of coins held (including spent-out husks until
    /// [`Wallet::compact`]).
    pub fn coin_count(&self) -> usize {
        self.coins.len()
    }

    /// Drops coins with no remaining value.
    pub fn compact(&mut self) {
        self.coins.retain(|c| c.allocator.remaining() > 0);
    }

    /// Builds a payment of `w` using `strategy`, drawing from as many
    /// coins as needed (each coin contributes a sub-payment broken by
    /// the same strategy). Returns the combined item bundle.
    ///
    /// Fails with [`DecError::BadAmount`] if the wallet cannot cover
    /// `w` (call [`Wallet::balance`] first), or if fragmentation
    /// prevents an aligned allocation — withdraw a fresh coin then.
    pub fn pay<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        params: &DecParams,
        strategy: crate::brk::CashBreak,
        w: u64,
        binding: &[u8],
        bank_sig_bytes: usize,
    ) -> Result<Vec<PaymentItem>, DecError> {
        if w == 0 || self.balance() < w {
            return Err(DecError::BadAmount);
        }
        let mut remaining = w;
        let mut items = Vec::new();
        // Iterate over coins snapshotting allocator state so a failed
        // multi-coin attempt does not half-spend the wallet.
        let rollback: Vec<NodeAllocator> = self.coins.iter().map(|c| c.allocator.clone()).collect();

        for wc in self.coins.iter_mut() {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(wc.allocator.remaining());
            if take == 0 {
                continue;
            }
            let plan = plan_break(strategy, take, params.levels)?;
            match crate::brk::build_payment_with(
                rng,
                params,
                &wc.coin,
                &plan,
                binding,
                bank_sig_bytes,
                &mut wc.allocator,
            ) {
                Ok(sub) => {
                    items.extend(sub);
                    remaining -= take;
                }
                Err(_) => {
                    // Fragmented coin: skip it, try the next one.
                    continue;
                }
            }
        }

        if remaining > 0 {
            // Roll back: fragmentation beat us.
            for (wc, saved) in self.coins.iter_mut().zip(rollback) {
                wc.allocator = saved;
            }
            return Err(DecError::BadAmount);
        }
        Ok(items)
    }

    /// Spends every remaining node of every coin (change redemption).
    /// Returns the spends; the caller deposits them. Empties the wallet.
    pub fn drain<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        params: &DecParams,
        binding: &[u8],
    ) -> Vec<Spend> {
        let mut spends = Vec::new();
        for wc in self.coins.iter() {
            for path in wc.allocator.free_nodes() {
                spends.push(wc.coin.spend(rng, params, &path, binding));
            }
        }
        self.coins.clear();
        spends
    }

    /// Pads a bundle with fakes up to `total_slots` items (the unitary
    /// scheme's fixed-size envelope across multi-coin payments).
    pub fn pad_with_fakes<R: Rng + ?Sized>(
        rng: &mut R,
        params: &DecParams,
        items: &mut Vec<PaymentItem>,
        total_slots: usize,
        bank_sig_bytes: usize,
    ) {
        while items.len() < total_slots {
            items.push(PaymentItem::Fake(FakeCoin::matching(
                rng,
                params,
                params.levels,
                bank_sig_bytes,
            )));
        }
    }

    /// Verifies a received bundle against the bank key (receiver-side
    /// convenience mirroring [`crate::brk::receive_payment`]).
    pub fn receive(
        params: &DecParams,
        bank_pk: &RsaPublicKey,
        items: &[PaymentItem],
        binding: &[u8],
    ) -> (Vec<Spend>, u64) {
        crate::brk::receive_payment(params, bank_pk, items, binding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brk::CashBreak;
    use crate::DecBank;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DecParams, DecBank, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x3A11E7);
        let params = DecParams::fixture(3, 8);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        (params, bank, rng)
    }

    #[test]
    fn empty_wallet_cannot_pay() {
        let (params, _, mut rng) = setup();
        let mut w = Wallet::new();
        assert_eq!(w.balance(), 0);
        assert_eq!(
            w.pay(&mut rng, &params, CashBreak::Pcba, 1, b"", 64).err(),
            Some(DecError::BadAmount)
        );
    }

    #[test]
    fn single_coin_payment_and_change() {
        let (params, bank, mut rng) = setup();
        let mut w = Wallet::new();
        w.add_coin(&params, bank.withdraw_coin(&mut rng));
        assert_eq!(w.balance(), 8);
        let items = w
            .pay(&mut rng, &params, CashBreak::Pcba, 5, b"r", 64)
            .unwrap();
        let (_, total) = Wallet::receive(&params, bank.public_key(), &items, b"r");
        assert_eq!(total, 5);
        assert_eq!(w.balance(), 3, "change stays in the wallet");
    }

    #[test]
    fn payment_spans_multiple_coins() {
        let (params, bank, mut rng) = setup();
        let mut w = Wallet::new();
        w.add_coin(&params, bank.withdraw_coin(&mut rng));
        w.add_coin(&params, bank.withdraw_coin(&mut rng));
        assert_eq!(w.balance(), 16);
        // 11 > 8 forces drawing from both coins.
        let items = w
            .pay(&mut rng, &params, CashBreak::Pcba, 11, b"r", 64)
            .unwrap();
        let (spends, total) = Wallet::receive(&params, bank.public_key(), &items, b"r");
        assert_eq!(total, 11);
        assert_eq!(w.balance(), 5);
        // The spends come from two distinct coins.
        let mut roots: Vec<_> = spends.iter().map(|s| s.root_tag.clone()).collect();
        roots.sort();
        roots.dedup();
        assert_eq!(roots.len(), 2);
        // And they all deposit.
        let mut bank = bank;
        let results = bank.deposit_batch(&spends, b"r");
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn consecutive_payments_until_empty() {
        let (params, bank, mut rng) = setup();
        let mut w = Wallet::new();
        w.add_coin(&params, bank.withdraw_coin(&mut rng));
        let mut paid = 0;
        for amount in [3u64, 2, 2, 1] {
            let items = w
                .pay(&mut rng, &params, CashBreak::Epcba, amount, b"", 64)
                .unwrap();
            let (_, total) = Wallet::receive(&params, bank.public_key(), &items, b"");
            assert_eq!(total, amount);
            paid += amount;
        }
        assert_eq!(paid, 8);
        assert_eq!(w.balance(), 0);
        w.compact();
        assert_eq!(w.coin_count(), 0);
    }

    #[test]
    fn drain_redeems_all_change() {
        let (params, bank, mut rng) = setup();
        let mut bank = bank;
        let mut w = Wallet::new();
        w.add_coin(&params, bank.withdraw_coin(&mut rng));
        w.pay(&mut rng, &params, CashBreak::Pcba, 5, b"", 64)
            .unwrap();
        let change = w.drain(&mut rng, &params, b"");
        let total: u64 = change
            .iter()
            .map(|s| bank.deposit(s, b"").expect("change deposits"))
            .sum();
        assert_eq!(total, 3);
        assert_eq!(w.balance(), 0);
        assert_eq!(w.coin_count(), 0);
    }

    #[test]
    fn failed_overdraft_rolls_back() {
        let (params, bank, mut rng) = setup();
        let mut w = Wallet::new();
        w.add_coin(&params, bank.withdraw_coin(&mut rng));
        let before = w.balance();
        assert_eq!(
            w.pay(&mut rng, &params, CashBreak::Pcba, before + 1, b"", 64)
                .err(),
            Some(DecError::BadAmount)
        );
        assert_eq!(w.balance(), before, "no partial allocation leaks");
    }

    #[test]
    #[should_panic(expected = "withdraw the coin")]
    fn unsigned_coin_rejected() {
        let (params, _, mut rng) = setup();
        let mut w = Wallet::new();
        w.add_coin(&params, Coin::mint(&mut rng, &params));
    }
}
