//! Error type for divisible e-cash operations.

/// Why a coin, spend or deposit was rejected.
///
/// Detail payloads are owned strings so the error can cross a
/// serialized transport boundary and be reconstructed on the far side
/// (see `ppms-core`'s wire module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecError {
    /// The bank's signature on the coin root is missing or invalid.
    BadBankSignature,
    /// A zero-knowledge proof failed to verify.
    BadProof(String),
    /// A revealed node key is not an element of its level's group.
    BadGroupElement,
    /// The spend depth is outside `1..=L`.
    BadDepth,
    /// The same node (or an ancestor/descendant) was already deposited.
    DoubleSpend(String),
    /// Deposits for this coin would exceed its face value.
    Overspend,
    /// A payment item failed verification (fake coin `E(0)` or junk).
    FakeCoin,
    /// A cash-break request was outside `1..=2^L`.
    BadAmount,
}

impl std::fmt::Display for DecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecError::BadBankSignature => write!(f, "bank signature on coin root invalid"),
            DecError::BadProof(which) => write!(f, "zero-knowledge proof failed: {which}"),
            DecError::BadGroupElement => write!(f, "node key outside its group"),
            DecError::BadDepth => write!(f, "spend depth out of range"),
            DecError::DoubleSpend(kind) => write!(f, "double spend detected ({kind})"),
            DecError::Overspend => write!(f, "coin face value exceeded"),
            DecError::FakeCoin => write!(f, "payment item is not a valid coin"),
            DecError::BadAmount => write!(f, "amount outside [1, 2^L]"),
        }
    }
}

impl std::error::Error for DecError {}
