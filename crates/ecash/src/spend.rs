//! Spends: node paths, the linked representation proof for level 1,
//! the [`Spend`] object and its verification.

use crate::coin::{edge_binding, root_tag_base, token_for};
use crate::error::DecError;
use crate::params::DecParams;
use ppms_bigint::BigUint;
use ppms_crypto::group::SchnorrGroup;
use ppms_crypto::rsa::{self, RsaPublicKey};
use ppms_crypto::zkp::ddlog::{DdlogProof, DdlogStatement};
use ppms_crypto::zkp::orproof::OrProof;
use ppms_crypto::zkp::transcript::Transcript;
use ppms_crypto::zkp::GroupClaim;
use rand::Rng;

/// A path from the root to a tree node: `bits[j]` picks the left/right
/// child at level `j + 1`. Depth (`= bits.len()`) is between 1 and `L`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodePath {
    bits: Vec<bool>,
}

impl NodePath {
    /// Builds from explicit bits (depth = `bits.len()`, must be ≥ 1).
    pub fn new(bits: Vec<bool>) -> NodePath {
        assert!(!bits.is_empty(), "node paths start below the root");
        NodePath { bits }
    }

    /// The `index`-th node at `depth` in left-to-right order.
    pub fn from_index(depth: usize, index: u64) -> NodePath {
        assert!((1..=63).contains(&depth));
        assert!(index < (1u64 << depth));
        let bits = (0..depth).rev().map(|i| (index >> i) & 1 == 1).collect();
        NodePath { bits }
    }

    /// Path bits, root-first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Node depth.
    pub fn depth(&self) -> usize {
        self.bits.len()
    }

    /// `true` iff `self` is an ancestor of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &NodePath) -> bool {
        other.bits.len() >= self.bits.len() && other.bits[..self.bits.len()] == self.bits[..]
    }
}

/// The level-1 composite proof: knowledge of `(t_0, s)` with
///
/// ```text
/// R   = u^{t_0}
/// t_1 = g_b^{t_0} · h^{s}
/// ```
///
/// in `G_2`, with the `t_0` response shared between the two equations
/// (an AND-composition of a Schnorr and an Okamoto representation
/// proof under one challenge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedReprProof {
    /// Commitment for the tag equation, `u^{k_0}`.
    pub t_r: BigUint,
    /// Commitment for the node equation, `g_b^{k_0} · h^{k_1}`.
    pub t_1: BigUint,
    /// Shared response for `t_0`.
    pub s0: BigUint,
    /// Response for `s`.
    pub s1: BigUint,
}

impl LinkedReprProof {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prove<R: Rng + ?Sized>(
        rng: &mut R,
        group: &SchnorrGroup,
        u: &BigUint,
        root_tag: &BigUint,
        gb: &BigUint,
        h: &BigUint,
        t1: &BigUint,
        t0: &BigUint,
        s: &BigUint,
        binding: &[u8],
    ) -> LinkedReprProof {
        let k0 = group.random_exponent(rng);
        let k1 = group.random_exponent(rng);
        let t_r = group.exp(u, &k0);
        let t_1 = group.multi_exp2(gb, &k0, h, &k1);
        let c = Self::challenge(group, u, root_tag, gb, h, t1, &t_r, &t_1, binding);
        let s0 = (&k0 + &c.modmul(t0, &group.q)) % &group.q;
        let s1 = (&k1 + &c.modmul(s, &group.q)) % &group.q;
        LinkedReprProof { t_r, t_1, s0, s1 }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn verify(
        &self,
        group: &SchnorrGroup,
        u: &BigUint,
        root_tag: &BigUint,
        gb: &BigUint,
        h: &BigUint,
        t1: &BigUint,
        binding: &[u8],
    ) -> bool {
        if !group.contains(&self.t_r) || !group.contains(&self.t_1) {
            return false;
        }
        let c = Self::challenge(group, u, root_tag, gb, h, t1, &self.t_r, &self.t_1, binding);
        let tag_ok = group.exp(u, &self.s0) == group.mul(&self.t_r, &group.exp(root_tag, &c));
        let node_ok =
            group.multi_exp2(gb, &self.s0, h, &self.s1) == group.mul(&self.t_1, &group.exp(t1, &c));
        tag_ok && node_ok
    }

    #[allow(clippy::too_many_arguments)]
    fn challenge(
        group: &SchnorrGroup,
        u: &BigUint,
        root_tag: &BigUint,
        gb: &BigUint,
        h: &BigUint,
        t1: &BigUint,
        t_r: &BigUint,
        t_1: &BigUint,
        binding: &[u8],
    ) -> BigUint {
        let mut tr = Transcript::new("dec-linked-repr");
        tr.append_int("p", &group.p);
        tr.append_int("u", u);
        tr.append_int("R", root_tag);
        tr.append_int("gb", gb);
        tr.append_int("h", h);
        tr.append_int("t1", t1);
        tr.append("binding", binding);
        tr.append_int("T_R", t_r);
        tr.append_int("T_1", t_1);
        tr.challenge_below("c", &group.q)
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        [&self.t_r, &self.t_1, &self.s0, &self.s1]
            .iter()
            .map(|v| v.bits().div_ceil(8))
            .sum()
    }

    /// Expresses the two verification equations as [`GroupClaim`]s for
    /// batch combination. `None` means a membership screen failed and
    /// the item must be decided by the sequential
    /// [`LinkedReprProof::verify`] (which performs the same screens,
    /// so decisions stay identical).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn batch_claims(
        &self,
        group: &SchnorrGroup,
        u: &BigUint,
        root_tag: &BigUint,
        gb: &BigUint,
        h: &BigUint,
        t1: &BigUint,
        binding: &[u8],
    ) -> Option<[GroupClaim; 2]> {
        if !group.contains(&self.t_r) || !group.contains(&self.t_1) {
            return None;
        }
        // Combined-check soundness needs every base in the subgroup;
        // the Jacobi screen is cheap relative to the saved exps.
        if !group.contains(u)
            || !group.contains(root_tag)
            || !group.contains(gb)
            || !group.contains(h)
            || !group.contains(t1)
        {
            return None;
        }
        let c = Self::challenge(group, u, root_tag, gb, h, t1, &self.t_r, &self.t_1, binding);
        let neg_c = c.modneg(&group.q);
        Some([
            GroupClaim {
                lhs: vec![
                    (u.clone(), &self.s0 % &group.q),
                    (root_tag.clone(), neg_c.clone()),
                ],
                rhs: vec![(self.t_r.clone(), BigUint::one())],
            },
            GroupClaim {
                lhs: vec![
                    (gb.clone(), &self.s0 % &group.q),
                    (h.clone(), &self.s1 % &group.q),
                    (t1.clone(), neg_c),
                ],
                rhs: vec![(self.t_1.clone(), BigUint::one())],
            },
        ])
    }
}

/// A transferable spend of one tree node.
#[derive(Debug, Clone)]
pub struct Spend {
    /// The coin's public root tag `R`.
    pub root_tag: BigUint,
    /// The bank's blind-issued signature on the root token.
    pub bank_sig: BigUint,
    /// The (public) first path bit; deeper bits are hidden by the
    /// OR-proofs.
    pub first_bit: bool,
    /// Revealed key chain `t_1 … t_d`; the last entry is the serial.
    pub keys: Vec<BigUint>,
    /// Level-1 linked representation proof.
    pub link: LinkedReprProof,
    /// Stadler proof `R = u^(g_1^s)`.
    pub root_proof: DdlogProof,
    /// OR-proofs for edges at depth 2..=d.
    pub edge_proofs: Vec<OrProof>,
}

impl Spend {
    /// Node depth of this spend.
    pub fn depth(&self) -> usize {
        self.keys.len()
    }

    /// The spend serial (the spent node's key).
    pub fn serial(&self) -> &BigUint {
        self.keys.last().expect("depth >= 1")
    }

    /// Verifies the spend against DEC parameters and the bank's
    /// blind-signing key. Returns the node value on success.
    pub fn verify(
        &self,
        params: &DecParams,
        bank_pk: &RsaPublicKey,
        binding: &[u8],
    ) -> Result<u64, DecError> {
        let _span = ppms_obs::timed!("ecash.spend_verify_ns");
        let depth = self.depth();
        if depth == 0 || depth > params.levels {
            return Err(DecError::BadDepth);
        }
        if self.edge_proofs.len() != depth - 1 {
            return Err(DecError::BadProof("edge proof count".into()));
        }

        // 1. Bank signature on the root token.
        if !rsa::verify(bank_pk, &token_for(&self.root_tag), &self.bank_sig) {
            return Err(DecError::BadBankSignature);
        }

        // 2. Group membership of the revealed keys.
        let lvl1 = params.tower.level(1);
        if !lvl1.group.contains(&self.root_tag) {
            return Err(DecError::BadGroupElement);
        }
        for (i, key) in self.keys.iter().enumerate() {
            if !params.tower.level(i + 1).group.contains(key) {
                return Err(DecError::BadGroupElement);
            }
        }

        // 3. Stadler root proof.
        let lvl0 = params.tower.level(0);
        let u = root_tag_base(params);
        let stmt = DdlogStatement {
            outer: &lvl1.group,
            inner: &lvl0.group,
            g: &u,
            h: &lvl0.group.g,
            y: &self.root_tag,
        };
        if !self
            .root_proof
            .verify(&stmt, params.zkp_rounds, "dec-root", binding)
        {
            return Err(DecError::BadProof("root double-dlog".into()));
        }

        // 4. Level-1 linked representation proof.
        let gb = if self.first_bit { &lvl1.g1 } else { &lvl1.g0 };
        if !self.link.verify(
            &lvl1.group,
            &u,
            &self.root_tag,
            gb,
            &lvl1.h,
            &self.keys[0],
            binding,
        ) {
            return Err(DecError::BadProof("level-1 link".into()));
        }

        // 5. Edge OR-proofs.
        for d in 2..=depth {
            let lvl = params.tower.level(d);
            let t_prev = &self.keys[d - 2];
            let t_cur = &self.keys[d - 1];
            let ys = [
                lvl.group
                    .mul(t_cur, &lvl.group.inv(&lvl.group.exp(&lvl.g0, t_prev))),
                lvl.group
                    .mul(t_cur, &lvl.group.inv(&lvl.group.exp(&lvl.g1, t_prev))),
            ];
            let extra = edge_binding(&self.root_tag, t_prev, t_cur, d, binding);
            if !self.edge_proofs[d - 2].verify(&lvl.group, &lvl.h, &ys, "dec-edge", &extra) {
                return Err(DecError::BadProof("edge OR".into()));
            }
        }

        Ok(params.node_value(depth))
    }

    /// Deterministic wire-size model for a spend at `depth` (fixed
    /// element widths so real and fake items are indistinguishable by
    /// length; also feeds Table II's traffic accounting).
    pub fn wire_size_model(params: &DecParams, depth: usize, bank_sig_bytes: usize) -> usize {
        let eb = |lvl: usize| params.tower.level(lvl).group.element_bytes();
        let xb = |lvl: usize| params.tower.level(lvl).group.q.bits().div_ceil(8);
        let mut size = eb(1) + bank_sig_bytes + 1; // root tag, bank sig, first bit
        for d in 1..=depth {
            size += eb(d); // t_d
        }
        // Linked repr: two commitments + two responses in G_2.
        size += 2 * eb(1) + 2 * xb(1);
        // Stadler: rounds × (outer commitment + inner exponent).
        size += params.zkp_rounds * (eb(1) + xb(0));
        // Edge OR proofs: 2 commitments (elements) + 2 challenges +
        // 2 responses (exponents) in G_{d+1}.
        for d in 2..=depth {
            size += 2 * eb(d) + 4 * xb(d);
        }
        size
    }

    /// Wire size of this spend under the fixed-width model.
    pub fn wire_size(&self, params: &DecParams, bank_sig_bytes: usize) -> usize {
        Spend::wire_size_model(params, self.depth(), bank_sig_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::Coin;
    use crate::DecBank;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(levels: usize) -> (DecParams, DecBank, Coin, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xDEC);
        let params = DecParams::fixture(levels, 12);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        let mut coin = Coin::mint(&mut rng, &params);
        let (blinded, factor) = coin.blind_token(&mut rng, bank.public_key());
        let sig = bank.sign_blinded(&blinded);
        assert!(coin.attach_signature(bank.public_key(), &sig, &factor));
        (params, bank, coin, rng)
    }

    #[test]
    fn node_path_helpers() {
        let p = NodePath::from_index(3, 5); // 101
        assert_eq!(p.bits(), &[true, false, true]);
        assert_eq!(p.depth(), 3);
        let anc = NodePath::new(vec![true, false]);
        assert!(anc.is_prefix_of(&p));
        assert!(!p.is_prefix_of(&anc));
        assert!(p.is_prefix_of(&p.clone()));
    }

    #[test]
    fn spend_verifies_at_every_depth() {
        let (params, bank, coin, mut rng) = setup(3);
        for depth in 1..=3 {
            let path = NodePath::from_index(depth, 0);
            let spend = coin.spend(&mut rng, &params, &path, b"receiver");
            let value = spend
                .verify(&params, bank.public_key(), b"receiver")
                .unwrap();
            assert_eq!(value, params.node_value(depth), "depth {depth}");
        }
    }

    #[test]
    fn binding_prevents_replay() {
        let (params, bank, coin, mut rng) = setup(2);
        let path = NodePath::from_index(2, 1);
        let spend = coin.spend(&mut rng, &params, &path, b"alice");
        assert!(spend.verify(&params, bank.public_key(), b"alice").is_ok());
        assert_eq!(
            spend.verify(&params, bank.public_key(), b"bob"),
            Err(DecError::BadProof("root double-dlog".into()))
        );
    }

    #[test]
    fn unsigned_coin_rejected() {
        let mut rng = StdRng::seed_from_u64(0xDEC2);
        let params = DecParams::fixture(2, 8);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        let mut coin = Coin::mint(&mut rng, &params);
        // Attach a signature from the WRONG key.
        let other_bank = DecBank::new(&mut rng, params.clone(), 512);
        let (blinded, factor) = coin.blind_token(&mut rng, other_bank.public_key());
        let sig = other_bank.sign_blinded(&blinded);
        assert!(coin.attach_signature(other_bank.public_key(), &sig, &factor));
        let spend = coin.spend(&mut rng, &params, &NodePath::from_index(1, 0), b"");
        assert_eq!(
            spend.verify(&params, bank.public_key(), b""),
            Err(DecError::BadBankSignature)
        );
    }

    #[test]
    fn tampered_keys_rejected() {
        let (params, bank, coin, mut rng) = setup(3);
        let path = NodePath::from_index(3, 4);
        let mut spend = coin.spend(&mut rng, &params, &path, b"");
        // Replace the serial with another valid group element.
        let lvl = params.tower.level(3);
        spend.keys[2] = lvl.group.random_element(&mut rng);
        let err = spend.verify(&params, bank.public_key(), b"").unwrap_err();
        assert!(matches!(err, DecError::BadProof(_)), "got {err:?}");
    }

    #[test]
    fn wrong_depth_rejected() {
        let (params, bank, coin, mut rng) = setup(2);
        let spend = coin.spend(&mut rng, &params, &NodePath::from_index(2, 0), b"");
        let mut truncated = spend.clone();
        truncated.keys.pop();
        // Now edge proof count mismatches.
        assert_eq!(
            truncated.verify(&params, bank.public_key(), b""),
            Err(DecError::BadProof("edge proof count".into()))
        );
    }

    #[test]
    fn sibling_spends_both_verify() {
        let (params, bank, coin, mut rng) = setup(2);
        let s0 = coin.spend(&mut rng, &params, &NodePath::from_index(2, 2), b"x");
        let s1 = coin.spend(&mut rng, &params, &NodePath::from_index(2, 3), b"x");
        assert!(s0.verify(&params, bank.public_key(), b"x").is_ok());
        assert!(s1.verify(&params, bank.public_key(), b"x").is_ok());
        assert_ne!(s0.serial(), s1.serial());
        // Siblings share their depth-1 ancestor key.
        assert_eq!(s0.keys[0], s1.keys[0]);
    }

    #[test]
    fn wire_size_grows_with_depth() {
        let (params, _, coin, mut rng) = setup(3);
        let mut last = 0;
        for depth in 1..=3 {
            let spend = coin.spend(&mut rng, &params, &NodePath::from_index(depth, 0), b"");
            let size = spend.wire_size(&params, 64);
            assert!(size > last, "size must grow with depth");
            assert_eq!(size, Spend::wire_size_model(&params, depth, 64));
            last = size;
        }
    }
}
