//! Coins: minting, withdrawal (blind issuance), node-key derivation,
//! and the fake coins `E(0)` used to pad payments.

use crate::params::DecParams;
use crate::spend::{LinkedReprProof, NodePath, Spend};
use ppms_bigint::{random_below, BigUint};
use ppms_crypto::hash::hash_parts;
use ppms_crypto::rsa::{self, BlindingFactor, RsaPublicKey};
use ppms_crypto::zkp::ddlog::{DdlogProof, DdlogStatement};
use ppms_crypto::zkp::orproof::OrProof;
use rand::Rng;

/// Domain tag for the bank's blind signature on coin roots.
const COIN_TOKEN_TAG: &str = "ppms-dec-coin-root";

/// A divisible coin of face value `2^L`.
///
/// The owner keeps `s` and `t_0` secret; the public identity of the
/// coin is the root tag `R = u^{t_0}` carrying the bank's (blindly
/// issued) signature.
#[derive(Debug, Clone)]
pub struct Coin {
    /// Coin secret `s ∈ Z_{q_1}`.
    s: BigUint,
    /// Secret root key `t_0 = g_1^s ∈ G_1`.
    t0: BigUint,
    /// Public root tag `R = u_2^{t_0} ∈ G_2`.
    pub root_tag: BigUint,
    /// The bank's FDH signature on [`Coin::token`], once withdrawn.
    pub bank_sig: Option<BigUint>,
}

/// The base used for root tags (a tag generator of `G_2`, derived once
/// at setup and cached in [`DecParams`]).
pub(crate) fn root_tag_base(params: &DecParams) -> BigUint {
    params.root_tag_base().clone()
}

/// Token bytes the bank signs for a given root tag.
pub(crate) fn token_for(root_tag: &BigUint) -> Vec<u8> {
    hash_parts(COIN_TOKEN_TAG, &[&root_tag.to_bytes_be()]).to_vec()
}

impl Coin {
    /// Mints a fresh (unsigned) coin.
    pub fn mint<R: Rng + ?Sized>(rng: &mut R, params: &DecParams) -> Coin {
        let lvl0 = params.tower.level(0);
        let s = random_below(rng, &lvl0.group.q);
        let t0 = lvl0.group.g_exp(&s);
        let root_tag = params.tower.level(1).group.exp(&root_tag_base(params), &t0);
        Coin {
            s,
            t0,
            root_tag,
            bank_sig: None,
        }
    }

    /// The token the bank signs (hash of the root tag).
    pub fn token(&self) -> Vec<u8> {
        token_for(&self.root_tag)
    }

    /// Secret PRF seed for the double-spend tracing nonces
    /// (deterministic in the coin secret, never revealed).
    pub(crate) fn trace_seed(&self) -> Vec<u8> {
        hash_parts("dec-trace-seed", &[&self.s.to_bytes_be()]).to_vec()
    }

    /// Withdrawal step 1 (user side): blinds the token for the bank.
    pub fn blind_token<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        bank_pk: &RsaPublicKey,
    ) -> (BigUint, BlindingFactor) {
        rsa::blind(rng, bank_pk, &self.token())
    }

    /// Withdrawal step 3 (user side): unblinds the bank's response and
    /// attaches the signature. Returns `false` if the signature does
    /// not verify (misbehaving bank).
    pub fn attach_signature(
        &mut self,
        bank_pk: &RsaPublicKey,
        blinded_sig: &BigUint,
        factor: &BlindingFactor,
    ) -> bool {
        let sig = rsa::unblind(bank_pk, blinded_sig, factor);
        if rsa::verify(bank_pk, &self.token(), &sig) {
            self.bank_sig = Some(sig);
            true
        } else {
            false
        }
    }

    /// `true` once the coin carries a bank signature.
    pub fn is_signed(&self) -> bool {
        self.bank_sig.is_some()
    }

    /// Derives the node key `t_d` for a path (internal; exposed for
    /// tests and the Fig. 4 bench via [`Coin::node_key`]).
    pub fn node_key(&self, params: &DecParams, path: &NodePath) -> BigUint {
        let mut t = self.t0.clone();
        for (d, &bit) in path.bits().iter().enumerate() {
            let lvl = params.tower.level(d + 1);
            let edge = if bit { &lvl.g1 } else { &lvl.g0 };
            t = lvl
                .group
                .mul(&lvl.group.exp(edge, &t), &lvl.group.exp(&lvl.h, &self.s));
        }
        t
    }

    /// Spends the node at `path`, producing a transferable [`Spend`]
    /// bound to `binding` (the receiver context — replaying the spend
    /// to a different receiver fails verification).
    pub fn spend<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &DecParams,
        path: &NodePath,
        binding: &[u8],
    ) -> Spend {
        let _span = ppms_obs::timed!("ecash.spend_ns");
        let depth = path.depth();
        assert!(
            depth >= 1 && depth <= params.levels,
            "spend depth out of range"
        );
        let bank_sig = self
            .bank_sig
            .clone()
            .expect("coin must be withdrawn before spending");

        // Reveal the key chain t_1..t_d.
        let mut keys = Vec::with_capacity(depth);
        let mut t = self.t0.clone();
        for (d, &bit) in path.bits().iter().enumerate() {
            let lvl = params.tower.level(d + 1);
            let edge = if bit { &lvl.g1 } else { &lvl.g0 };
            t = lvl
                .group
                .mul(&lvl.group.exp(edge, &t), &lvl.group.exp(&lvl.h, &self.s));
            keys.push(t.clone());
        }

        // Stadler proof: R = u^(g_1^s), witness s.
        let lvl0 = params.tower.level(0);
        let lvl1 = params.tower.level(1);
        let u = root_tag_base(params);
        let stmt = DdlogStatement {
            outer: &lvl1.group,
            inner: &lvl0.group,
            g: &u,
            h: &lvl0.group.g,
            y: &self.root_tag,
        };
        let root_proof =
            DdlogProof::prove(rng, &stmt, &self.s, params.zkp_rounds, "dec-root", binding);

        // Level-1 linked representation proof (public first bit).
        let first_bit = path.bits()[0];
        let gb = if first_bit { &lvl1.g1 } else { &lvl1.g0 };
        let link = LinkedReprProof::prove(
            rng,
            &lvl1.group,
            &u,
            &self.root_tag,
            gb,
            &lvl1.h,
            &keys[0],
            &self.t0,
            &self.s,
            binding,
        );

        // Per-edge OR proofs for depths 2..=d (path bits hidden).
        let mut edge_proofs = Vec::with_capacity(depth.saturating_sub(1));
        for d in 2..=depth {
            let lvl = params.tower.level(d);
            let t_prev = &keys[d - 2];
            let t_cur = &keys[d - 1];
            let ys = [
                lvl.group
                    .mul(t_cur, &lvl.group.inv(&lvl.group.exp(&lvl.g0, t_prev))),
                lvl.group
                    .mul(t_cur, &lvl.group.inv(&lvl.group.exp(&lvl.g1, t_prev))),
            ];
            let bit = path.bits()[d - 1];
            let extra = edge_binding(&self.root_tag, t_prev, t_cur, d, binding);
            edge_proofs.push(OrProof::prove(
                rng,
                &lvl.group,
                &lvl.h,
                &ys,
                &self.s,
                bit as usize,
                "dec-edge",
                &extra,
            ));
        }

        Spend {
            root_tag: self.root_tag.clone(),
            bank_sig,
            first_bit,
            keys,
            link,
            root_proof,
            edge_proofs,
        }
    }
}

/// Binds an edge proof to its position in the spend.
pub(crate) fn edge_binding(
    root_tag: &BigUint,
    t_prev: &BigUint,
    t_cur: &BigUint,
    depth: usize,
    binding: &[u8],
) -> Vec<u8> {
    hash_parts(
        "dec-edge-binding",
        &[
            &root_tag.to_bytes_be(),
            &t_prev.to_bytes_be(),
            &t_cur.to_bytes_be(),
            &(depth as u64).to_be_bytes(),
            binding,
        ],
    )
    .to_vec()
}

/// A fake coin `E(0)` (paper §IV-A4): random bytes sized exactly like
/// a real spend of the claimed depth, so an observer cannot tell real
/// and fake items apart by length. Receivers detect fakes because
/// verification fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FakeCoin {
    /// The padding bytes.
    pub bytes: Vec<u8>,
}

impl FakeCoin {
    /// Builds a fake coin matching the wire size of a real spend at
    /// `depth`.
    pub fn matching<R: Rng + ?Sized>(
        rng: &mut R,
        params: &DecParams,
        depth: usize,
        bank_sig_bytes: usize,
    ) -> FakeCoin {
        let mut bytes = vec![0u8; Spend::wire_size_model(params, depth, bank_sig_bytes)];
        rng.fill_bytes(&mut bytes);
        FakeCoin { bytes }
    }
}

/// One item of a payment bundle: a real spend or padding.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // bundles are spend-dominated; boxing would cost an alloc per coin
pub enum PaymentItem {
    /// A verifiable spend.
    Real(Spend),
    /// Padding `E(0)`.
    Fake(FakeCoin),
}

impl PaymentItem {
    /// Wire size for traffic accounting.
    pub fn wire_size(&self, params: &DecParams, bank_sig_bytes: usize) -> usize {
        match self {
            PaymentItem::Real(s) => s.wire_size(params, bank_sig_bytes),
            PaymentItem::Fake(f) => f.bytes.len(),
        }
    }
}
