//! Binary serialization for spends and payment bundles.
//!
//! PPMSdec wraps the broken-up payment in `RSA_ENC_rpksp(...)` (paper
//! eq. (8)), so the bundle must exist as actual bytes — this module
//! provides the length-prefixed encoding used inside that ciphertext
//! and by the traffic accounting.

use crate::coin::{FakeCoin, PaymentItem};
use crate::spend::{LinkedReprProof, Spend};
use ppms_bigint::BigUint;
use ppms_crypto::zkp::ddlog::DdlogProof;
use ppms_crypto::zkp::orproof::OrProof;

/// Serialization / deserialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError;

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire encoding")
    }
}

impl std::error::Error for WireError {}

fn put_int(out: &mut Vec<u8>, v: &BigUint) {
    let b = v.to_bytes_be();
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(&b);
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        if self.buf.len() < 4 {
            return Err(WireError);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if self.buf.len() < 4 + len {
            return Err(WireError);
        }
        let (head, tail) = self.buf[4..].split_at(len);
        self.buf = tail;
        Ok(head)
    }

    fn int(&mut self) -> Result<BigUint, WireError> {
        Ok(BigUint::from_bytes_be(self.bytes()?))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let (&b, rest) = self.buf.split_first().ok_or(WireError)?;
        self.buf = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        if self.buf.len() < 4 {
            return Err(WireError);
        }
        let v = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes"));
        self.buf = &self.buf[4..];
        Ok(v)
    }

    fn done(&self) -> bool {
        self.buf.is_empty()
    }
}

fn put_ints(out: &mut Vec<u8>, ints: &[BigUint]) {
    out.extend_from_slice(&(ints.len() as u32).to_be_bytes());
    for v in ints {
        put_int(out, v);
    }
}

fn read_ints(r: &mut Reader<'_>) -> Result<Vec<BigUint>, WireError> {
    let n = r.u32()? as usize;
    if n > 1 << 16 {
        return Err(WireError);
    }
    (0..n).map(|_| r.int()).collect()
}

impl Spend {
    /// Serializes to the wire encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_int(&mut out, &self.root_tag);
        put_int(&mut out, &self.bank_sig);
        out.push(self.first_bit as u8);
        put_ints(&mut out, &self.keys);
        put_int(&mut out, &self.link.t_r);
        put_int(&mut out, &self.link.t_1);
        put_int(&mut out, &self.link.s0);
        put_int(&mut out, &self.link.s1);
        put_ints(&mut out, &self.root_proof.commitments);
        put_ints(&mut out, &self.root_proof.responses);
        out.extend_from_slice(&(self.edge_proofs.len() as u32).to_be_bytes());
        for p in &self.edge_proofs {
            for v in p.c.iter().chain(&p.s).chain(&p.t) {
                put_int(&mut out, v);
            }
        }
        out
    }

    /// Parses the wire encoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Spend, WireError> {
        let mut r = Reader::new(bytes);
        let root_tag = r.int()?;
        let bank_sig = r.int()?;
        let first_bit = r.u8()? == 1;
        let keys = read_ints(&mut r)?;
        if keys.is_empty() {
            return Err(WireError);
        }
        let link = LinkedReprProof {
            t_r: r.int()?,
            t_1: r.int()?,
            s0: r.int()?,
            s1: r.int()?,
        };
        let root_proof = DdlogProof {
            commitments: read_ints(&mut r)?,
            responses: read_ints(&mut r)?,
        };
        let n_edges = r.u32()? as usize;
        if n_edges > 1 << 10 {
            return Err(WireError);
        }
        let mut edge_proofs = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let c = [r.int()?, r.int()?];
            let s = [r.int()?, r.int()?];
            let t = [r.int()?, r.int()?];
            edge_proofs.push(OrProof { c, s, t });
        }
        if !r.done() {
            return Err(WireError);
        }
        Ok(Spend {
            root_tag,
            bank_sig,
            first_bit,
            keys,
            link,
            root_proof,
            edge_proofs,
        })
    }
}

/// Serializes a payment bundle (real spends tagged `1`, fakes `0`).
pub fn encode_payment(items: &[PaymentItem]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(items.len() as u32).to_be_bytes());
    for item in items {
        match item {
            PaymentItem::Real(s) => {
                out.push(1);
                put_bytes(&mut out, &s.to_bytes());
            }
            PaymentItem::Fake(f) => {
                out.push(0);
                put_bytes(&mut out, &f.bytes);
            }
        }
    }
    out
}

/// Parses a payment bundle. Fake items (or items that fail to parse
/// as spends) come back as [`PaymentItem::Fake`] — exactly the
/// receiver behaviour the paper describes for `E(0)`.
pub fn decode_payment(bytes: &[u8]) -> Result<Vec<PaymentItem>, WireError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    if n > 1 << 20 {
        return Err(WireError);
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8()?;
        let body = r.bytes()?;
        match tag {
            1 => match Spend::from_bytes(body) {
                Ok(s) => items.push(PaymentItem::Real(s)),
                Err(_) => items.push(PaymentItem::Fake(FakeCoin {
                    bytes: body.to_vec(),
                })),
            },
            0 => items.push(PaymentItem::Fake(FakeCoin {
                bytes: body.to_vec(),
            })),
            _ => return Err(WireError),
        }
    }
    if !r.done() {
        return Err(WireError);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spend::NodePath;
    use crate::{DecBank, DecParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spend_at(depth: usize) -> (DecParams, crate::DecBank, Spend, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x31AE);
        let params = DecParams::fixture(3, 8);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        let coin = bank.withdraw_coin(&mut rng);
        let s = coin.spend(&mut rng, &params, &NodePath::from_index(depth, 0), b"");
        (params, bank, s, rng)
    }

    #[test]
    fn spend_roundtrip_all_depths() {
        for depth in 1..=3 {
            let (params, bank, spend, _) = spend_at(depth);
            let bytes = spend.to_bytes();
            let back = Spend::from_bytes(&bytes).unwrap();
            assert_eq!(back.root_tag, spend.root_tag);
            assert_eq!(back.keys, spend.keys);
            assert_eq!(back.first_bit, spend.first_bit);
            // Deserialized spend still verifies.
            assert!(
                back.verify(&params, bank.public_key(), b"").is_ok(),
                "depth {depth}"
            );
        }
    }

    #[test]
    fn truncated_rejected() {
        let (.., spend, _) = spend_at(2);
        let bytes = spend.to_bytes();
        assert!(Spend::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Spend::from_bytes(&[]).is_err());
        // Trailing garbage also rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Spend::from_bytes(&extended).is_err());
    }

    #[test]
    fn payment_bundle_roundtrip() {
        let (params, bank, spend, mut rng) = spend_at(3);
        let fake = FakeCoin::matching(&mut rng, &params, 3, 64);
        let items = vec![PaymentItem::Real(spend), PaymentItem::Fake(fake.clone())];
        let bytes = encode_payment(&items);
        let back = decode_payment(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        match &back[0] {
            PaymentItem::Real(s) => assert!(s.verify(&params, bank.public_key(), b"").is_ok()),
            _ => panic!("expected real spend"),
        }
        match &back[1] {
            PaymentItem::Fake(f) => assert_eq!(f.bytes, fake.bytes),
            _ => panic!("expected fake"),
        }
    }

    #[test]
    fn corrupted_real_item_degrades_to_fake() {
        // Tampering inside a real item's body must not crash parsing;
        // the item simply fails verification downstream.
        let (params, bank, spend, _) = spend_at(2);
        let items = vec![PaymentItem::Real(spend)];
        let mut bytes = encode_payment(&items);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        if let Ok(back) = decode_payment(&bytes) {
            for item in back {
                if let PaymentItem::Real(s) = item {
                    assert!(s.verify(&params, bank.public_key(), b"").is_err());
                }
            }
        }
    }
}
