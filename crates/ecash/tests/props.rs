//! Property-based tests for the divisible e-cash invariants:
//! break-plan laws over all amounts, allocator disjointness, spend
//! completeness over random nodes, and double-spend detection over
//! random spend sequences.

use ppms_ecash::brk::NodeAllocator;
use ppms_ecash::{break_epcba, break_pcba, break_unitary, DecBank, DecParams, NodePath, Spend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Shared fixture: params, bank, withdrawn coin (keygen is expensive).
fn fixture() -> &'static (DecParams, DecBank, ppms_ecash::Coin) {
    static F: OnceLock<(DecParams, DecBank, ppms_ecash::Coin)> = OnceLock::new();
    F.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xECA5);
        let params = DecParams::fixture(4, 8);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        let coin = bank.withdraw_coin(&mut rng);
        (params, bank, coin)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn break_plans_sum_and_shape(l in 1usize..8, w_frac in 0.0f64..1.0) {
        let face = 1u64 << l;
        let w = ((face as f64 * w_frac) as u64).clamp(1, face);
        let u = break_unitary(w, l).unwrap();
        prop_assert_eq!(u.denominations.len(), face as usize);
        prop_assert_eq!(u.denominations.iter().sum::<u64>(), w);
        prop_assert!(u.denominations.iter().all(|&d| d <= 1));

        let p = break_pcba(w, l).unwrap();
        prop_assert_eq!(p.denominations.len(), l + 1);
        prop_assert_eq!(p.denominations.iter().sum::<u64>(), w);
        prop_assert!(p.denominations.iter().all(|&d| d == 0 || d.is_power_of_two()));

        let e = break_epcba(w, l).unwrap();
        prop_assert_eq!(e.denominations.len(), l + 2);
        prop_assert_eq!(e.denominations.iter().sum::<u64>(), w);
        prop_assert!(e.real_coins() >= p.real_coins() || w == 1,
            "EPCBA should never produce fewer coins (w={w}, l={l})");
    }

    #[test]
    fn allocator_serves_disjoint_nodes_across_payments(l in 2usize..7, amounts in prop::collection::vec(1u64..10, 1..6)) {
        let face = 1u64 << l;
        let mut alloc = NodeAllocator::new(l);
        let mut all_paths: Vec<NodePath> = Vec::new();
        let mut allocated = 0u64;
        for &w in &amounts {
            let w = w.min(face - allocated);
            if w == 0 { break; }
            if let Ok(plan) = break_pcba(w, l) {
                if let Ok(slots) = alloc.allocate_plan(&plan) {
                    allocated += w;
                    all_paths.extend(slots.into_iter().flatten());
                } else {
                    break; // fragmented coin — acceptable
                }
            }
        }
        // Every allocation disjoint from every other.
        for i in 0..all_paths.len() {
            for j in 0..all_paths.len() {
                if i != j {
                    prop_assert!(!all_paths[i].is_prefix_of(&all_paths[j]));
                }
            }
        }
        // Remaining + allocated value = face.
        let total: u64 = all_paths.iter().map(|p| 1u64 << (l - p.depth())).sum();
        prop_assert_eq!(total + alloc.remaining(), face);
        // free_nodes covers exactly the remainder, disjoint from allocations.
        let free = alloc.free_nodes();
        let free_total: u64 = free.iter().map(|p| 1u64 << (l - p.depth())).sum();
        prop_assert_eq!(free_total, alloc.remaining());
        for f in &free {
            for a in &all_paths {
                prop_assert!(!f.is_prefix_of(a) && !a.is_prefix_of(f));
            }
        }
    }

    #[test]
    fn any_node_spends_and_deposits(depth in 1usize..5, index in any::<u64>(), seed in any::<u64>()) {
        let (params, bank, coin) = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let index = index % (1u64 << depth);
        let path = NodePath::from_index(depth, index);
        let spend = coin.spend(&mut rng, params, &path, b"prop");
        let value = spend.verify(params, bank.public_key(), b"prop").unwrap();
        prop_assert_eq!(value, params.node_value(depth));
        prop_assert_eq!(spend.depth(), depth);
    }

    #[test]
    fn spend_wire_roundtrip(depth in 1usize..5, index in any::<u64>(), seed in any::<u64>()) {
        let (params, bank, coin) = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let index = index % (1u64 << depth);
        let spend = coin.spend(&mut rng, params, &NodePath::from_index(depth, index), b"x");
        let back = Spend::from_bytes(&spend.to_bytes()).unwrap();
        prop_assert!(back.verify(params, bank.public_key(), b"x").is_ok());
        prop_assert_eq!(back.serial(), spend.serial());
    }

    #[test]
    fn from_bytes_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        // Robustness: arbitrary bytes either parse or error, never panic.
        let _ = Spend::from_bytes(&bytes);
        let _ = ppms_ecash::decode_payment(&bytes);
    }

    #[test]
    fn bitflipped_spend_never_verifies(depth in 1usize..4, seed in any::<u64>(), flip in any::<(u16, u8)>()) {
        let (params, bank, coin) = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let spend = coin.spend(&mut rng, params, &NodePath::from_index(depth, 0), b"v");
        let mut bytes = spend.to_bytes();
        let pos = flip.0 as usize % bytes.len();
        bytes[pos] ^= 1u8 << (flip.1 % 8);
        if let Ok(parsed) = Spend::from_bytes(&bytes) {
            // A successfully parsed mutant must fail verification
            // (unless the flip hit padding-equivalent bytes that do not
            // change the parsed value — rebuild and compare to exclude).
            if parsed.to_bytes() != spend.to_bytes() {
                prop_assert!(parsed.verify(params, bank.public_key(), b"v").is_err());
            }
        }
    }

    #[test]
    fn conflicting_spend_sequences_detected(paths in prop::collection::vec((1usize..5, any::<u64>()), 2..6), seed in any::<u64>()) {
        // Deposit a random sequence of nodes of a fresh coin; the bank
        // must accept exactly the prefix-free subset (first wins).
        let (params, _, _) = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let bank0 = DecBank::new(&mut rng, params.clone(), 512);
        let coin = bank0.withdraw_coin(&mut rng);
        let mut bank = bank0;

        let mut accepted: Vec<NodePath> = Vec::new();
        for &(depth, idx) in &paths {
            let path = NodePath::from_index(depth, idx % (1u64 << depth));
            let spend = coin.spend(&mut rng, params, &path, b"");
            let conflict = accepted.iter().any(|a| a.is_prefix_of(&path) || path.is_prefix_of(a));
            let result = bank.deposit(&spend, b"");
            if conflict {
                prop_assert!(result.is_err(), "conflicting {path:?} must be rejected");
            } else {
                prop_assert_eq!(result.unwrap(), params.node_value(depth));
                accepted.push(path);
            }
        }
    }

    #[test]
    fn deposited_value_never_exceeds_face(depths in prop::collection::vec(1usize..5, 1..20), seed in any::<u64>()) {
        let (params, _, _) = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let bank0 = DecBank::new(&mut rng, params.clone(), 512);
        let coin = bank0.withdraw_coin(&mut rng);
        let mut bank = bank0;
        let mut total = 0u64;
        for (i, &depth) in depths.iter().enumerate() {
            let path = NodePath::from_index(depth, (i as u64) % (1u64 << depth));
            let spend = coin.spend(&mut rng, params, &path, b"");
            if let Ok(v) = bank.deposit(&spend, b"") {
                total += v;
            }
        }
        prop_assert!(total <= params.face_value());
    }
}
