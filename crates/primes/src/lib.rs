//! # ppms-primes
//!
//! Prime machinery for the PPMS reproduction:
//!
//! * a small-prime [sieve](mod@sieve) used for trial division,
//! * [Miller–Rabin](miller_rabin) probabilistic primality testing,
//! * random / safe [prime generation](gen), and
//! * [Cunningham chains of the first kind](cunningham) —
//!   `p_{i+1} = 2·p_i + 1` — the expensive component of the divisible
//!   e-cash `Setup(DEC)` that the paper's Fig. 2 measures. Chain search
//!   is the workspace's flagship rayon-parallel workload.

pub mod cunningham;
pub mod gen;
pub mod miller_rabin;
pub mod sieve;

pub use cunningham::{
    find_chain, find_chain_parallel, fixture_chain, verify_chain, CunninghamChain,
};
pub use gen::{random_prime, random_safe_prime};
pub use miller_rabin::is_probable_prime;
pub use sieve::{small_primes, SMALL_PRIME_LIMIT};
