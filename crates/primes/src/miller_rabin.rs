//! Miller–Rabin probabilistic primality testing.
//!
//! Uses trial division by the small-prime table first, then `rounds`
//! random bases (plus base 2, which kills most composites instantly).
//! With 32 rounds the error probability is < 4^-32 per call.

use crate::sieve::small_primes;
use ppms_bigint::{random_below, BigUint, ModRing};
use rand::rngs::StdRng;
use rand::Rng;

/// Default number of random Miller–Rabin rounds.
pub const DEFAULT_ROUNDS: u32 = 32;

/// One Miller–Rabin round for witness `a` against odd `n > 3`, with
/// `n - 1 = d * 2^s` precomputed. The ring is constructed once per
/// candidate (after trial division has had its chance to reject
/// cheaply) and reused across all witnesses.
fn mr_round(ring: &ModRing, n_minus_1: &BigUint, d: &BigUint, s: usize, a: &BigUint) -> bool {
    let mut x = ring.pow(a, d);
    if x.is_one() || &x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = ring.mul(&x, &x);
        if &x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false; // nontrivial sqrt of 1 found
        }
    }
    false
}

/// Probabilistic primality test with `rounds` random bases.
pub fn is_probable_prime_rounds<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    // Small and even cases.
    if let Some(v) = n.to_u64() {
        if v < 2 {
            return false;
        }
        for &p in small_primes() {
            if p * p > v {
                break;
            }
            if v % p == 0 {
                return v == p;
            }
        }
        if v < crate::SMALL_PRIME_LIMIT * crate::SMALL_PRIME_LIMIT {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    // Trial division by the small-prime table.
    for &p in small_primes() {
        if (n % p) == 0 {
            return n.to_u64() == Some(p);
        }
    }

    // Only candidates that survived trial division pay for ring
    // construction (Montgomery constants need a division for
    // `R² mod n`); the one context then serves every witness round.
    let n_minus_1 = n - &BigUint::one();
    let s = n_minus_1.trailing_zeros().expect("n > 1 odd, so n-1 > 0");
    let d = &n_minus_1 >> s;
    let ring = ModRing::new(n);

    // Deterministic base 2 first — cheap and catches most composites.
    if !mr_round(&ring, &n_minus_1, &d, s, &BigUint::two()) {
        return false;
    }
    // Random bases in [2, n-2].
    let upper = n - &BigUint::from(3u64);
    for _ in 0..rounds {
        let a = &random_below(rng, &upper) + &BigUint::two();
        if !mr_round(&ring, &n_minus_1, &d, s, &a) {
            return false;
        }
    }
    true
}

/// Probabilistic primality test with the default round count and a
/// fresh deterministic-per-call RNG seeded from the OS.
pub fn is_probable_prime(n: &BigUint) -> bool {
    let mut rng = rand::make_rng::<StdRng>();
    is_probable_prime_rounds(n, DEFAULT_ROUNDS, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn small_values() {
        assert!(!is_probable_prime(&b(0)));
        assert!(!is_probable_prime(&b(1)));
        assert!(is_probable_prime(&b(2)));
        assert!(is_probable_prime(&b(3)));
        assert!(!is_probable_prime(&b(4)));
        assert!(is_probable_prime(&b(65521)));
        assert!(!is_probable_prime(&b(65521 * 3)));
    }

    #[test]
    fn known_primes() {
        for p in [
            1_000_000_007u64,
            1_000_000_009,
            2_147_483_647,
            67_280_421_310_721,
        ] {
            assert!(is_probable_prime(&b(p)), "{p} is prime");
        }
    }

    #[test]
    fn known_composites() {
        // Carmichael numbers — fool Fermat, not Miller-Rabin.
        for c in [561u64, 1105, 1729, 41041, 825265, 321197185] {
            assert!(!is_probable_prime(&b(c)), "{c} is a Carmichael number");
        }
    }

    #[test]
    fn strong_pseudoprimes_base2() {
        // 2047 = 23*89 is a strong pseudoprime to base 2; random bases must catch it.
        for c in [2047u64, 3277, 4033, 4681, 8321] {
            assert!(!is_probable_prime(&b(c)), "{c} is composite");
        }
    }

    #[test]
    fn big_primes() {
        // 2^127 - 1 (Mersenne) and 2^255 - 19.
        let m127 = (BigUint::one() << 127usize) - BigUint::one();
        assert!(is_probable_prime(&m127));
        let p25519 = (BigUint::one() << 255usize) - b(19);
        assert!(is_probable_prime(&p25519));
        // 2^128 + 1 is composite (= 59649589127497217 * ...).
        let f7ish = (BigUint::one() << 128usize) + BigUint::one();
        assert!(!is_probable_prime(&f7ish));
    }

    #[test]
    fn product_of_two_primes() {
        let p = (BigUint::one() << 89usize) - BigUint::one(); // Mersenne prime
        let q = (BigUint::one() << 107usize) - BigUint::one(); // Mersenne prime
        assert!(!is_probable_prime(&(&p * &q)));
    }
}
