//! Sieve of Eratosthenes for the small primes used in trial division.

use std::sync::OnceLock;

/// Upper bound of the precomputed small-prime table.
pub const SMALL_PRIME_LIMIT: u64 = 1 << 16;

/// All primes below [`SMALL_PRIME_LIMIT`], computed once and cached.
pub fn small_primes() -> &'static [u64] {
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| sieve(SMALL_PRIME_LIMIT))
}

/// Sieve of Eratosthenes up to `limit` (exclusive).
pub fn sieve(limit: u64) -> Vec<u64> {
    let limit = limit as usize;
    if limit < 3 {
        return if limit == 3 { vec![2] } else { Vec::new() };
    }
    let mut composite = vec![false; limit];
    let mut primes = Vec::new();
    for n in 2..limit {
        if !composite[n] {
            primes.push(n as u64);
            let mut k = n * n;
            while k < limit {
                composite[k] = true;
                k += n;
            }
        }
    }
    primes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_primes() {
        assert_eq!(sieve(30), vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn pi_of_small_bounds() {
        // π(10^4) = 1229 — classic checkpoint.
        assert_eq!(sieve(10_000).len(), 1229);
        assert_eq!(sieve(100).len(), 25);
    }

    #[test]
    fn tiny_limits() {
        assert!(sieve(0).is_empty());
        assert!(sieve(2).is_empty());
        assert_eq!(sieve(3), vec![2]);
    }

    #[test]
    fn cached_table_consistent() {
        let p = small_primes();
        assert_eq!(p[0], 2);
        assert_eq!(*p.last().unwrap(), 65521); // largest prime < 2^16
        assert_eq!(p.len(), 6542); // π(2^16)
    }
}
