//! Random prime generation.

use crate::miller_rabin::is_probable_prime_rounds;
use ppms_bigint::{random_odd_bits, BigUint};
use rand::Rng;

/// Miller–Rabin rounds used during generation (candidates are random,
/// so fewer rounds suffice than for adversarial inputs).
const GEN_ROUNDS: u32 = 24;

/// Generates a random probable prime with exactly `bits` bits
/// (`bits >= 2`).
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 2, "no primes below 2 bits");
    if bits == 2 {
        // Only 2-bit candidates are 2 and 3; pick randomly.
        return if rng.next_u32() & 1 == 0 {
            BigUint::two()
        } else {
            BigUint::from(3u64)
        };
    }
    loop {
        let mut cand = random_odd_bits(rng, bits);
        // Scan forward over odd numbers from the random start; restart
        // with a fresh candidate if we drift out of the bit width.
        for _ in 0..64 {
            if cand.bits() != bits {
                break;
            }
            if is_probable_prime_rounds(&cand, GEN_ROUNDS, rng) {
                return cand;
            }
            cand = &cand + &BigUint::two();
        }
    }
}

/// Generates a random safe prime `p = 2q + 1` (with `q` also prime)
/// of exactly `bits` bits. Returns `(p, q)`.
pub fn random_safe_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> (BigUint, BigUint) {
    assert!(bits >= 3, "smallest safe prime is 5 (3 bits)");
    loop {
        let q = random_prime(rng, bits - 1);
        let p = &(&q << 1usize) + &BigUint::one();
        if p.bits() == bits && is_probable_prime_rounds(&p, GEN_ROUNDS, rng) {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_probable_prime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [8usize, 16, 32, 64, 128] {
            let p = random_prime(&mut rng, bits);
            assert_eq!(p.bits(), bits, "requested {bits} bits");
            assert!(is_probable_prime(&p));
        }
    }

    #[test]
    fn tiny_widths() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let p = random_prime(&mut rng, 2);
            assert!(p == BigUint::two() || p == BigUint::from(3u64));
            let p3 = random_prime(&mut rng, 3);
            assert!(p3 == BigUint::from(5u64) || p3 == BigUint::from(7u64));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut rng = StdRng::seed_from_u64(9);
        let (p, q) = random_safe_prime(&mut rng, 48);
        assert_eq!(p, &(&q << 1usize) + &BigUint::one());
        assert!(is_probable_prime(&p));
        assert!(is_probable_prime(&q));
        assert_eq!(p.bits(), 48);
    }
}
