//! Cunningham chains of the first kind: sequences of primes with
//! `p_{i+1} = 2·p_i + 1`.
//!
//! The divisible e-cash `Setup(DEC)` needs a tower of cyclic groups
//! whose orders form such a chain (paper §III-C1: `o_{i+1} = 2·o_i + 1`).
//! The paper's §VI-A observes that finding these chains dominates setup
//! cost and blows up around level 7 (Fig. 2) — chain density falls
//! roughly like `1/ln(p)^len`, so each extra link multiplies the search
//! effort. We provide:
//!
//! * [`find_chain`] — sequential randomized search,
//! * [`find_chain_parallel`] — rayon-parallel search over candidate
//!   batches (the `ablation_chain` bench quantifies the speedup),
//! * [`fixture_chain`] — the smallest known chain starts for lengths
//!   1..=14, so tests and examples get instant deterministic setups,
//!   mirroring the paper's decision to run setup offline.

use crate::miller_rabin::is_probable_prime_rounds;
use crate::sieve::small_primes;
use ppms_bigint::{random_odd_bits, BigUint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A verified Cunningham chain of the first kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CunninghamChain {
    links: Vec<BigUint>,
}

impl CunninghamChain {
    /// Builds from links, verifying the chain law and primality.
    /// Returns `None` if the sequence is not a valid chain.
    pub fn new(links: Vec<BigUint>) -> Option<Self> {
        let chain = CunninghamChain { links };
        if verify_chain(&chain) {
            Some(chain)
        } else {
            None
        }
    }

    /// The chain's links, smallest first.
    pub fn links(&self) -> &[BigUint] {
        &self.links
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` iff the chain has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The smallest prime of the chain.
    pub fn start(&self) -> &BigUint {
        &self.links[0]
    }

    /// Takes the first `n` links as a (still valid) shorter chain.
    pub fn prefix(&self, n: usize) -> CunninghamChain {
        assert!(n >= 1 && n <= self.links.len());
        CunninghamChain {
            links: self.links[..n].to_vec(),
        }
    }
}

/// Checks the chain law `p_{i+1} = 2 p_i + 1` and that every link is a
/// probable prime.
pub fn verify_chain(chain: &CunninghamChain) -> bool {
    if chain.links.is_empty() {
        return false;
    }
    let mut rng = StdRng::seed_from_u64(0xC11A1);
    for w in chain.links.windows(2) {
        if w[1] != &(&w[0] << 1usize) + &BigUint::one() {
            return false;
        }
    }
    chain
        .links
        .iter()
        .all(|p| is_probable_prime_rounds(p, 64, &mut rng))
}

/// Fast compositeness pre-filter for a whole candidate chain: checks
/// every link for small-prime divisors before any Miller–Rabin work.
/// For a chain starting at `p`, link `i` is `2^i (p+1) - 1`; we test
/// them with `u64` arithmetic on residues instead of materializing the
/// links.
fn chain_survives_sieve(start: &BigUint, length: usize) -> bool {
    for &q in small_primes().iter().take(512) {
        let mut r = start % q; // residue of the current link
        for _ in 0..length {
            if r == 0 {
                // A link is divisible by q; only acceptable if the link IS q,
                // which the caller's bit-size bound excludes for q < start.
                return false;
            }
            r = (2 * r + 1) % q;
        }
    }
    true
}

/// Extends a candidate start into a full chain if every link is prime.
fn try_candidate<R: Rng + ?Sized>(
    start: BigUint,
    length: usize,
    rng: &mut R,
) -> Option<CunninghamChain> {
    if !chain_survives_sieve(&start, length) {
        return None;
    }
    let mut links = Vec::with_capacity(length);
    let mut p = start;
    for _ in 0..length {
        if !is_probable_prime_rounds(&p, 8, rng) {
            return None;
        }
        links.push(p.clone());
        p = &(&p << 1usize) + &BigUint::one();
    }
    // Confirm with full-strength rounds before accepting.
    let chain = CunninghamChain { links };
    if chain
        .links
        .iter()
        .all(|p| is_probable_prime_rounds(p, 32, rng))
    {
        Some(chain)
    } else {
        None
    }
}

/// Sequential randomized search for a chain of `length` links whose
/// start has `start_bits` bits.
pub fn find_chain<R: Rng + ?Sized>(
    rng: &mut R,
    start_bits: usize,
    length: usize,
) -> CunninghamChain {
    assert!(length >= 1);
    assert!(start_bits >= 16, "use fixture_chain for toy sizes");
    loop {
        let mut start = random_odd_bits(rng, start_bits);
        // p ≡ 3 (mod 4) is necessary for 2p+1 to avoid the trivial
        // factor pattern and halves the dead candidates for length >= 2.
        if length >= 2 {
            start.set_bit(1, true);
        }
        if let Some(chain) = try_candidate(start, length, rng) {
            return chain;
        }
    }
}

/// Rayon-parallel chain search: fans candidate batches across the
/// thread pool, first hit wins. Deterministic given `seed` is NOT
/// guaranteed (any worker may win), but every returned chain is fully
/// verified.
///
/// **Termination caveat:** chains of length `k` only exist above a
/// minimum start magnitude (the smallest length-7 start is already a
/// 21-bit number), so `start_bits` must be at least
/// [`min_start_bits`]`(length)` or the search runs forever. Use
/// [`find_chain_parallel_deadline`] when a wall-clock bound matters.
pub fn find_chain_parallel(start_bits: usize, length: usize, seed: u64) -> CunninghamChain {
    find_chain_parallel_deadline(start_bits, length, seed, None)
        .expect("unbounded search only returns on success")
}

/// The smallest start-prime width (bits) at which a chain of `length`
/// links is known to exist, from the smallest-known chain starts.
/// Searching below this width cannot succeed.
pub fn min_start_bits(length: usize) -> usize {
    assert!((1..=FIXTURE_STARTS.len()).contains(&length));
    let start = FIXTURE_STARTS[length - 1];
    128 - start.leading_zeros() as usize
}

/// [`find_chain_parallel`] with an optional wall-clock deadline.
/// Returns `None` if the deadline expires first — how the Fig. 2
/// harness reports the setup blow-up instead of hanging.
pub fn find_chain_parallel_deadline(
    start_bits: usize,
    length: usize,
    seed: u64,
    deadline: Option<std::time::Instant>,
) -> Option<CunninghamChain> {
    assert!(length >= 1);
    assert!(start_bits >= 16, "use fixture_chain for toy sizes");
    const BATCH: usize = 256;
    let mut round = 0u64;
    loop {
        if let Some(d) = deadline {
            if std::time::Instant::now() > d {
                return None;
            }
        }
        let found = (0..BATCH).into_par_iter().find_map_any(|i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (round.wrapping_mul(0x9E3779B97F4A7C15)) ^ i as u64);
            let mut start = random_odd_bits(&mut rng, start_bits);
            if length >= 2 {
                start.set_bit(1, true);
            }
            try_candidate(start, length, &mut rng)
        });
        if let Some(chain) = found {
            return Some(chain);
        }
        round += 1;
    }
}

/// Smallest known chain starts (first kind) covering lengths 1..=14.
/// Entry `i` holds the smallest start whose chain reaches length `i+1`.
const FIXTURE_STARTS: [u128; 14] = [
    13,                         // length 1 (13 -> 27 composite)
    3,                          // length 2
    41,                         // length 3
    509,                        // length 4
    2,                          // length 5
    89,                         // length 6
    1_122_659,                  // length 7
    19_099_919,                 // length 8
    85_864_769,                 // length 9
    26_089_808_579,             // length 10
    665_043_081_119,            // length 11
    554_688_278_429,            // length 12
    4_090_932_431_513_069,      // length 13
    90_616_211_958_465_842_219, // length >= 14 (known 15-chain start)
];

/// Returns a known, verified chain of exactly `length` links
/// (`1 <= length <= 14`) without any search. Mirrors the paper's
/// "run setup offline" observation — tests and examples use these.
pub fn fixture_chain(length: usize) -> CunninghamChain {
    assert!(
        (1..=FIXTURE_STARTS.len()).contains(&length),
        "fixture chains cover lengths 1..=14; search with find_chain instead"
    );
    let mut p = BigUint::from(FIXTURE_STARTS[length - 1]);
    let mut links = Vec::with_capacity(length);
    for _ in 0..length {
        links.push(p.clone());
        p = &(&p << 1usize) + &BigUint::one();
    }
    let chain = CunninghamChain { links };
    debug_assert!(verify_chain(&chain));
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_chain_verifies() {
        let links = [2u64, 5, 11, 23, 47]
            .iter()
            .map(|&v| BigUint::from(v))
            .collect();
        let chain = CunninghamChain::new(links).expect("2,5,11,23,47 is a chain");
        assert_eq!(chain.len(), 5);
        assert!(verify_chain(&chain));
    }

    #[test]
    fn broken_law_rejected() {
        let links = vec![BigUint::from(2u64), BigUint::from(7u64)];
        assert!(CunninghamChain::new(links).is_none());
    }

    #[test]
    fn composite_link_rejected() {
        // 7 -> 15: law holds but 15 is composite.
        let links = vec![BigUint::from(7u64), BigUint::from(15u64)];
        assert!(CunninghamChain::new(links).is_none());
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(CunninghamChain::new(vec![]).is_none());
    }

    #[test]
    fn all_fixtures_verify() {
        for len in 1..=14 {
            let chain = fixture_chain(len);
            assert_eq!(chain.len(), len, "fixture length {len}");
            assert!(verify_chain(&chain), "fixture {len} verifies");
        }
    }

    #[test]
    fn prefix_is_valid_chain() {
        let chain = fixture_chain(6);
        let p = chain.prefix(3);
        assert_eq!(p.len(), 3);
        assert!(verify_chain(&p));
        assert_eq!(p.start(), chain.start());
    }

    #[test]
    fn sequential_search_small() {
        let mut rng = StdRng::seed_from_u64(42);
        let chain = find_chain(&mut rng, 20, 3);
        assert_eq!(chain.len(), 3);
        assert!(verify_chain(&chain));
        assert_eq!(chain.start().bits(), 20);
    }

    #[test]
    fn parallel_search_small() {
        let chain = find_chain_parallel(20, 3, 7);
        assert_eq!(chain.len(), 3);
        assert!(verify_chain(&chain));
    }

    #[test]
    fn sieve_prefilter_agrees_with_primality() {
        // Fixture chains with starts above the sieve bound must survive it.
        // (Tiny starts like 2 are legitimately "divisible by a small prime"
        // because they ARE one — the search path never produces those.)
        for len in [8usize, 10] {
            let chain = fixture_chain(len);
            assert!(chain_survives_sieve(chain.start(), len), "fixture {len}");
        }
        // A start that makes link 2 divisible by 3 must be filtered:
        // start = 7 -> 15 divisible by 3 and 5.
        assert!(!chain_survives_sieve(&BigUint::from(7u64), 2));
    }
}
