//! The **denomination attack** and its evaluation (paper §IV-B).
//!
//! The bulletin board publishes every job's per-SP payment `w`. The
//! MA also sees each SP account's deposit stream. If the JO does not
//! break its payment, a deposit of exactly `w` credits links the SP's
//! account to the unique job paying `w` — the linkage attack the
//! paper's running HIV example makes concrete.
//!
//! Cash breaking defeats this: after breaking into `k` coins, the
//! observed deposits could have come from any job whose payment lies
//! in the set of achievable coin-subset sums (the paper's
//! `Σ_{i=1..k} C(k,i)` argument). This module simulates the attack and
//! measures, per break strategy, how often the adversary can still
//! *uniquely* identify the job, and how large the SP's anonymity set
//! of candidate jobs is.

use ppms_ecash::{break_epcba, break_pcba, break_unitary, CashBreak};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Outcome of an attack simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// The break strategy under attack.
    pub strategy: CashBreak,
    /// Number of simulated markets.
    pub trials: usize,
    /// Fraction of trials where the adversary uniquely identified the
    /// SP's job.
    pub unique_success_rate: f64,
    /// Mean number of candidate jobs consistent with the deposits
    /// (the SP's anonymity set; 1.0 = always linked).
    pub mean_candidate_jobs: f64,
}

/// The deposit value stream an SP produces for payment `w` under a
/// break strategy (the adversary's observation).
pub fn deposit_stream(strategy: CashBreak, w: u64, levels: usize) -> Vec<u64> {
    match strategy {
        CashBreak::None => vec![w],
        CashBreak::Unitary => break_unitary(w, levels)
            .expect("valid amount")
            .denominations
            .into_iter()
            .filter(|&d| d != 0)
            .collect(),
        CashBreak::Pcba => break_pcba(w, levels)
            .expect("valid amount")
            .denominations
            .into_iter()
            .filter(|&d| d != 0)
            .collect(),
        CashBreak::Epcba => break_epcba(w, levels)
            .expect("valid amount")
            .denominations
            .into_iter()
            .filter(|&d| d != 0)
            .collect(),
    }
}

/// All nonzero sums of subsets of `deposits` (the payments the
/// adversary must consider possible). Capped at 2^L distinct values,
/// so the unitary case stays cheap.
pub fn achievable_sums(deposits: &[u64], levels: usize) -> HashSet<u64> {
    let face = 1u64 << levels;
    let mut sums: HashSet<u64> = HashSet::new();
    sums.insert(0);
    for &d in deposits {
        let mut next = sums.clone();
        for &s in &sums {
            let v = s + d;
            if v <= face {
                next.insert(v);
            }
        }
        sums = next;
        if sums.len() as u64 > face {
            break;
        }
    }
    sums.remove(&0);
    sums
}

/// Runs the denomination attack: `n_jobs` concurrent jobs with
/// payments uniform in `[1, 2^L]`, the target SP works one of them,
/// the adversary sees the SP's deposit stream and the public payment
/// list, and outputs the candidate job set.
pub fn run_denomination_attack(
    seed: u64,
    strategy: CashBreak,
    n_jobs: usize,
    levels: usize,
    trials: usize,
) -> AttackReport {
    assert!(n_jobs >= 1 && trials >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let face = 1u64 << levels;
    let mut unique = 0usize;
    let mut candidate_total = 0usize;

    for _ in 0..trials {
        // Public payments on the bulletin board.
        let payments: Vec<u64> = (0..n_jobs).map(|_| rng.random_range(1..=face)).collect();
        let target = rng.random_range(0..n_jobs);
        let w = payments[target];

        let deposits = deposit_stream(strategy, w, levels);
        let sums = achievable_sums(&deposits, levels);

        let candidates: Vec<usize> = (0..n_jobs)
            .filter(|&j| sums.contains(&payments[j]))
            .collect();
        debug_assert!(
            candidates.contains(&target),
            "true job is always consistent"
        );
        candidate_total += candidates.len();
        if candidates.len() == 1 {
            unique += 1;
        }
    }

    AttackReport {
        strategy,
        trials,
        unique_success_rate: unique as f64 / trials as f64,
        mean_candidate_jobs: candidate_total as f64 / trials as f64,
    }
}

/// Outcome of the timing-mixing simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Number of co-depositing SPs.
    pub n_sps: usize,
    /// Mean deposit delay (logical ticks) between consecutive coins.
    pub mean_delay: f64,
    /// Fraction of trials where time-window clustering reassembled the
    /// target SP's exact coin multiset.
    pub clustering_success_rate: f64,
}

/// Simulates the paper's deposit-timing defence: every SP "waits a
/// random period of time between two consecutive deposits of e-coin"
/// (§IV-A8), so deposits from concurrent SPs interleave on the bank's
/// timeline. The adversary knows deposits arrive in per-SP bursts and
/// tries to reassemble one SP's coins by cutting the (anonymized)
/// global deposit stream wherever the gap exceeds its learned
/// threshold. Larger SP populations and wider random delays destroy
/// the clustering.
///
/// `max_delay` is the upper bound of each SP's uniform per-coin wait
/// (in logical ticks); SP start times are uniform in `[0, 100)`.
pub fn run_timing_attack(
    seed: u64,
    strategy: CashBreak,
    n_sps: usize,
    levels: usize,
    max_delay: u64,
    trials: usize,
) -> TimingReport {
    assert!(n_sps >= 2 && trials >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let face = 1u64 << levels;
    let mut success = 0usize;
    let mut delay_sum = 0u64;
    let mut delay_count = 0u64;

    for _ in 0..trials {
        // Each SP deposits its (broken) payment with random waits.
        // Event: (time, value); the SP behind each event is hidden.
        let mut events: Vec<(u64, u64)> = Vec::new();
        let mut per_sp: Vec<Vec<u64>> = Vec::new();
        for _sp in 0..n_sps {
            let w = rng.random_range(1..=face);
            let coins = deposit_stream(strategy, w, levels);
            let mut t = rng.random_range(0..100u64);
            for &c in &coins {
                let delay = rng.random_range(0..=max_delay);
                delay_sum += delay;
                delay_count += 1;
                t += delay;
                events.push((t, c));
            }
            per_sp.push(coins);
        }
        events.sort_unstable();

        // Adversary: cut the stream at gaps above its best guess of
        // the intra-burst bound and check whether any cluster equals
        // the target SP's multiset exactly.
        let target = 0usize;
        let threshold = (max_delay / 2).max(1);
        let mut clusters: Vec<Vec<u64>> = Vec::new();
        let mut current: Vec<u64> = Vec::new();
        let mut last_t = None::<u64>;
        for &(t, v) in &events {
            if let Some(lt) = last_t {
                if t - lt > threshold && !current.is_empty() {
                    clusters.push(std::mem::take(&mut current));
                }
            }
            current.push(v);
            last_t = Some(t);
        }
        if !current.is_empty() {
            clusters.push(current);
        }
        let mut target_coins = per_sp[target].clone();
        target_coins.sort_unstable();
        let hit = clusters.iter().any(|c| {
            let mut c = c.clone();
            c.sort_unstable();
            c == target_coins
        });
        if hit {
            success += 1;
        }
    }

    TimingReport {
        n_sps,
        mean_delay: if delay_count == 0 {
            0.0
        } else {
            delay_sum as f64 / delay_count as f64
        },
        clustering_success_rate: success as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_streams_sum_to_w() {
        for strategy in [
            CashBreak::None,
            CashBreak::Unitary,
            CashBreak::Pcba,
            CashBreak::Epcba,
        ] {
            for w in 1..=16 {
                let s = deposit_stream(strategy, w, 4);
                assert_eq!(s.iter().sum::<u64>(), w, "{strategy:?} w={w}");
            }
        }
    }

    #[test]
    fn unbroken_sums_are_just_w() {
        let sums = achievable_sums(&[8], 4);
        assert_eq!(sums.len(), 1);
        assert!(sums.contains(&8));
    }

    #[test]
    fn unitary_sums_cover_everything_below_w() {
        let sums = achievable_sums(&deposit_stream(CashBreak::Unitary, 9, 4), 4);
        assert_eq!(sums, (1..=9).collect());
    }

    #[test]
    fn pcba_sums_cover_all_submasks() {
        // w = 11 = 8+2+1 → sums {1,2,3,8,9,10,11}.
        let sums = achievable_sums(&deposit_stream(CashBreak::Pcba, 11, 4), 4);
        let expected: HashSet<u64> = [1, 2, 3, 8, 9, 10, 11].into_iter().collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn attack_always_wins_without_breaking_distinct_payments() {
        // With few jobs and a 2^8 payment space, collisions are rare,
        // so the unbroken scheme is almost always uniquely linked.
        let report = run_denomination_attack(1, CashBreak::None, 5, 8, 200);
        assert!(
            report.unique_success_rate > 0.9,
            "got {}",
            report.unique_success_rate
        );
    }

    #[test]
    fn unitary_break_defeats_the_attack() {
        // With unitary deposits every job with w_j <= w is a candidate;
        // unique identification requires the target to have the
        // minimum payment AND no tie — rare with 10 jobs.
        let report = run_denomination_attack(2, CashBreak::Unitary, 10, 6, 200);
        assert!(
            report.mean_candidate_jobs > 3.0,
            "anonymity set too small: {}",
            report.mean_candidate_jobs
        );
        assert!(
            report.unique_success_rate < 0.4,
            "got {}",
            report.unique_success_rate
        );
    }

    #[test]
    fn timing_attack_degrades_with_population() {
        // More concurrent depositors => more interleaving => the
        // clustering attack finds the target's exact burst less often.
        let few = run_timing_attack(9, CashBreak::Pcba, 2, 6, 10, 300);
        let many = run_timing_attack(9, CashBreak::Pcba, 12, 6, 10, 300);
        assert!(
            many.clustering_success_rate <= few.clustering_success_rate,
            "many {} > few {}",
            many.clustering_success_rate,
            few.clustering_success_rate
        );
    }

    #[test]
    fn timing_attack_report_fields() {
        let r = run_timing_attack(10, CashBreak::Unitary, 4, 5, 8, 50);
        assert_eq!(r.n_sps, 4);
        assert!(r.mean_delay >= 0.0 && r.mean_delay <= 8.0);
        assert!((0.0..=1.0).contains(&r.clustering_success_rate));
    }

    #[test]
    fn strategy_ordering_none_worst_unitary_best() {
        let none = run_denomination_attack(3, CashBreak::None, 8, 6, 300);
        let pcba = run_denomination_attack(3, CashBreak::Pcba, 8, 6, 300);
        let epcba = run_denomination_attack(3, CashBreak::Epcba, 8, 6, 300);
        let unitary = run_denomination_attack(3, CashBreak::Unitary, 8, 6, 300);
        assert!(none.unique_success_rate >= pcba.unique_success_rate);
        assert!(
            pcba.unique_success_rate + 1e-9 >= epcba.unique_success_rate * 0.8,
            "EPCBA should not be dramatically weaker than PCBA"
        );
        assert!(unitary.mean_candidate_jobs >= epcba.mean_candidate_jobs);
        assert!(none.mean_candidate_jobs <= epcba.mean_candidate_jobs);
    }
}
