//! The market administrator as a **message-passing service** — the
//! paper's Fig. 1 system model made concrete: JOs and SPs are
//! independent threads that talk to the MA exclusively through a
//! [`crate::transport::Transport`], and the MA enforces the
//! protocol rules (publish, forward, hold payments until data arrives,
//! verify deposits).
//!
//! Internally the service is a **supervisor plus N shard workers**:
//! the dispatcher routes each request to a shard by its affinity key
//! (`AccountId` for ledger operations, `job_id` for job-scoped ones,
//! the SP pseudonym for payment forwarding), so all per-key state
//! lives in exactly one shard and never needs a lock. Cross-cutting
//! state (ledger, bulletin, DEC bank, held payments) is shared behind
//! the existing thread-safe types. Channels are bounded end to end,
//! so a flood of clients exerts backpressure instead of growing
//! queues without limit. `Shutdown` drains the shards and reports how
//! many held payments were never delivered.
//!
//! Three mechanisms make the service survive a lossy network and
//! crashing workers (the fault model of DESIGN.md §8):
//!
//! * **Exactly-once execution.** Every request arrives under a
//!   client-chosen [`RequestKey`]; each shard keeps a bounded
//!   idempotency cache of `key → response` and *replays* the cached
//!   answer for a retransmit instead of re-executing. A retried
//!   `Withdraw` does not double-debit and a retried `DepositBatch` is
//!   not mistaken for a double-spend — while a genuine double-spend
//!   (same coin leaf under a *fresh* key) is still caught by the DEC
//!   bank.
//! * **Write-ahead journaling.** A shard appends a
//!   [`WalRecord::Begin`] before executing and a `Commit` after, so
//!   its private state (nonce high-water marks, labor, data reports,
//!   the idempotency cache) can be rebuilt after a crash.
//! * **Supervision.** The dispatcher doubles as supervisor: when a
//!   send to a shard fails (the worker panicked or was
//!   crash-injected), it joins the corpse, respawns the worker over
//!   the same journal, and redelivers the request.
//!
//! This is the concurrent twin of [`crate::ppmsdec::DecMarket`]'s
//! single-threaded driver; the integration tests run both and expect
//! the same ledger outcomes — now also across fault schedules.

use crate::bank::{AccountId, Bank};
use crate::bulletin::{Bulletin, JobProfile};
use crate::error::MarketError;
use crate::gate::GateCheckpoint;
use crate::metrics::{FaultMetrics, Party};
use crate::retry::{RetryPolicy, RetryingTransport};
use crate::storage::{
    load_latest, save_snapshot, DurabilityConfig, DurableLog, ShardSection, SnapshotState,
    StorageError,
};
use crate::transport::{
    request_label, FaultPlan, InProcTransport, SimNetConfig, SimNetTransport, TrafficLog, Transport,
};
use crate::wal::{CommittedEntry, ShardWal, WalRecord, WalReplay};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use ppms_bigint::BigUint;
use ppms_crypto::cl::{ClPublicKey, ClSignature};
use ppms_crypto::pairing::TypeAPairing;
use ppms_ecash::{DecBank, DecError, DecParams, Spend};
use ppms_obs::{FlightRecorder, Registry, Snapshot, Span, SpanContext, Timed, TimedOwned};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A request to the market administrator.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum MaRequest {
    /// Open a JO account with initial funds, binding a CL public key.
    RegisterJoAccount {
        /// Initial balance.
        funds: u64,
        /// Account-bound CL key for withdrawal authentication.
        clpk: ClPublicKey,
    },
    /// Open an (empty) SP account.
    RegisterSpAccount,
    /// Publish a job profile (phase 1).
    PublishJob {
        /// Job description `jd`.
        description: String,
        /// Per-SP payment `w`.
        payment: u64,
        /// The JO's pseudonymous key bytes.
        pseudonym: Vec<u8>,
    },
    /// CL-authenticated withdrawal: debit `2^L`, sign the blinded coin
    /// token (phase 2).
    Withdraw {
        /// The withdrawing account.
        account: AccountId,
        /// Fresh nonce, CL-signed below.
        nonce: u64,
        /// CL signature on the nonce under the account-bound key.
        auth: ClSignature,
        /// Blinded coin token for the bank to sign.
        blinded: BigUint,
    },
    /// SP announces interest in a job (phase 4); MA forwards to the JO.
    LaborRegister {
        /// Target job.
        job_id: u64,
        /// The SP's one-time public key bytes.
        sp_pubkey: Vec<u8>,
    },
    /// JO polls the SPs registered for its job.
    FetchLabor {
        /// The job.
        job_id: u64,
    },
    /// JO submits the encrypted payment for an SP (phase 5); the MA
    /// holds it until that SP's data report arrives (phase 7 rule).
    SubmitPayment {
        /// Receiver's one-time key bytes.
        sp_pubkey: Vec<u8>,
        /// `RSA_ENC_rpksp(E(w_1)…, sig)`.
        ciphertext: Vec<u8>,
    },
    /// SP submits its data report (phase 6).
    SubmitData {
        /// The job the data belongs to.
        job_id: u64,
        /// The submitting SP's one-time key bytes.
        sp_pubkey: Vec<u8>,
        /// The sensing data.
        data: Vec<u8>,
    },
    /// SP polls for its payment; delivered only after its data arrived.
    FetchPayment {
        /// The SP's one-time key bytes.
        sp_pubkey: Vec<u8>,
    },
    /// JO polls the data reports for its job.
    FetchData {
        /// The job.
        job_id: u64,
    },
    /// SP deposits one or more spends under its account id (phase 8).
    /// A single deposit is simply a batch of one; the shard verifies
    /// the batch and credits the valid subset in one ledger update.
    DepositBatch {
        /// The depositing account (`AID_sp`).
        account: AccountId,
        /// The spends.
        spends: Vec<Spend>,
    },
    /// Read a balance.
    Balance {
        /// The account.
        account: AccountId,
    },
    /// Stop the service: the dispatcher drains every shard, then
    /// reports how many held payments were never delivered.
    Shutdown,
}

/// The MA's answer.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum MaResponse {
    /// A fresh account id.
    Account(AccountId),
    /// A bulletin-board job id.
    JobId(u64),
    /// The bank's signature on a blinded token.
    BlindSignature(BigUint),
    /// Generic success.
    Ok,
    /// Registered SP keys for a job.
    Labor(Vec<Vec<u8>>),
    /// A held payment ciphertext, if deliverable.
    Payment(Option<Vec<u8>>),
    /// Data reports for a job.
    Data(Vec<Vec<u8>>),
    /// Per-item outcome of a batch deposit plus the credited total.
    BatchDeposited {
        /// Total value credited.
        total: u64,
        /// How many items were accepted.
        accepted: usize,
        /// How many items were rejected.
        rejected: usize,
    },
    /// An account balance.
    Balance(u64),
    /// A rejection.
    Err(MarketError),
    /// Shutdown complete; the shards are drained.
    Drained {
        /// Held payments that were never picked up by their SP.
        undelivered_payments: usize,
    },
    /// Load-shed marker minted by the TCP front door (never by a
    /// shard): the request was refused *before* entering the service
    /// pipeline because the server is saturated. Clients treat it as
    /// a retryable transport condition.
    Busy,
}

/// The client-chosen idempotency key of a logical request. A
/// retransmit carries the *same* key; a new logical request carries a
/// fresh one (see [`crate::transport::next_request_id`]). The service
/// uses the key to replay cached answers instead of re-executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// The requesting party (ids are unique per party).
    pub party: Party,
    /// The client-allocated request id.
    pub request_id: u64,
}

/// One request plus its reply channel — the unit the dispatcher
/// routes to a shard.
pub struct Inbound {
    /// Idempotency key; `None` only for hand-built internal sends.
    pub key: Option<RequestKey>,
    /// Span context minted by the originating client
    /// ([`ppms_obs::SpanContext::NONE`] = untraced). The trace id is
    /// preserved verbatim across retransmits — one logical operation
    /// keeps one id through retries and shard hops — while the
    /// span/parent ids identify the *specific attempt* that delivered
    /// this copy, so an exported trace shows which retransmit won.
    pub span: SpanContext,
    /// The request.
    pub request: MaRequest,
    /// Where the handling shard sends the response.
    pub reply: Sender<MaResponse>,
}

/// Crash-injection point for the supervision tests: the chosen shard
/// worker exits (as if panicked) when it journals its `at_request`-th
/// `Begin` — after the journal append, before execution, the
/// canonical "lost in flight" window. Fires at most once per service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Which shard dies (taken modulo the shard count).
    pub shard: usize,
    /// 1-based count of `Begin` records that triggers the crash.
    pub at_request: u64,
}

/// Crash-injection point for the batching pipeline: the chosen shard
/// worker exits after journaling the Commit for its `at_begin`-th
/// `Begin` — *between* the batch's verification/execution and its
/// group-commit flush, before any held reply is released. Items
/// committed earlier in the same cross-client batch have journal
/// records but unanswered clients; the retries must replay, not
/// re-execute (pinned by `tests/chaos.rs` / `tests/recovery.rs`).
/// Fires at most once per service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MidBatchCrash {
    /// Which shard dies (taken modulo the shard count).
    pub shard: usize,
    /// 1-based count of `Begin` records that triggers the crash.
    pub at_begin: u64,
}

/// Flush triggers for shard-level dynamic batching (DESIGN.md §16): a
/// worker drains its queue into a batch until the size cap, then
/// Nagle-waits for companions only while the observed arrival rate
/// says one is likely inside the deadline window.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Batch-size cap N: the most items one drain may collect.
    pub max_batch: usize,
    /// Upper bound D on the adaptive flush deadline, in microseconds.
    /// `0` disables the Nagle wait entirely (pure greedy drain).
    pub max_delay_micros: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_delay_micros: 150,
        }
    }
}

/// Sizing knobs for the sharded service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Capacity of the inbox and of each shard queue (backpressure:
    /// senders block when a queue is full).
    pub queue_depth: usize,
    /// Entries each shard's idempotency cache holds before evicting
    /// the oldest (0 disables replay — every retransmit re-executes).
    pub dedup_capacity: usize,
    /// Cross-client batching flush triggers.
    pub batch: BatchConfig,
    /// Optional crash injection for the supervision tests.
    pub crash: Option<CrashPoint>,
    /// Optional mid-batch crash injection (between batch verify and
    /// group commit) for the batching chaos tests.
    pub crash_mid_batch: Option<MidBatchCrash>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            queue_depth: 128,
            dedup_capacity: 1024,
            batch: BatchConfig::default(),
            crash: None,
            crash_mid_batch: None,
        }
    }
}

/// Handle to a running MA service (dispatcher + shards).
pub struct MaService {
    tx: Sender<Inbound>,
    /// Service-level operations (checkpointing) — separate from the
    /// request inbox so they skip request backpressure.
    ctrl: Sender<Control>,
    handle: Option<JoinHandle<()>>,
    /// Shared ledger (read access for clients and ledger snapshots).
    pub bank: Bank,
    /// Shared bulletin board (read-only access for clients).
    pub bulletin: Bulletin,
    /// Shared traffic log — fed by byte-counting transports.
    pub traffic: TrafficLog,
    /// Fault-tolerance counters (dedup replays, respawns, WAL, retry).
    pub faults: FaultMetrics,
    /// This service's private metrics registry. Traffic counters,
    /// fault counters, per-op latency histograms, queue-depth gauges
    /// and WAL timings all live here, so one [`Registry::snapshot`]
    /// captures the whole service.
    pub obs: Registry,
    /// One bounded flight recorder per shard — the last events each
    /// worker saw, dumped to JSON when a worker dies.
    recorders: Vec<Arc<FlightRecorder>>,
    /// Crash-dump files written by dead workers, in order of death.
    dumps: Arc<Mutex<Vec<PathBuf>>>,
    /// The DEC public parameters (clients need them to mint/spend).
    pub params: DecParams,
    /// The bank's public blind-signing key.
    pub bank_pk: ppms_crypto::rsa::RsaPublicKey,
    /// The pairing parameters (for CL keys).
    pub pairing: TypeAPairing,
    /// Where the TCP front door registers its gate-checkpoint hook.
    gate_hook: Arc<Mutex<Option<Arc<GateCheckpoint>>>>,
    /// Admission-gate state recovered from the snapshot, consumed
    /// once by the front door on spawn.
    recovered_gate: Mutex<Option<Vec<u8>>>,
    /// The live shard inboxes (shared with the dispatcher, which
    /// refreshes them on respawn) — what a [`ShardRouter`] sends into.
    shard_txs: Arc<Mutex<Vec<Sender<ShardMsg>>>>,
    /// Queue-depth gauges, one per shard, for direct routers.
    queue_gauges: Vec<Arc<ppms_obs::Gauge>>,
    n_shards: usize,
}

/// A direct route into the shard queues, handed to the TCP reactor:
/// the per-request hop through the dispatcher thread (one channel
/// transfer plus a thread wake on an otherwise-parked core) is pure
/// overhead on the hot path, so the reactor sends straight into the
/// target shard's inbox. Anything the router cannot place — a full or
/// disconnected shard queue, a `Shutdown`, a not-yet-spawned shard —
/// is handed back for the supervised inbox path, where the dispatcher
/// still owns respawn and backpressure. Sharing `shard_txs` with the
/// dispatcher keeps direct routes valid across worker respawns.
pub struct ShardRouter {
    txs: Arc<Mutex<Vec<Sender<ShardMsg>>>>,
    gauges: Vec<Arc<ppms_obs::Gauge>>,
    n_shards: usize,
    rr: usize,
    direct: Arc<ppms_obs::Counter>,
}

impl ShardRouter {
    /// Places `inbound` on its shard's queue, or returns it when the
    /// dispatcher must get involved instead.
    // The Err variant is the *moved-back* request, not an error type:
    // boxing it would put an allocation on the zero-alloc hot path.
    #[allow(clippy::result_large_err)]
    pub fn try_route(&mut self, inbound: Inbound) -> Result<(), Inbound> {
        if matches!(inbound.request, MaRequest::Shutdown) {
            // Shutdown is a dispatcher-level protocol message, not a
            // shard request.
            return Err(inbound);
        }
        let idx = route(inbound.key, &inbound.request, self.n_shards, &mut self.rr);
        let tx = match self.txs.lock().get(idx) {
            Some(tx) => tx.clone(),
            None => return Err(inbound), // still spawning
        };
        match tx.try_send(ShardMsg::Req(Box::new(inbound))) {
            Ok(()) => {
                self.gauges[idx].add(1);
                self.direct.inc();
                Ok(())
            }
            Err(TrySendError::Full(msg)) | Err(TrySendError::Disconnected(msg)) => {
                let ShardMsg::Req(inbound) = msg else {
                    unreachable!("router only sends requests")
                };
                Err(*inbound)
            }
        }
    }
}

/// A client-side connection to the MA over some [`Transport`].
#[derive(Clone)]
pub struct MaClient {
    transport: Arc<dyn Transport>,
    party: Party,
}

impl MaClient {
    /// Wraps a transport for the given party.
    pub fn new(transport: Arc<dyn Transport>, party: Party) -> MaClient {
        MaClient { transport, party }
    }

    /// Sends a request and waits for the answer. Transport failures
    /// surface as [`MaResponse::Err`]`(`[`MarketError::Transport`]`)`
    /// — a dead MA degrades gracefully instead of panicking callers.
    pub fn call(&self, request: MaRequest) -> MaResponse {
        match self.transport.round_trip(self.party, request) {
            Ok(response) => response,
            Err(e) => MaResponse::Err(e),
        }
    }

    /// Like [`MaClient::call`] but keeps transport failures in the
    /// error channel.
    pub fn try_call(&self, request: MaRequest) -> Result<MaResponse, MarketError> {
        self.transport.round_trip(self.party, request)
    }

    /// Sends a request under an explicit idempotency id. Reusing the
    /// id marks a retransmit of the same logical request; the service
    /// replays its cached answer instead of re-executing.
    pub fn try_call_keyed(
        &self,
        request_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.transport
            .round_trip_keyed(self.party, request_id, request)
    }

    /// Sends a request under explicit idempotency *and* trace ids.
    /// Reusing both marks a retransmit that stays on the original
    /// trace: the serving shard's flight recorder and any crash dump
    /// show the same `trace_id` for every attempt.
    pub fn try_call_traced(
        &self,
        request_id: u64,
        trace_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.transport
            .round_trip_traced(self.party, request_id, trace_id, request)
    }

    /// Sends a request under a full causal span context: the serving
    /// side parents its own spans (reactor read, shard handle, WAL
    /// append) under `ctx`, so an exported trace shows the request's
    /// complete tree across process boundaries.
    pub fn try_call_spanned(
        &self,
        request_id: u64,
        ctx: SpanContext,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.transport
            .round_trip_spanned(self.party, request_id, ctx, request)
    }
}

/// State shared by every shard (already thread-safe, or wrapped).
struct SharedState {
    bank: Bank,
    bulletin: Bulletin,
    dec_bank: Mutex<DecBank>,
    params: DecParams,
    bank_pk: ppms_crypto::rsa::RsaPublicKey,
    pairing: TypeAPairing,
    cl_bindings: RwLock<HashMap<AccountId, ClPublicKey>>,
    held: Mutex<HeldPayments>,
}

/// Payments the MA holds until the paying SP's data report arrives.
/// Shared across shards because `SubmitData` routes by `job_id` while
/// `FetchPayment` routes by SP pseudonym.
#[derive(Default)]
struct HeldPayments {
    pending: HashMap<Vec<u8>, Vec<u8>>,
    received: HashSet<Vec<u8>>,
}

/// Bounded FIFO map of `RequestKey → cached response` — the
/// exactly-once replay table. Insertion order is eviction order; a
/// replayed key is *not* refreshed (retransmits arrive close together,
/// so recency bookkeeping buys nothing over plain FIFO here).
struct DedupCache {
    map: HashMap<RequestKey, MaResponse>,
    order: VecDeque<RequestKey>,
    capacity: usize,
}

impl DedupCache {
    fn new(capacity: usize) -> DedupCache {
        DedupCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    fn get(&self, key: &RequestKey) -> Option<&MaResponse> {
        self.map.get(key)
    }

    fn insert(&mut self, key: RequestKey, response: MaResponse) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, response).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }

    /// The cache contents in insertion (= eviction) order, so a
    /// checkpoint can be restored into a cache that evicts in the
    /// same sequence as the original.
    fn entries_in_order(&self) -> Vec<(RequestKey, MaResponse)> {
        self.order
            .iter()
            .filter_map(|k| self.map.get(k).map(|r| (*k, r.clone())))
            .collect()
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Per-shard state: every map here is only ever touched by requests
/// whose routing key lands on this shard, so no locking is needed.
struct Shard {
    shared: Arc<SharedState>,
    /// The service registry — batch-deposit instrumentation
    /// (`deposit.batch_size`, `deposit.item_amortized_ns`) lands here.
    obs: Registry,
    used_nonces: HashMap<AccountId, u64>,
    labor: HashMap<u64, Vec<Vec<u8>>>,
    data_reports: HashMap<u64, Vec<Vec<u8>>>,
}

impl Shard {
    /// Executes one request. `effects` records shared-state outcomes
    /// that cold-start recovery cannot re-derive from the response
    /// alone: for `DepositBatch` it collects the `(index, value)` of
    /// every *accepted* spend, so replay re-inserts exactly the spends
    /// the original execution accepted without re-running the ZK
    /// verification (whose verdict lives only in the journal).
    ///
    /// `preverified` carries this request's slice of a cross-client
    /// combined verification (the worker's batch pre-pass); when
    /// present, the `DepositBatch` arm consumes those verdicts instead
    /// of re-verifying. Verdicts are bit-identical either way
    /// (`ppms_ecash::batch` pins seed-independence), and the stateful
    /// double-spend bookkeeping still runs here, in arrival order.
    fn handle(
        &mut self,
        request: MaRequest,
        effects: &mut Vec<(u32, u64)>,
        preverified: Option<Vec<Result<u64, DecError>>>,
    ) -> MaResponse {
        use MaRequest::*;
        match request {
            RegisterJoAccount { funds, clpk } => {
                let account = self.shared.bank.open_account(funds);
                self.shared.cl_bindings.write().insert(account, clpk);
                MaResponse::Account(account)
            }
            RegisterSpAccount => MaResponse::Account(self.shared.bank.open_account(0)),
            PublishJob {
                description,
                payment,
                pseudonym,
            } => MaResponse::JobId(
                self.shared
                    .bulletin
                    .publish(description, payment, pseudonym),
            ),
            Withdraw {
                account,
                nonce,
                auth,
                blinded,
            } => {
                {
                    let bindings = self.shared.cl_bindings.read();
                    let Some(bound) = bindings.get(&account) else {
                        return MaResponse::Err(MarketError::NoSuchAccount);
                    };
                    // Nonce freshness prevents replaying an old
                    // withdrawal authorization. Withdrawals route by
                    // account, so this shard sees every nonce for it.
                    let last = self.used_nonces.entry(account).or_insert(0);
                    if nonce <= *last {
                        return MaResponse::Err(MarketError::BadAuthentication);
                    }
                    if !auth.verify_bytes(&self.shared.pairing, bound, &nonce.to_be_bytes()) {
                        return MaResponse::Err(MarketError::BadAuthentication);
                    }
                    *last = nonce;
                }
                if let Err(e) = self
                    .shared
                    .bank
                    .debit(account, self.shared.params.face_value())
                {
                    return MaResponse::Err(e);
                }
                let sig = self.shared.dec_bank.lock().sign_blinded(&blinded);
                MaResponse::BlindSignature(sig)
            }
            LaborRegister { job_id, sp_pubkey } => {
                if self.shared.bulletin.get(job_id).is_none() {
                    return MaResponse::Err(MarketError::NoSuchJob);
                }
                self.labor.entry(job_id).or_default().push(sp_pubkey);
                MaResponse::Ok
            }
            FetchLabor { job_id } => {
                MaResponse::Labor(self.labor.get(&job_id).cloned().unwrap_or_default())
            }
            SubmitPayment {
                sp_pubkey,
                ciphertext,
            } => {
                self.shared
                    .held
                    .lock()
                    .pending
                    .insert(sp_pubkey, ciphertext);
                MaResponse::Ok
            }
            SubmitData {
                job_id,
                sp_pubkey,
                data,
            } => {
                self.data_reports.entry(job_id).or_default().push(data);
                self.shared.held.lock().received.insert(sp_pubkey);
                MaResponse::Ok
            }
            FetchPayment { sp_pubkey } => {
                // Paper phase 7: deliver only once the SP's data is in.
                let mut held = self.shared.held.lock();
                if !held.received.contains(&sp_pubkey) {
                    return MaResponse::Payment(None);
                }
                MaResponse::Payment(held.pending.remove(&sp_pubkey))
            }
            FetchData { job_id } => {
                MaResponse::Data(self.data_reports.remove(&job_id).unwrap_or_default())
            }
            DepositBatch { account, spends } => {
                // The expensive ZK verification runs here, outside the
                // DEC-bank lock, as combined small-exponent batch
                // checks over rayon sub-chunks (verdicts bit-identical
                // to per-item verification — see ppms_ecash::batch;
                // bank-signature checks follow rsa::batch_verify's
                // cost model, and every exponentiation underneath runs
                // on the ring's fixed-width kernels, DESIGN.md §12).
                // The deterministic content-derived seed keeps a
                // retried batch on the exact same verification path.
                // Only the cheap double-spend bookkeeping serializes
                // on the bank.
                let started = std::time::Instant::now();
                self.obs
                    .histogram("deposit.batch_size")
                    .record(spends.len() as u64);
                let verified: Vec<Result<u64, DecError>> = match preverified {
                    Some(v) => {
                        debug_assert_eq!(v.len(), spends.len());
                        v
                    }
                    None => {
                        let seed = ppms_ecash::batch_seed(&spends, b"");
                        let v = ppms_ecash::verify_batch_chunked(
                            seed,
                            ppms_ecash::DEPOSIT_CHUNK,
                            &self.shared.params,
                            &self.shared.bank_pk,
                            b"",
                            &spends,
                        );
                        if !spends.is_empty() {
                            // Amortized verify cost per spend; the
                            // preverified path records its own sample
                            // over the whole combined batch instead.
                            self.obs.histogram("deposit.item_amortized_ns").record(
                                (started.elapsed().as_nanos() / spends.len() as u128) as u64,
                            );
                        }
                        v
                    }
                };
                let mut total = 0u64;
                let mut accepted = 0usize;
                {
                    let mut dec_bank = self.shared.dec_bank.lock();
                    for (idx, (spend, v)) in spends.iter().zip(verified).enumerate() {
                        let recorded =
                            v.and_then(|value| dec_bank.deposit_preverified(spend, value));
                        if let Ok(value) = recorded {
                            total += value;
                            accepted += 1;
                            effects.push((idx as u32, value));
                        }
                    }
                }
                if total > 0 {
                    if let Err(e) = self.shared.bank.credit(account, total) {
                        return MaResponse::Err(e);
                    }
                }
                MaResponse::BatchDeposited {
                    total,
                    accepted,
                    rejected: spends.len() - accepted,
                }
            }
            Balance { account } => match self.shared.bank.balance(account) {
                Ok(v) => MaResponse::Balance(v),
                Err(e) => MaResponse::Err(e),
            },
            // The dispatcher intercepts Shutdown; a shard seeing one
            // means a routing bug, answered defensively.
            Shutdown => MaResponse::Err(MarketError::Transport(
                "shutdown must be handled by the dispatcher".into(),
            )),
        }
    }

    /// Re-applies one committed journal entry to this shard's private
    /// state. Shared state (ledger, bulletin, DEC bank, held
    /// payments) lives behind `Arc`s and survived the crash on its
    /// own, so only the per-shard projection is replayed — replaying
    /// the full request would double-apply the shared effects.
    fn apply_committed(&mut self, entry: &CommittedEntry) {
        use MaRequest::*;
        match (&entry.request, &entry.response) {
            (Withdraw { account, nonce, .. }, MaResponse::BlindSignature(_)) => {
                let last = self.used_nonces.entry(*account).or_insert(0);
                *last = (*last).max(*nonce);
            }
            (LaborRegister { job_id, sp_pubkey }, MaResponse::Ok) => {
                self.labor
                    .entry(*job_id)
                    .or_default()
                    .push(sp_pubkey.clone());
            }
            (SubmitData { job_id, data, .. }, MaResponse::Ok) => {
                self.data_reports
                    .entry(*job_id)
                    .or_default()
                    .push(data.clone());
            }
            (FetchData { job_id }, MaResponse::Data(_)) => {
                // The fetch handed the reports out; they must not
                // reappear after a respawn.
                self.data_reports.remove(job_id);
            }
            _ => {}
        }
    }

    /// Serializes this shard's private state (plus the idempotency
    /// cache) into the checkpoint form, deterministically ordered.
    fn project(&self, dedup: &DedupCache) -> ShardSection {
        let mut nonces: Vec<(u64, u64)> = self
            .used_nonces
            .iter()
            .map(|(account, nonce)| (account.0, *nonce))
            .collect();
        nonces.sort_unstable();
        let mut labor: Vec<(u64, Vec<Vec<u8>>)> = self
            .labor
            .iter()
            .map(|(job, keys)| (*job, keys.clone()))
            .collect();
        labor.sort_unstable_by_key(|(job, _)| *job);
        let mut reports: Vec<(u64, Vec<Vec<u8>>)> = self
            .data_reports
            .iter()
            .map(|(job, data)| (*job, data.clone()))
            .collect();
        reports.sort_unstable_by_key(|(job, _)| *job);
        ShardSection {
            nonces,
            labor,
            reports,
            dedup: dedup.entries_in_order(),
        }
    }

    /// Loads a checkpointed projection as this shard's base state;
    /// the journal tail is replayed on top by the caller.
    fn load_base(&mut self, base: &ShardSection, dedup: &mut DedupCache) {
        self.used_nonces = base
            .nonces
            .iter()
            .map(|&(account, nonce)| (AccountId(account), nonce))
            .collect();
        self.labor = base.labor.iter().cloned().collect();
        self.data_reports = base.reports.iter().cloned().collect();
        for (key, response) in &base.dedup {
            dedup.insert(*key, response.clone());
        }
    }
}

/// Where a shard journals its Begin/Commit records: the in-memory
/// per-shard [`ShardWal`] (the default), or the shared on-disk
/// [`DurableLog`] with this shard's tag on every record. Either way
/// the records, replay semantics and torn-tail discipline are
/// identical — the durable tier is the same journal on media that
/// survives the process.
#[derive(Clone)]
enum ShardJournal {
    Memory(Arc<ShardWal>),
    Durable { shard: u32, log: Arc<DurableLog> },
}

impl ShardJournal {
    fn append(&self, record: &WalRecord, ctx: SpanContext) {
        match self {
            ShardJournal::Memory(wal) => wal.append(record),
            ShardJournal::Durable { shard, log } => {
                // An append failure here means the storage device is
                // gone mid-flight; there is no meaningful degraded
                // mode for a write-ahead log, so fail the worker (the
                // supervisor respawns it, and if storage stays dead
                // the respawn loop surfaces the error to callers).
                log.append_spanned(*shard, record, ctx)
                    .expect("durable journal append failed");
            }
        }
    }

    fn replay(&self) -> WalReplay {
        match self {
            ShardJournal::Memory(wal) => wal.replay().expect("shard journal must replay cleanly"),
            ShardJournal::Durable { shard, log } => log
                .replay_shard(*shard)
                .expect("durable journal must replay cleanly"),
        }
    }

    /// Group commit: after a multi-item batch, force everything the
    /// sync policy deferred to media in **one** fsync, so one
    /// verification batch costs one fsync (`SyncPolicy::Batch`
    /// coordination, DESIGN.md §16). Replies are held until this
    /// returns, which makes batched acknowledgements *durable-before-
    /// ack* even under a deferring policy. Under `SyncPolicy::Always`
    /// everything already synced per append and this is free; the
    /// in-memory journal has nothing to sync at all.
    fn group_commit(&self) {
        match self {
            ShardJournal::Memory(_) => {}
            ShardJournal::Durable { log, .. } => {
                log.flush().expect("durable journal group commit failed");
            }
        }
    }
}

/// What the dispatcher sends a shard worker: a routed request, or a
/// checkpoint barrier asking for the shard's state projection. FIFO
/// channel order is the correctness argument: by the time the worker
/// answers `Project`, it has executed every request routed before the
/// barrier, so the projection is a consistent prefix.
enum ShardMsg {
    Req(Box<Inbound>),
    Project(Sender<ShardSection>),
}

/// Which shard handles a request. Affinity-keyed requests always land
/// on the same shard; everything else routes by its idempotency id —
/// *not* round-robin — so a retransmit reaches the shard that cached
/// the original answer. Round-robin via `rr` remains only for
/// keyless internal sends.
fn route(key: Option<RequestKey>, request: &MaRequest, shards: usize, rr: &mut usize) -> usize {
    use MaRequest::*;
    match request {
        Withdraw { account, .. } | DepositBatch { account, .. } | Balance { account } => {
            account.0 as usize % shards
        }
        LaborRegister { job_id, .. }
        | FetchLabor { job_id }
        | SubmitData { job_id, .. }
        | FetchData { job_id } => *job_id as usize % shards,
        SubmitPayment { sp_pubkey, .. } | FetchPayment { sp_pubkey } => {
            crate::wire::fnv1a(sp_pubkey) as usize % shards
        }
        RegisterJoAccount { .. } | RegisterSpAccount | PublishJob { .. } | Shutdown => match key {
            Some(k) => k.request_id as usize % shards,
            None => {
                *rr = rr.wrapping_add(1);
                (*rr - 1) % shards
            }
        },
    }
}

/// Everything a shard worker thread needs; built once per incarnation
/// by the supervisor, so a respawn reconstructs the worker over the
/// same journal and crash bookkeeping.
struct ShardWorker {
    shared: Arc<SharedState>,
    journal: ShardJournal,
    /// Checkpointed base state: the worker starts from this
    /// projection and replays only the journal tail on top. In memory
    /// mode it stays empty (the journal is the whole history); in
    /// durable mode the dispatcher swaps in each checkpoint's
    /// projection, which is what makes log compaction sound.
    base: Arc<Mutex<ShardSection>>,
    faults: FaultMetrics,
    /// The service registry: per-op latency, dedup hit/miss, WAL
    /// timings all land here.
    obs: Registry,
    /// This shard's bounded event ring, dumped on worker death.
    recorder: Arc<FlightRecorder>,
    /// Shared with the dispatcher: it adds one per enqueue, the worker
    /// subtracts one per dequeue, so the gauge reads the queue depth.
    queue_depth: Arc<ppms_obs::Gauge>,
    /// Where dead workers leave their crash-dump paths.
    dumps: Arc<Mutex<Vec<PathBuf>>>,
    dedup_capacity: usize,
    /// This worker's shard index (names its per-shard gauges).
    shard_idx: usize,
    /// Cross-client batching flush triggers.
    batch: BatchConfig,
    /// `(at_request, fired)` — exit when this incarnation's journal
    /// has `at_request` Begins, unless a previous incarnation already
    /// fired the crash.
    crash: Option<(u64, Arc<AtomicBool>)>,
    /// `(at_begin, fired)` — exit after the matching Commit append,
    /// before the group commit and before any held reply is sent.
    crash_mid_batch: Option<(u64, Arc<AtomicBool>)>,
}

impl ShardWorker {
    /// Writes this shard's flight-recorder ring plus a full registry
    /// snapshot to a JSON dump file and announces it on stderr with a
    /// stable, greppable prefix (the CI gate and the chaos tests look
    /// for `flight-recorder dump:`).
    fn dump_crash(&self, reason: &str) {
        let snapshot = self.obs.snapshot();
        match self.recorder.dump(reason, &snapshot) {
            Ok(path) => {
                eprintln!("flight-recorder dump: {}", path.display());
                self.dumps.lock().push(path);
            }
            Err(e) => eprintln!("flight-recorder dump failed: {e}"),
        }
    }

    fn run(self, srx: Receiver<ShardMsg>) {
        // Recover: load the checkpointed base (durable mode; empty in
        // memory mode), then rebuild private state and the
        // idempotency cache from the journal tail. An undecodable
        // journal is a bug, not a recoverable fault — fail loudly.
        let wal_replay_ns = self.obs.histogram("wal.replay_ns");
        let wal_append_ns = self.obs.histogram("wal.append_ns");
        let dedup_hits = self.obs.counter("ma.dedup.hits");
        let dedup_misses = self.obs.counter("ma.dedup.misses");
        // Per-op latency histograms, resolved once per label instead of
        // a `format!` + registry lookup on every request.
        let mut op_hists: HashMap<&'static str, Arc<ppms_obs::Histogram>> = HashMap::new();
        let mut dedup = DedupCache::new(self.dedup_capacity);
        let mut shard = Shard {
            shared: self.shared.clone(),
            obs: self.obs.clone(),
            used_nonces: HashMap::new(),
            labor: HashMap::new(),
            data_reports: HashMap::new(),
        };
        shard.load_base(&self.base.lock(), &mut dedup);
        let replay = {
            let _span = Timed::new(&wal_replay_ns);
            self.journal.replay()
        };
        self.faults.wal_discard(replay.discarded);
        for entry in &replay.committed {
            shard.apply_committed(entry);
            if let Some(k) = entry.key {
                dedup.insert(k, entry.response.clone());
            }
            // Re-attribute each replayed entry to the trace of the
            // client operation that originally caused it: a crash dump
            // taken after recovery shows *whose* requests were redone,
            // not an anonymous wall of trace 0.
            self.recorder.record(entry.span.trace_id, "replayed", || {
                format!("key={:?}", entry.key)
            });
        }
        let mut begins = replay.committed.len() as u64 + replay.discarded;
        self.recorder.record(0, "replay", || {
            format!(
                "committed={} discarded={}",
                replay.committed.len(),
                replay.discarded
            )
        });

        // Batching instrumentation (DESIGN.md §16): how batches form
        // (`batch.drain_size`), why they flush (`batch.flush_*`), how
        // many spends the cross-client preverify combined, and how
        // many group commits amortized an fsync.
        let drain_size = self.obs.histogram("batch.drain_size");
        let flush_full = self.obs.counter("batch.flush_full");
        let flush_deadline = self.obs.counter("batch.flush_deadline");
        let flush_drain = self.obs.counter("batch.flush_drain");
        let batch_items = self.obs.counter("batch.items");
        let batch_drains = self.obs.counter("batch.drains");
        let group_commits = self.obs.counter("batch.group_commits");
        let preverify_spends = self.obs.histogram("batch.preverify_spends");
        let amortized_ns = self.obs.histogram("deposit.item_amortized_ns");
        let delay_gauge = self
            .obs
            .gauge(&format!("ma.shard{}.batch_delay_us", self.shard_idx));
        let max_batch = self.batch.max_batch.max(1);
        let max_delay_ns = self.batch.max_delay_micros.saturating_mul(1_000);
        // Nagle state: an EWMA of inter-arrival gaps. It starts
        // pessimistic (gaps far wider than any deadline budget — no
        // wait) and only genuinely fast arrivals pull it down.
        let mut ewma_gap_ns: f64 = 1e9;
        let mut last_arrival = std::time::Instant::now();
        // Reusable batch scratch, reclaimed across iterations.
        let mut batch: Vec<Inbound> = Vec::with_capacity(max_batch);
        let mut held: Vec<(Sender<MaResponse>, MaResponse)> = Vec::with_capacity(max_batch);
        let mut preverified: Vec<Option<Vec<Result<u64, DecError>>>> =
            Vec::with_capacity(max_batch);

        loop {
            batch.clear();
            held.clear();
            preverified.clear();
            let mut barrier: Option<Sender<ShardSection>> = None;
            let mut closed = false;

            // Phase 1 — collect: block for the first item, then drain
            // greedily up to the cap N, Nagle-waiting out the adaptive
            // deadline D only while the observed arrival rate makes a
            // companion likely inside it. D collapses to zero at low
            // load, so a lone request is never delayed. A checkpoint
            // barrier seals the batch: it is answered after the batch
            // executes, preserving the FIFO consistent-prefix
            // argument.
            match srx.recv() {
                Ok(ShardMsg::Req(inbound)) => batch.push(*inbound),
                Ok(ShardMsg::Project(reply)) => {
                    // Everything routed before this message has
                    // already executed (FIFO), so the projection is a
                    // consistent prefix of this shard.
                    let _ = reply.send(shard.project(&dedup));
                    continue;
                }
                Err(_) => return,
            }
            let now = std::time::Instant::now();
            let gap = now.duration_since(last_arrival).as_nanos() as f64;
            last_arrival = now;
            ewma_gap_ns = 0.75 * ewma_gap_ns + 0.25 * gap;
            // Wait ~4 expected gaps, and only when at least two of
            // them fit the deadline budget; otherwise flush instantly.
            let delay_ns = if max_delay_ns > 0 && 2.0 * ewma_gap_ns <= max_delay_ns as f64 {
                ((4.0 * ewma_gap_ns) as u64).min(max_delay_ns)
            } else {
                0
            };
            delay_gauge.set((delay_ns / 1_000) as i64);
            let deadline = now + std::time::Duration::from_nanos(delay_ns);
            let mut reason = &flush_drain;
            while batch.len() < max_batch && barrier.is_none() && !closed {
                match srx.try_recv() {
                    Ok(ShardMsg::Req(inbound)) => {
                        let now = std::time::Instant::now();
                        let gap = now.duration_since(last_arrival).as_nanos() as f64;
                        last_arrival = now;
                        ewma_gap_ns = 0.75 * ewma_gap_ns + 0.25 * gap;
                        batch.push(*inbound);
                    }
                    Ok(ShardMsg::Project(reply)) => barrier = Some(reply),
                    Err(channel::TryRecvError::Empty) => {
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match srx.recv_timeout(deadline - now) {
                            Ok(ShardMsg::Req(inbound)) => {
                                let now = std::time::Instant::now();
                                let gap = now.duration_since(last_arrival).as_nanos() as f64;
                                last_arrival = now;
                                ewma_gap_ns = 0.75 * ewma_gap_ns + 0.25 * gap;
                                batch.push(*inbound);
                            }
                            Ok(ShardMsg::Project(reply)) => barrier = Some(reply),
                            Err(channel::RecvTimeoutError::Timeout) => {
                                reason = &flush_deadline;
                                break;
                            }
                            Err(channel::RecvTimeoutError::Disconnected) => closed = true,
                        }
                    }
                    Err(channel::TryRecvError::Disconnected) => closed = true,
                }
            }
            if batch.len() >= max_batch {
                reason = &flush_full;
            }
            reason.inc();
            batch_drains.inc();
            batch_items.add(batch.len() as u64);
            drain_size.record(batch.len() as u64);
            self.queue_depth.sub(batch.len() as i64);
            let lead_ctx = batch[0].span;

            // Phase 2 — cross-client preverify: move every
            // non-replayed deposit's spends (admission deposits
            // included — they ride the same request shape) into one
            // combined slice and run the whole thing through the
            // chunked combined verification. Bisection inside
            // `verify_batch` isolates a cheater without poisoning its
            // batch neighbors, and verdicts are bit-identical to
            // per-item verification regardless of the seed, so
            // scattering them back per item keeps execution
            // sequential-equivalent. The *stateful* double-spend
            // bookkeeping is not here: it stays in the handler, per
            // item, in arrival order.
            preverified.extend((0..batch.len()).map(|_| None));
            let mut combined: Vec<Spend> = Vec::new();
            let mut plan: Vec<(usize, usize)> = Vec::new();
            for (i, inbound) in batch.iter_mut().enumerate() {
                if inbound.key.is_some_and(|k| dedup.get(&k).is_some()) {
                    continue; // replays below; never re-verify
                }
                if let MaRequest::DepositBatch { spends, .. } = &mut inbound.request {
                    if spends.is_empty() {
                        continue;
                    }
                    plan.push((i, spends.len()));
                    combined.append(spends);
                }
            }
            if !combined.is_empty() {
                let pv_span = Span::child("shard.preverify", lead_ctx);
                let started = std::time::Instant::now();
                preverify_spends.record(combined.len() as u64);
                let seed = ppms_ecash::batch_seed(&combined, b"");
                let verdicts = ppms_ecash::verify_batch_chunked(
                    seed,
                    ppms_ecash::DEPOSIT_CHUNK,
                    &self.shared.params,
                    &self.shared.bank_pk,
                    b"",
                    &combined,
                );
                amortized_ns.record((started.elapsed().as_nanos() / combined.len() as u128) as u64);
                drop(pv_span);
                let mut verdicts = verdicts.into_iter();
                let mut spends_back = combined.into_iter();
                for &(i, n) in &plan {
                    let MaRequest::DepositBatch { spends, .. } = &mut batch[i].request else {
                        unreachable!("plan entries are deposits")
                    };
                    spends.extend(spends_back.by_ref().take(n));
                    preverified[i] = Some(verdicts.by_ref().take(n).collect());
                }
            }

            // Phase 3 — execute, strictly in arrival order. Replies
            // are collected, not sent: they are released only after
            // the batch's group commit, so a batched acknowledgement
            // is never weaker than an unbatched one.
            let mut committed = 0usize;
            for (i, inbound) in batch.drain(..).enumerate() {
                let Inbound {
                    key,
                    span,
                    request,
                    reply,
                } = inbound;
                let trace_id = span.trace_id;
                let label = request_label(&request);
                self.recorder
                    .record(trace_id, "recv", || format!("{label} key={key:?}"));
                // Exactly-once: a retransmit of an executed request
                // gets its original answer back, without touching any
                // state — including a retransmit that landed in the
                // same batch as its original.
                if let Some(k) = key {
                    if let Some(cached) = dedup.get(&k) {
                        self.faults.dedup_replay();
                        dedup_hits.inc();
                        self.recorder
                            .record(trace_id, "dedup-replay", || format!("{label} key={k:?}"));
                        held.push((reply, cached.clone()));
                        continue;
                    }
                }
                dedup_misses.inc();
                // Service latency from here: WAL Begin + execute +
                // Commit. The causal span covers the same window,
                // parented under whatever delivered the request (a
                // transport attempt or a reactor read), so exported
                // traces show shard residency.
                let handle_span = Span::child("shard.handle", span);
                let op_hist = op_hists
                    .entry(label)
                    .or_insert_with(|| self.obs.histogram(&format!("ma.op.{label}_ns")));
                let op_span = TimedOwned::new(op_hist.clone());

                // The Begin record rides the request by move — no
                // deep clone of payload vectors on the hot path — and
                // hands it back after the append.
                let record = {
                    let _span = Timed::new(&wal_append_ns);
                    let wal_span = Span::child("wal.append", handle_span.ctx());
                    let record = WalRecord::Begin { key, span, request };
                    self.journal.append(&record, wal_span.ctx());
                    record
                };
                let WalRecord::Begin { request, .. } = record else {
                    unreachable!("begin record carries the request")
                };
                begins += 1;
                if let Some((at, fired)) = &self.crash {
                    if begins >= *at && !fired.swap(true, Ordering::SeqCst) {
                        // Injected crash: die after journaling, before
                        // executing — the request is lost in flight, its
                        // Begin is the journal's orphan tail. Close the
                        // queue *before* hanging up on the caller: once
                        // the caller observes the failure, its retry is
                        // guaranteed to bounce off the dead channel and
                        // reach the supervisor's respawn path instead of
                        // vanishing into a dying queue. Held replies and
                        // undrained batch items hang up the same way.
                        self.recorder.record(trace_id, "crash", || {
                            format!("injected after {label} Begin")
                        });
                        self.dump_crash("injected-crash");
                        drop(srx);
                        drop(reply);
                        return;
                    }
                }

                let pv = preverified[i].take();
                // A panic inside a handler kills only this worker; the
                // supervisor respawns it and the journal replay
                // restores everything committed before the blast.
                let (response, effects) = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut effects = Vec::new();
                    let response = shard.handle(request, &mut effects, pv);
                    (response, effects)
                })) {
                    Ok(pair) => pair,
                    Err(_) => {
                        self.recorder
                            .record(trace_id, "crash", || format!("panic handling {label}"));
                        self.dump_crash("handler-panic");
                        // Same close-then-hang-up ordering as above.
                        drop(srx);
                        drop(reply);
                        return;
                    }
                };

                // The Commit record rides the response by move, too;
                // only the dedup cache still clones it.
                let record = {
                    let _span = Timed::new(&wal_append_ns);
                    let wal_span = Span::child("wal.append", handle_span.ctx());
                    let record = WalRecord::Commit {
                        key,
                        response,
                        effects,
                    };
                    self.journal.append(&record, wal_span.ctx());
                    record
                };
                let WalRecord::Commit { response, .. } = record else {
                    unreachable!("commit record carries the response")
                };
                self.faults.wal_commit();
                committed += 1;
                if let Some(k) = key {
                    dedup.insert(k, response.clone());
                }
                self.recorder
                    .record(trace_id, "commit", || label.to_string());
                drop(op_span);
                drop(handle_span);
                if let Some((at, fired)) = &self.crash_mid_batch {
                    if begins >= *at && !fired.swap(true, Ordering::SeqCst) {
                        // Mid-batch kill point: the Commit above is
                        // journaled (not necessarily synced — under a
                        // deferring policy the group commit below is
                        // what would have made it durable), and no
                        // held reply escapes. Every client in the
                        // batch must converge via retry: committed
                        // items replay from the dedup cache, the rest
                        // re-execute.
                        self.recorder.record(trace_id, "crash", || {
                            format!("injected mid-batch after {label} Commit")
                        });
                        self.dump_crash("mid-batch-crash");
                        drop(srx);
                        drop(reply);
                        return;
                    }
                }
                held.push((reply, response));
            }

            // Phase 4 — group commit, then release the held replies.
            // One fsync covers the whole batch under a deferring sync
            // policy; a batch of one keeps the per-append policy
            // untouched (no forced fsync), so sequential drivers see
            // byte-identical fsync behavior to the unbatched pipeline.
            if committed > 1 {
                let gc_span = Span::child("wal.group_commit", lead_ctx);
                self.journal.group_commit();
                group_commits.inc();
                drop(gc_span);
            }
            for (reply, response) in held.drain(..) {
                // A vanished client is not an MA failure.
                let _ = reply.send(response);
            }
            if let Some(reply) = barrier {
                let _ = reply.send(shard.project(&dedup));
            }
            if closed {
                return;
            }
        }
    }
}

/// Service-level operations routed around the request inbox, so they
/// are never subject to request backpressure.
enum Control {
    /// Take a checkpoint now; reply with the covered LSN.
    Checkpoint(Sender<Result<u64, StorageError>>),
}

/// What cold-start recovery found and replayed
/// ([`MaService::recover`]).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// The snapshot file the instance restarted from, if any.
    pub snapshot: Option<String>,
    /// First LSN *not* covered by that snapshot (0 = cold start).
    pub snapshot_lsn: u64,
    /// Snapshot files present but unreadable (torn or corrupt
    /// checkpoint publications), skipped in favor of an older one.
    pub snapshots_skipped: usize,
    /// Log records replayed on top of the snapshot. After a
    /// checkpoint + compaction this counts only post-snapshot records
    /// — the property that bounds recovery time by checkpoint
    /// interval, not by history length.
    pub replayed_records: usize,
    /// Requests in flight at the crash (Begin without Commit),
    /// discarded; the clients' retries re-execute them.
    pub discarded_inflight: u64,
    /// Bytes of torn final frame truncated from the log tail.
    pub torn_tail_bytes: usize,
    /// Segment files read during replay.
    pub segments_read: usize,
}

/// Durable-tier state owned by the dispatcher.
struct DurableCtx {
    log: Arc<DurableLog>,
    config: DurabilityConfig,
    /// First LSN not covered by the last durable snapshot.
    covered: u64,
    /// Set by the TCP front door so checkpoints can include the
    /// admission gate's state.
    gate_hook: Arc<Mutex<Option<Arc<GateCheckpoint>>>>,
    snapshots: Arc<ppms_obs::Counter>,
    snapshot_failures: Arc<ppms_obs::Counter>,
    last_snapshot_lsn: Arc<ppms_obs::Gauge>,
    since_snapshot: Arc<ppms_obs::Gauge>,
}

/// Re-applies the *shared-state* effects of one committed request
/// during cold-start recovery — the shared twin of
/// [`Shard::apply_committed`] (which replays per-shard private
/// state). Each arm applies exactly what the original execution wrote
/// into the shared structures, keyed off the recorded response; it
/// never re-runs verification, whose verdict already rides in the
/// record (`effects` for batch deposits).
#[allow(clippy::too_many_arguments)]
fn apply_shared_effects(
    request: &MaRequest,
    response: &MaResponse,
    effects: &[(u32, u64)],
    bank: &Bank,
    bulletin: &Bulletin,
    dec_bank: &mut DecBank,
    cl_bindings: &mut HashMap<AccountId, ClPublicKey>,
    held: &mut HeldPayments,
    face_value: u64,
) {
    use MaRequest::*;
    match (request, response) {
        (RegisterJoAccount { funds, clpk }, MaResponse::Account(id)) => {
            bank.restore_account(*id, *funds);
            cl_bindings.insert(*id, clpk.clone());
        }
        (RegisterSpAccount, MaResponse::Account(id)) => {
            bank.restore_account(*id, 0);
        }
        (
            PublishJob {
                description,
                payment,
                pseudonym,
            },
            MaResponse::JobId(job_id),
        ) => {
            bulletin.restore_job(JobProfile {
                job_id: *job_id,
                description: description.clone(),
                payment: *payment,
                pseudonym: pseudonym.clone(),
            });
        }
        (Withdraw { account, .. }, MaResponse::BlindSignature(_)) => {
            // The debit succeeded when the record was written; under
            // faithful in-order replay it succeeds again.
            let _ = bank.debit(*account, face_value);
        }
        (
            SubmitPayment {
                sp_pubkey,
                ciphertext,
            },
            MaResponse::Ok,
        ) => {
            held.pending.insert(sp_pubkey.clone(), ciphertext.clone());
        }
        (SubmitData { sp_pubkey, .. }, MaResponse::Ok) => {
            held.received.insert(sp_pubkey.clone());
        }
        (FetchPayment { sp_pubkey }, MaResponse::Payment(Some(_))) => {
            held.pending.remove(sp_pubkey);
        }
        (DepositBatch { account, spends }, _) => {
            // Re-insert exactly the spends the original execution
            // accepted (double-spend state) and re-credit the
            // recorded total — the response alone carries only
            // counts, which is why `effects` rides in the Commit.
            // The DEC state mutates even when the response was an
            // error (a failed ledger credit happens *after* the
            // deposits), matching the original execution.
            let mut total = 0u64;
            for &(idx, value) in effects {
                if let Some(spend) = spends.get(idx as usize) {
                    let _ = dec_bank.deposit_preverified(spend, value);
                    total += value;
                }
            }
            if total > 0 && matches!(response, MaResponse::BatchDeposited { .. }) {
                let _ = bank.credit(*account, total);
            }
        }
        _ => {}
    }
}

/// The supervisor thread's state: routes requests to shards, respawns
/// dead workers, and (in durable mode) runs the checkpoint protocol.
struct Dispatcher {
    shared: Arc<SharedState>,
    faults: FaultMetrics,
    obs: Registry,
    recorders: Vec<Arc<FlightRecorder>>,
    dumps: Arc<Mutex<Vec<PathBuf>>>,
    dedup_capacity: usize,
    depth: usize,
    n_shards: usize,
    /// One journal per shard; outlives any worker incarnation so a
    /// respawn resumes from it.
    journals: Vec<ShardJournal>,
    /// One checkpointed base per shard, swapped at each checkpoint.
    bases: Vec<Arc<Mutex<ShardSection>>>,
    /// One crash latch per shard, shared across incarnations.
    crashes: Vec<Option<(u64, Arc<AtomicBool>)>>,
    /// Mid-batch crash latches, ditto.
    mid_crashes: Vec<Option<(u64, Arc<AtomicBool>)>>,
    batch: BatchConfig,
    queue_gauges: Vec<Arc<ppms_obs::Gauge>>,
    /// Shard inboxes, shared with every [`ShardRouter`] so direct
    /// routes keep working across worker respawns.
    shard_txs: Arc<Mutex<Vec<Sender<ShardMsg>>>>,
    shard_handles: Vec<Option<JoinHandle<()>>>,
    rr: usize,
    durable: Option<DurableCtx>,
}

impl Dispatcher {
    fn spawn_shard(&self, idx: usize) -> (Sender<ShardMsg>, JoinHandle<()>) {
        let (stx, srx): (Sender<ShardMsg>, Receiver<ShardMsg>) = channel::bounded(self.depth);
        let worker = ShardWorker {
            shared: self.shared.clone(),
            journal: self.journals[idx].clone(),
            base: self.bases[idx].clone(),
            faults: self.faults.clone(),
            obs: self.obs.clone(),
            recorder: self.recorders[idx].clone(),
            queue_depth: self.queue_gauges[idx].clone(),
            dumps: self.dumps.clone(),
            dedup_capacity: self.dedup_capacity,
            crash: self.crashes[idx].clone(),
            shard_idx: idx,
            batch: self.batch,
            crash_mid_batch: self.mid_crashes[idx].clone(),
        };
        let handle = std::thread::spawn(move || worker.run(srx));
        (stx, handle)
    }

    /// Joins a dead worker and brings up a fresh incarnation over the
    /// same journal, base and crash latch.
    fn respawn(&mut self, idx: usize) {
        if let Some(old) = self.shard_handles[idx].take() {
            let _ = old.join();
        }
        self.faults.shard_respawn();
        // Whatever sat in the dead channel is gone; the fresh
        // incarnation starts with an empty queue.
        self.queue_gauges[idx].set(0);
        let (stx, handle) = self.spawn_shard(idx);
        self.shard_txs.lock()[idx] = stx;
        self.shard_handles[idx] = Some(handle);
    }

    /// A clone of shard `idx`'s current inbox. Cloned out of the lock
    /// so a blocking send never holds it against direct routers.
    fn shard_tx(&self, idx: usize) -> Sender<ShardMsg> {
        self.shard_txs.lock()[idx].clone()
    }

    fn deliver(&mut self, inbound: Inbound) {
        let idx = route(inbound.key, &inbound.request, self.n_shards, &mut self.rr);
        match self.shard_tx(idx).send(ShardMsg::Req(Box::new(inbound))) {
            Ok(()) => self.queue_gauges[idx].add(1),
            Err(send_err) => {
                // The worker died (panic or injected crash).
                // Supervise: join the corpse, respawn over the same
                // journal — the new incarnation replays it — and
                // redeliver. Requests queued in the dead channel are
                // lost; their senders see a hang-up and retry.
                let ShardMsg::Req(inbound) = send_err.0 else {
                    unreachable!("deliver only sends requests")
                };
                self.respawn(idx);
                if let Err(send_err) = self.shard_tx(idx).send(ShardMsg::Req(inbound)) {
                    let ShardMsg::Req(inbound) = send_err.0 else {
                        unreachable!("deliver only sends requests")
                    };
                    let _ = inbound.reply.send(MaResponse::Err(MarketError::Transport(
                        "shard worker unavailable".into(),
                    )));
                    return;
                }
                self.queue_gauges[idx].add(1);
            }
        }
        if let Some(d) = &self.durable {
            let pending = d.log.next_lsn().saturating_sub(d.covered);
            d.since_snapshot.set(pending as i64);
            if d.config.checkpoint_every > 0 && pending >= d.config.checkpoint_every {
                // Scheduled checkpoint. A failure (e.g. an injected
                // torn snapshot write) is not fatal: the log still
                // holds everything, only compaction is deferred.
                let _ = self.checkpoint();
            }
        }
    }

    /// The checkpoint protocol: barrier every shard for its
    /// projection, fsync the log, publish one atomic snapshot of the
    /// whole market, compact the log behind it, and adopt the
    /// projections as the workers' respawn bases. Returns the covered
    /// LSN — the point recovery will replay from.
    fn checkpoint(&mut self) -> Result<u64, StorageError> {
        if self.durable.is_none() {
            return Err(StorageError::Io(
                "service has no durable storage tier".into(),
            ));
        }
        // Projection barrier. The dispatcher is not routing while
        // this runs and channels are FIFO, so each shard's answer
        // reflects exactly the requests delivered before the barrier
        // — and between barriers no new work is delivered, making the
        // union a consistent cut. A dead worker is respawned and
        // asked again: the fresh incarnation answers from base +
        // journal tail, which is the same state.
        let mut sections: Vec<ShardSection> = Vec::with_capacity(self.n_shards);
        for idx in 0..self.n_shards {
            loop {
                let (ptx, prx) = channel::bounded(1);
                if self.shard_tx(idx).send(ShardMsg::Project(ptx)).is_err() {
                    self.respawn(idx);
                    continue;
                }
                match prx.recv() {
                    Ok(section) => {
                        sections.push(section);
                        break;
                    }
                    Err(_) => self.respawn(idx),
                }
            }
        }
        let (log, storage, keep) = {
            let d = self.durable.as_ref().expect("durable ctx");
            (
                d.log.clone(),
                d.config.storage.clone(),
                d.config.keep_snapshots,
            )
        };
        // Everything the snapshot will cover must be durable *before*
        // the snapshot claims to cover it.
        log.flush()?;
        let covered = log.next_lsn();
        let gate = self.request_gate_blob();
        let state = {
            let mut cl_bindings: Vec<(u64, ClPublicKey)> = self
                .shared
                .cl_bindings
                .read()
                .iter()
                .map(|(account, pk)| (account.0, pk.clone()))
                .collect();
            cl_bindings.sort_unstable_by_key(|(account, _)| *account);
            let held = self.shared.held.lock();
            let mut pending_payments: Vec<(Vec<u8>, Vec<u8>)> = held
                .pending
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            pending_payments.sort_unstable();
            let mut received_reports: Vec<Vec<u8>> = held.received.iter().cloned().collect();
            received_reports.sort_unstable();
            drop(held);
            SnapshotState {
                covered,
                bank: self.shared.bank.snapshot(),
                jobs: self.shared.bulletin.list(),
                cl_bindings,
                dec: self.shared.dec_bank.lock().export_state(),
                pending_payments,
                received_reports,
                shards: sections.clone(),
                gate,
            }
        };
        if let Err(e) = save_snapshot(&storage, &state, keep) {
            // The snapshot never became durable: keep the old covered
            // point, skip compaction, leave the old bases in place.
            // The log still holds the full tail, so nothing is lost.
            self.durable
                .as_ref()
                .expect("durable ctx")
                .snapshot_failures
                .inc();
            return Err(e);
        }
        log.compact(covered)?;
        for (base, section) in self.bases.iter().zip(sections) {
            *base.lock() = section;
        }
        let d = self.durable.as_mut().expect("durable ctx");
        d.covered = covered;
        d.snapshots.inc();
        d.last_snapshot_lsn.set(covered as i64);
        d.since_snapshot.set(0);
        Ok(covered)
    }

    /// Asks the front door (if one attached a hook) to export the
    /// admission gate, waiting a bounded window for its reactor to
    /// answer. `None` — no front door, or a stopped reactor — just
    /// omits the gate section from the snapshot.
    fn request_gate_blob(&self) -> Option<Vec<u8>> {
        let d = self.durable.as_ref()?;
        let hook = d.gate_hook.lock().clone()?;
        hook.request();
        for _ in 0..500 {
            if let Some(blob) = hook.take_blob() {
                return Some(blob);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        None
    }

    fn run(mut self, rx: Receiver<Inbound>, ctrl_rx: Receiver<Control>) {
        // Route until Shutdown (or every client hung up), supervising
        // the workers along the way and serving checkpoint requests
        // between deliveries. The control channel is polled (the
        // vendored channel stand-in has no `select!`), so an idle
        // dispatcher notices a checkpoint request within the recv
        // timeout.
        let idle = std::time::Duration::from_millis(2);
        let shutdown_reply = loop {
            if let Ok(Control::Checkpoint(reply)) = ctrl_rx.try_recv() {
                let _ = reply.send(self.checkpoint());
                continue;
            }
            match rx.recv_timeout(idle) {
                Ok(inbound) if matches!(inbound.request, MaRequest::Shutdown) => {
                    break Some(inbound.reply);
                }
                Ok(inbound) => self.deliver(inbound),
                Err(channel::RecvTimeoutError::Timeout) => continue,
                Err(channel::RecvTimeoutError::Disconnected) => break None,
            }
        };

        // Graceful drain: close the shard queues, let every queued
        // request finish, then report undelivered held payments.
        drop(std::mem::take(&mut *self.shard_txs.lock()));
        for h in std::mem::take(&mut self.shard_handles)
            .into_iter()
            .flatten()
        {
            let _ = h.join();
        }
        if let Some(d) = &self.durable {
            // Shutdown barrier: whatever the sync policy deferred
            // reaches media before the process exits.
            let _ = d.log.flush();
        }
        let undelivered = self.shared.held.lock().pending.len();
        if let Some(reply) = shutdown_reply {
            let _ = reply.send(MaResponse::Drained {
                undelivered_payments: undelivered,
            });
        }
    }
}

impl MaService {
    /// Spawns the MA service with the default configuration (one
    /// shard — the sequential-service behavior).
    pub fn spawn<R: rand::Rng + ?Sized>(
        rng: &mut R,
        params: DecParams,
        rsa_bits: usize,
        pairing_bits: usize,
    ) -> MaService {
        Self::spawn_with_config(
            rng,
            params,
            rsa_bits,
            pairing_bits,
            ServiceConfig::default(),
        )
    }

    /// Spawns the MA service: one supervising dispatcher thread plus
    /// `config.shards` shard workers behind bounded channels. Journals
    /// are in-memory — state survives *worker* crashes but not the
    /// process; see [`MaService::spawn_durable`] for the disk tier.
    pub fn spawn_with_config<R: rand::Rng + ?Sized>(
        rng: &mut R,
        params: DecParams,
        rsa_bits: usize,
        pairing_bits: usize,
        config: ServiceConfig,
    ) -> MaService {
        let (svc, _report) = Self::spawn_inner(rng, params, rsa_bits, pairing_bits, config, None)
            .expect("in-memory spawn touches no storage and cannot fail");
        svc
    }

    /// Spawns the MA service over a durable storage tier: every
    /// journal record lands in the on-disk segment log under
    /// `durability.storage`, checkpoints snapshot the whole market
    /// (and compact the log behind them), and a later
    /// [`MaService::recover`] over the same storage resumes where this
    /// instance stopped — spawning over non-empty storage *is*
    /// recovery.
    pub fn spawn_durable<R: rand::Rng + ?Sized>(
        rng: &mut R,
        params: DecParams,
        rsa_bits: usize,
        pairing_bits: usize,
        config: ServiceConfig,
        durability: DurabilityConfig,
    ) -> Result<MaService, StorageError> {
        Self::spawn_inner(
            rng,
            params,
            rsa_bits,
            pairing_bits,
            config,
            Some(durability),
        )
        .map(|(svc, _report)| svc)
    }

    /// Cold-start recovery: rebuilds a full service from the newest
    /// readable snapshot plus the log tail and reports what it
    /// replayed. Empty storage is a clean cold start. `rng` must be
    /// seeded as the original instance's was: the bank and pairing
    /// keys are regenerated deterministically from it — the
    /// reproduction's stand-in for a sealed key file (DESIGN.md §14).
    pub fn recover<R: rand::Rng + ?Sized>(
        rng: &mut R,
        params: DecParams,
        rsa_bits: usize,
        pairing_bits: usize,
        config: ServiceConfig,
        durability: DurabilityConfig,
    ) -> Result<(MaService, RecoveryReport), StorageError> {
        Self::spawn_inner(
            rng,
            params,
            rsa_bits,
            pairing_bits,
            config,
            Some(durability),
        )
    }

    fn spawn_inner<R: rand::Rng + ?Sized>(
        rng: &mut R,
        params: DecParams,
        rsa_bits: usize,
        pairing_bits: usize,
        config: ServiceConfig,
        durability: Option<DurabilityConfig>,
    ) -> Result<(MaService, RecoveryReport), StorageError> {
        // Build the fixed-base window tables once, up front: every
        // shard and every client clone of `params` share the per-ring
        // caches, so nobody pays the lazy first-use build.
        params.precompute();
        let mut dec_bank = DecBank::new(rng, params.clone(), rsa_bits);
        let bank_pk = dec_bank.public_key().clone();
        let pairing = TypeAPairing::generate(rng, pairing_bits);
        let bank = Bank::new();
        let bulletin = Bulletin::new();
        // One registry for the whole service: traffic bytes, fault
        // counters, per-op latency, queue depths and WAL timings all
        // merge into a single snapshot. Private (not the process-wide
        // global) so concurrent services in one test binary don't
        // bleed counts into each other.
        let obs = Registry::new();
        let traffic = TrafficLog::in_registry(&obs);
        let faults = FaultMetrics::in_registry(&obs);

        let n_shards = config.shards.max(1);
        let depth = config.queue_depth.max(1);
        let dedup_capacity = config.dedup_capacity;

        let bases: Vec<Arc<Mutex<ShardSection>>> = (0..n_shards)
            .map(|_| Arc::new(Mutex::new(ShardSection::default())))
            .collect();
        let mut cl_map: HashMap<AccountId, ClPublicKey> = HashMap::new();
        let mut held = HeldPayments::default();
        let mut report = RecoveryReport::default();
        let gate_hook: Arc<Mutex<Option<Arc<GateCheckpoint>>>> = Arc::new(Mutex::new(None));
        let mut recovered_gate = None;

        // Durable mode: open the log, restore the newest readable
        // snapshot into the shared structures, then replay the log
        // tail's shared effects. (Workers replay the same tail for
        // their private state when they start.)
        let durable = match &durability {
            None => None,
            Some(cfg) => {
                let (log, log_rec) =
                    DurableLog::open(cfg.storage.clone(), cfg.sync, cfg.segment_bytes, &obs)?;
                let log = Arc::new(log);
                let snap = load_latest(&cfg.storage)?;
                report.snapshots_skipped = snap.skipped.len();
                let mut covered = 0u64;
                if let Some(state) = snap.state {
                    if state.shards.len() != n_shards {
                        return Err(StorageError::ShardMismatch {
                            snapshot: state.shards.len(),
                            config: n_shards,
                        });
                    }
                    covered = state.covered;
                    for &(id, balance) in &state.bank.accounts {
                        bank.restore_account(AccountId(id), balance);
                    }
                    for job in state.jobs {
                        bulletin.restore_job(job);
                    }
                    for (account, pk) in state.cl_bindings {
                        cl_map.insert(AccountId(account), pk);
                    }
                    dec_bank.restore_state(&state.dec);
                    held.pending = state.pending_payments.into_iter().collect();
                    held.received = state.received_reports.into_iter().collect();
                    for (base, section) in bases.iter().zip(state.shards) {
                        *base.lock() = section;
                    }
                    recovered_gate = state.gate;
                    report.snapshot = snap.name;
                    report.snapshot_lsn = covered;
                }
                if log_rec.start_lsn > covered {
                    // Records between the snapshot's coverage and the
                    // log's first segment are gone — compaction ran
                    // against a snapshot we can no longer read. State
                    // cannot be reconstructed faithfully; refuse.
                    return Err(StorageError::Corrupt {
                        file: String::new(),
                        offset: 0,
                        detail: format!(
                            "log starts at lsn {} but newest readable snapshot covers only {}",
                            log_rec.start_lsn, covered
                        ),
                    });
                }
                // Shared-effects replay, in global commit order. Each
                // shard's records pair up Begin/Commit independently.
                let mut pending_begin: HashMap<u32, MaRequest> = HashMap::new();
                let mut replayed = 0usize;
                let mut discarded = 0u64;
                for (lsn, shard, record) in &log_rec.records {
                    if *lsn < covered {
                        continue;
                    }
                    replayed += 1;
                    match record {
                        WalRecord::Begin { request, .. } => {
                            if pending_begin.insert(*shard, request.clone()).is_some() {
                                // Begin over Begin: the older one died
                                // in flight (worker crash); discard.
                                discarded += 1;
                            }
                        }
                        WalRecord::Commit {
                            response, effects, ..
                        } => {
                            let Some(request) = pending_begin.remove(shard) else {
                                return Err(StorageError::Corrupt {
                                    file: String::new(),
                                    offset: 0,
                                    detail: format!(
                                        "lsn {lsn}: commit without begin on shard {shard}"
                                    ),
                                });
                            };
                            apply_shared_effects(
                                &request,
                                response,
                                effects,
                                &bank,
                                &bulletin,
                                &mut dec_bank,
                                &mut cl_map,
                                &mut held,
                                params.face_value(),
                            );
                        }
                    }
                }
                discarded += pending_begin.len() as u64;
                report.replayed_records = replayed;
                report.discarded_inflight = discarded;
                report.torn_tail_bytes = log_rec.torn_bytes;
                report.segments_read = log_rec.segments_read;
                Some((log, cfg.clone(), covered))
            }
        };

        let shared = Arc::new(SharedState {
            bank: bank.clone(),
            bulletin: bulletin.clone(),
            dec_bank: Mutex::new(dec_bank),
            params: params.clone(),
            bank_pk: bank_pk.clone(),
            pairing: pairing.clone(),
            cl_bindings: RwLock::new(cl_map),
            held: Mutex::new(held),
        });

        let (tx, rx): (Sender<Inbound>, Receiver<Inbound>) = channel::bounded(depth);
        let (ctrl_tx, ctrl_rx) = channel::unbounded::<Control>();

        // One flight recorder per shard, created here (not inside the
        // dispatcher) so the service handle keeps clones: tests can
        // inspect the rings, and a crash dump can be located after the
        // worker is gone.
        let recorders: Vec<Arc<FlightRecorder>> = (0..n_shards)
            .map(|i| Arc::new(FlightRecorder::new(format!("ma-shard{i}"), 64)))
            .collect();
        let dumps: Arc<Mutex<Vec<PathBuf>>> = Arc::new(Mutex::new(Vec::new()));
        let crashes: Vec<Option<(u64, Arc<AtomicBool>)>> = (0..n_shards)
            .map(|i| {
                config
                    .crash
                    .filter(|c| c.shard % n_shards == i)
                    .map(|c| (c.at_request, Arc::new(AtomicBool::new(false))))
            })
            .collect();
        let mid_crashes: Vec<Option<(u64, Arc<AtomicBool>)>> = (0..n_shards)
            .map(|i| {
                config
                    .crash_mid_batch
                    .filter(|c| c.shard % n_shards == i)
                    .map(|c| (c.at_begin, Arc::new(AtomicBool::new(false))))
            })
            .collect();
        // Queue-depth gauges: the dispatcher adds one per enqueue,
        // the worker subtracts one per dequeue.
        let queue_gauges: Vec<_> = (0..n_shards)
            .map(|i| obs.gauge(&format!("ma.shard{i}.queue_depth")))
            .collect();
        let journals: Vec<ShardJournal> = match &durable {
            None => (0..n_shards)
                .map(|_| ShardJournal::Memory(Arc::new(ShardWal::new())))
                .collect(),
            Some((log, _, _)) => (0..n_shards)
                .map(|i| ShardJournal::Durable {
                    shard: i as u32,
                    log: log.clone(),
                })
                .collect(),
        };
        let durable_ctx = durable.map(|(log, cfg, covered)| {
            let ctx = DurableCtx {
                snapshots: obs.counter("wal.snapshots"),
                snapshot_failures: obs.counter("wal.snapshot_failures"),
                last_snapshot_lsn: obs.gauge("wal.last_snapshot_lsn"),
                since_snapshot: obs.gauge("wal.records_since_snapshot"),
                log,
                config: cfg,
                covered,
                gate_hook: gate_hook.clone(),
            };
            ctx.last_snapshot_lsn.set(covered as i64);
            ctx.since_snapshot
                .set(ctx.log.next_lsn().saturating_sub(covered) as i64);
            ctx
        });

        let mut dispatcher = Dispatcher {
            shared,
            faults: faults.clone(),
            obs: obs.clone(),
            recorders: recorders.clone(),
            dumps: dumps.clone(),
            dedup_capacity,
            depth,
            n_shards,
            journals,
            bases,
            crashes,
            mid_crashes,
            batch: config.batch,
            queue_gauges: queue_gauges.clone(),
            shard_txs: Arc::new(Mutex::new(Vec::with_capacity(n_shards))),
            shard_handles: Vec::with_capacity(n_shards),
            rr: 0,
            durable: durable_ctx,
        };
        let shard_txs = dispatcher.shard_txs.clone();
        let handle = std::thread::spawn(move || {
            for idx in 0..dispatcher.n_shards {
                let (stx, handle) = dispatcher.spawn_shard(idx);
                dispatcher.shard_txs.lock().push(stx);
                dispatcher.shard_handles.push(Some(handle));
            }
            dispatcher.run(rx, ctrl_rx);
        });

        let svc = MaService {
            tx,
            ctrl: ctrl_tx,
            handle: Some(handle),
            bank,
            bulletin,
            traffic,
            faults,
            obs,
            recorders,
            dumps,
            params,
            bank_pk,
            pairing,
            gate_hook,
            recovered_gate: Mutex::new(recovered_gate),
            shard_txs,
            queue_gauges,
            n_shards,
        };
        Ok((svc, report))
    }

    /// Takes a checkpoint now: barriers the shards for their
    /// projections, publishes one atomic snapshot of the whole market
    /// and compacts the log behind it. Returns the covered LSN — the
    /// point a future recovery replays from. Fails if the service has
    /// no durable tier or the snapshot could not be published (the
    /// log is untouched in that case; nothing is lost).
    pub fn checkpoint(&self) -> Result<u64, StorageError> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.ctrl
            .send(Control::Checkpoint(reply_tx))
            .map_err(|_| StorageError::Io("service is not running".into()))?;
        reply_rx
            .recv()
            .map_err(|_| StorageError::Io("service is not running".into()))?
    }

    /// Registers the front door's gate-checkpoint hook: during a
    /// checkpoint the dispatcher asks it for the admission gate's
    /// exported state, so paid sessions survive recovery.
    pub fn attach_gate_checkpoint(&self, hook: Arc<GateCheckpoint>) {
        *self.gate_hook.lock() = Some(hook);
    }

    /// The admission-gate state recovered from the snapshot, if any —
    /// consumed (once) by the TCP front door on spawn to restore paid
    /// sessions instead of starting a fresh gate.
    pub fn take_recovered_gate(&self) -> Option<Vec<u8>> {
        self.recovered_gate.lock().take()
    }

    /// One merged snapshot of everything observable about this
    /// service: its private registry (traffic, faults, per-op latency,
    /// queue depths, WAL timings) plus the process-global registry
    /// (crypto and bigint spans recorded via [`ppms_obs::timed!`]).
    pub fn obs_snapshot(&self) -> Snapshot {
        self.obs.snapshot().merge(&ppms_obs::global().snapshot())
    }

    /// The per-shard flight recorders (shard index = vector index).
    pub fn recorders(&self) -> &[Arc<FlightRecorder>] {
        &self.recorders
    }

    /// Crash-dump files written by dead shard workers so far, in
    /// order of death.
    pub fn crash_dumps(&self) -> Vec<PathBuf> {
        self.dumps.lock().clone()
    }

    /// The dispatcher's raw inbox. This is how an in-process front
    /// door (the TCP reactor) injects already-decoded requests:
    /// `try_send` gives it the non-blocking admission decision a
    /// load-shedding server needs, which the blocking [`Transport`]
    /// backends deliberately do not expose.
    pub fn inbox(&self) -> Sender<Inbound> {
        self.tx.clone()
    }

    /// A direct route into the shard queues for the hot path; see
    /// [`ShardRouter`]. Callers keep [`MaService::inbox`] around as
    /// the supervised fallback for whatever the router hands back.
    pub fn router(&self) -> ShardRouter {
        ShardRouter {
            txs: self.shard_txs.clone(),
            gauges: self.queue_gauges.clone(),
            n_shards: self.n_shards,
            rr: 0,
            direct: self.obs.counter("ma.direct_routed"),
        }
    }

    /// An in-process client connection (enums over channels; no
    /// serialization, no traffic accounting).
    pub fn client(&self) -> MaClient {
        MaClient::new(Arc::new(InProcTransport::new(self.tx.clone())), Party::Jo)
    }

    /// A simulated-network client for `party`: every message is
    /// serialized into a wire envelope, subjected to the configured
    /// latency/jitter/drop, counted in the service's [`TrafficLog`]
    /// at its actual encoded size, and decoded on the far side.
    pub fn simnet_client(&self, party: Party, config: SimNetConfig) -> MaClient {
        self.chaos_client(party, FaultPlan::from(config))
    }

    /// A simulated-network client running a full chaos schedule
    /// (drops, duplicates, stale replays, corruption) with **no**
    /// retry layer — every fault surfaces to the caller.
    pub fn chaos_client(&self, party: Party, plan: FaultPlan) -> MaClient {
        MaClient::new(
            Arc::new(SimNetTransport::with_faults(
                self.tx.clone(),
                self.traffic.clone(),
                plan,
            )),
            party,
        )
    }

    /// A chaos client wrapped in the retry layer: faults are absorbed
    /// by idempotent retransmission under `policy`, reported into the
    /// service's [`FaultMetrics`].
    pub fn retrying_client(&self, party: Party, plan: FaultPlan, policy: RetryPolicy) -> MaClient {
        let inner = Arc::new(SimNetTransport::with_faults(
            self.tx.clone(),
            self.traffic.clone(),
            plan,
        ));
        MaClient::new(
            Arc::new(RetryingTransport::new(inner, policy, self.faults.clone())),
            party,
        )
    }

    /// Stops the service, drains the shards and joins the dispatcher.
    /// Returns how many held payments were never delivered.
    pub fn shutdown(mut self) -> usize {
        let client = self.client();
        let undelivered = match client.call(MaRequest::Shutdown) {
            MaResponse::Drained {
                undelivered_payments,
            } => undelivered_payments,
            _ => 0,
        };
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        undelivered
    }
}

impl Drop for MaService {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let (reply_tx, _reply_rx) = channel::bounded(1);
            let _ = self.tx.send(Inbound {
                key: None,
                span: SpanContext::NONE,
                request: MaRequest::Shutdown,
                reply: reply_tx,
            });
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::next_request_id;
    use ppms_crypto::cl::ClKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service(seed: u64) -> (MaService, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DecParams::fixture(2, 8);
        let svc = MaService::spawn(&mut rng, params, 512, 40);
        (svc, rng)
    }

    fn sharded_service(seed: u64, shards: usize) -> (MaService, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DecParams::fixture(2, 8);
        let svc = MaService::spawn_with_config(
            &mut rng,
            params,
            512,
            40,
            ServiceConfig {
                shards,
                queue_depth: 8,
                ..ServiceConfig::default()
            },
        );
        (svc, rng)
    }

    #[test]
    fn accounts_and_balances() {
        let (svc, mut rng) = service(1);
        let client = svc.client();
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!("account");
        };
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: jo }) else {
            panic!("balance");
        };
        assert_eq!(b, 50);
        svc.shutdown();
    }

    #[test]
    fn withdrawal_requires_valid_cl_auth() {
        let (svc, mut rng) = service(2);
        let client = svc.client();
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let other = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        // Wrong key: rejected.
        let bad_auth = other.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
        let resp = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth: bad_auth,
            blinded: BigUint::from(12345u64),
        });
        assert!(matches!(
            resp,
            MaResponse::Err(MarketError::BadAuthentication)
        ));
        // Right key: accepted, balance debited by 2^L = 4.
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &2u64.to_be_bytes());
        let resp = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 2,
            auth,
            blinded: BigUint::from(12345u64),
        });
        assert!(matches!(resp, MaResponse::BlindSignature(_)), "{resp:?}");
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: jo }) else {
            panic!()
        };
        assert_eq!(b, 46);
        svc.shutdown();
    }

    #[test]
    fn nonce_replay_rejected() {
        let (svc, mut rng) = service(3);
        let client = svc.client();
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &5u64.to_be_bytes());
        let ok = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 5,
            auth: auth.clone(),
            blinded: BigUint::one(),
        });
        assert!(matches!(ok, MaResponse::BlindSignature(_)));
        let replay = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 5,
            auth,
            blinded: BigUint::one(),
        });
        assert!(matches!(
            replay,
            MaResponse::Err(MarketError::BadAuthentication)
        ));
        svc.shutdown();
    }

    #[test]
    fn payment_held_until_data() {
        let (svc, _rng) = service(4);
        let client = svc.client();
        let sp_key = vec![9u8; 16];
        client.call(MaRequest::SubmitPayment {
            sp_pubkey: sp_key.clone(),
            ciphertext: vec![1, 2, 3],
        });
        // Before data: nothing delivered.
        let MaResponse::Payment(None) = client.call(MaRequest::FetchPayment {
            sp_pubkey: sp_key.clone(),
        }) else {
            panic!("payment must be held");
        };
        client.call(MaRequest::SubmitData {
            job_id: 0,
            sp_pubkey: sp_key.clone(),
            data: vec![7],
        });
        let MaResponse::Payment(Some(ct)) =
            client.call(MaRequest::FetchPayment { sp_pubkey: sp_key })
        else {
            panic!("payment must be released after data");
        };
        assert_eq!(ct, vec![1, 2, 3]);
        svc.shutdown();
    }

    #[test]
    fn undelivered_payment_reported_at_shutdown() {
        let (svc, _rng) = service(7);
        let client = svc.client();
        client.call(MaRequest::SubmitPayment {
            sp_pubkey: vec![5; 8],
            ciphertext: vec![1],
        });
        assert_eq!(svc.shutdown(), 1, "one payment was never fetched");
    }

    #[test]
    fn batch_deposit_credits_valid_subset() {
        let (svc, mut rng) = service(6);
        let client = svc.client();
        let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
            panic!()
        };

        // Craft spends directly against a parallel DecBank sharing the
        // service's parameters is impossible (keys differ), so go
        // through the service's own withdrawal path.
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        let mut coin = ppms_ecash::Coin::mint(&mut rng, &svc.params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
        let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth,
            blinded,
        }) else {
            panic!()
        };
        assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));

        // Batch: two disjoint leaves + one duplicate.
        let s1 = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(2, 0),
            b"",
        );
        let s2 = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(2, 1),
            b"",
        );
        let dup = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(2, 0),
            b"",
        );
        let MaResponse::BatchDeposited {
            total,
            accepted,
            rejected,
        } = client.call(MaRequest::DepositBatch {
            account: sp,
            spends: vec![s1, s2, dup],
        })
        else {
            panic!("batch response");
        };
        assert_eq!(total, 2, "two unit leaves at L = 2");
        assert_eq!(accepted, 2);
        assert_eq!(rejected, 1);
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: sp }) else {
            panic!()
        };
        assert_eq!(b, 2);
        svc.shutdown();
    }

    #[test]
    fn single_spend_deposits_as_batch_of_one() {
        let (svc, mut rng) = service(8);
        let client = svc.client();
        let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
            panic!()
        };
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        let mut coin = ppms_ecash::Coin::mint(&mut rng, &svc.params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
        let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth,
            blinded,
        }) else {
            panic!()
        };
        assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
        let s = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(1, 0),
            b"",
        );
        let MaResponse::BatchDeposited {
            total,
            accepted,
            rejected,
        } = client.call(MaRequest::DepositBatch {
            account: sp,
            spends: vec![s],
        })
        else {
            panic!("batch response");
        };
        assert_eq!((total, accepted, rejected), (2, 1, 0));
        svc.shutdown();
    }

    #[test]
    fn labor_registration_requires_job() {
        let (svc, _rng) = service(5);
        let client = svc.client();
        let resp = client.call(MaRequest::LaborRegister {
            job_id: 99,
            sp_pubkey: vec![1],
        });
        assert!(matches!(resp, MaResponse::Err(MarketError::NoSuchJob)));
        let MaResponse::JobId(id) = client.call(MaRequest::PublishJob {
            description: "d".into(),
            payment: 2,
            pseudonym: vec![2],
        }) else {
            panic!()
        };
        assert!(matches!(
            client.call(MaRequest::LaborRegister {
                job_id: id,
                sp_pubkey: vec![1]
            }),
            MaResponse::Ok
        ));
        let MaResponse::Labor(sps) = client.call(MaRequest::FetchLabor { job_id: id }) else {
            panic!()
        };
        assert_eq!(sps, vec![vec![1u8]]);
        svc.shutdown();
    }

    #[test]
    fn sharded_service_keeps_job_affinity() {
        // With 4 shards, labor registered for a job must be visible to
        // the fetch for the same job (both route by job_id).
        let (svc, _rng) = sharded_service(9, 4);
        let client = svc.client();
        let mut job_ids = Vec::new();
        for i in 0..6u64 {
            let MaResponse::JobId(id) = client.call(MaRequest::PublishJob {
                description: format!("job {i}"),
                payment: 1,
                pseudonym: vec![i as u8],
            }) else {
                panic!()
            };
            job_ids.push(id);
        }
        for &id in &job_ids {
            assert!(matches!(
                client.call(MaRequest::LaborRegister {
                    job_id: id,
                    sp_pubkey: vec![id as u8; 4],
                }),
                MaResponse::Ok
            ));
        }
        for &id in &job_ids {
            let MaResponse::Labor(sps) = client.call(MaRequest::FetchLabor { job_id: id }) else {
                panic!()
            };
            assert_eq!(sps, vec![vec![id as u8; 4]], "job {id}");
        }
        svc.shutdown();
    }

    #[test]
    fn calls_after_shutdown_degrade_gracefully() {
        let (svc, _rng) = service(10);
        let client = svc.client();
        svc.shutdown();
        let resp = client.call(MaRequest::RegisterSpAccount);
        assert!(
            matches!(resp, MaResponse::Err(MarketError::Transport(_))),
            "{resp:?}"
        );
        assert!(client.try_call(MaRequest::RegisterSpAccount).is_err());
    }

    #[test]
    fn retransmit_replays_cached_response() {
        let (svc, _rng) = service(11);
        let client = svc.client();
        let id = next_request_id();
        let MaResponse::Account(first) = client
            .try_call_keyed(id, MaRequest::RegisterSpAccount)
            .expect("first send")
        else {
            panic!("account");
        };
        // Same key again: the cached answer comes back — no second
        // account is opened.
        let MaResponse::Account(second) = client
            .try_call_keyed(id, MaRequest::RegisterSpAccount)
            .expect("retransmit")
        else {
            panic!("account");
        };
        assert_eq!(first, second);
        assert_eq!(svc.faults.dedup_replays(), 1);
        // A fresh key is a new logical request and opens a new account.
        let MaResponse::Account(third) = client
            .try_call_keyed(next_request_id(), MaRequest::RegisterSpAccount)
            .expect("fresh request")
        else {
            panic!("account");
        };
        assert_ne!(first, third);
        svc.shutdown();
    }

    #[test]
    fn dedup_cache_is_bounded_fifo() {
        let mk = |id| RequestKey {
            party: Party::Jo,
            request_id: id,
        };
        let mut cache = DedupCache::new(2);
        cache.insert(mk(1), MaResponse::Ok);
        cache.insert(mk(2), MaResponse::Ok);
        cache.insert(mk(3), MaResponse::Ok);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&mk(1)).is_none(), "oldest evicted");
        assert!(cache.get(&mk(2)).is_some());
        assert!(cache.get(&mk(3)).is_some());
        // Capacity 0 disables caching entirely.
        let mut off = DedupCache::new(0);
        off.insert(mk(1), MaResponse::Ok);
        assert!(off.get(&mk(1)).is_none());
    }

    #[test]
    fn crashed_shard_is_respawned_and_retry_succeeds() {
        let mut rng = StdRng::seed_from_u64(12);
        let params = DecParams::fixture(2, 8);
        let svc = MaService::spawn_with_config(
            &mut rng,
            params,
            512,
            40,
            ServiceConfig {
                crash: Some(CrashPoint {
                    shard: 0,
                    at_request: 2,
                }),
                ..ServiceConfig::default()
            },
        );
        let client = svc.client();
        let MaResponse::JobId(job) = client.call(MaRequest::PublishJob {
            description: "j".into(),
            payment: 1,
            pseudonym: vec![1],
        }) else {
            panic!("publish");
        };
        // Request #2 hits the crash point: journaled, never executed,
        // the worker dies, the reply channel hangs up.
        let id = next_request_id();
        let first = client.try_call_keyed(
            id,
            MaRequest::LaborRegister {
                job_id: job,
                sp_pubkey: vec![7],
            },
        );
        assert!(first.is_err(), "crash must surface as a transport error");
        // The retry (same key) lands on the respawned worker: the
        // orphan Begin was discarded, so this re-executes cleanly.
        let retry = client
            .try_call_keyed(
                id,
                MaRequest::LaborRegister {
                    job_id: job,
                    sp_pubkey: vec![7],
                },
            )
            .expect("retry after respawn");
        assert!(matches!(retry, MaResponse::Ok), "{retry:?}");
        assert_eq!(svc.faults.shard_respawns(), 1);
        assert_eq!(svc.faults.snapshot().wal_discarded, 1);
        // The pre-crash state survived the respawn via journal replay.
        let MaResponse::Labor(sps) = client.call(MaRequest::FetchLabor { job_id: job }) else {
            panic!("labor");
        };
        assert_eq!(sps, vec![vec![7u8]]);
        svc.shutdown();
    }

    use crate::storage::SimStorage;

    fn durable_service(
        seed: u64,
        config: ServiceConfig,
        durability: DurabilityConfig,
    ) -> (MaService, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DecParams::fixture(2, 8);
        let svc = MaService::spawn_durable(&mut rng, params, 512, 40, config, durability)
            .expect("durable spawn over fresh storage");
        (svc, rng)
    }

    #[test]
    fn durable_service_recovers_cold_from_log_alone() {
        let storage = Arc::new(SimStorage::new());
        let (svc, mut rng) = durable_service(
            40,
            ServiceConfig::default(),
            DurabilityConfig::new(storage.clone()),
        );
        let client = svc.client();
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
            panic!()
        };
        let mut coin = ppms_ecash::Coin::mint(&mut rng, &svc.params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
        let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth,
            blinded,
        }) else {
            panic!()
        };
        assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));
        let s1 = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(2, 0),
            b"",
        );
        let MaResponse::BatchDeposited { total, .. } = client.call(MaRequest::DepositBatch {
            account: sp,
            spends: vec![s1.clone()],
        }) else {
            panic!()
        };
        assert_eq!(total, 1);
        client.call(MaRequest::SubmitPayment {
            sp_pubkey: vec![9; 8],
            ciphertext: vec![1, 2, 3],
        });
        let before = svc.bank.snapshot();
        svc.shutdown();

        // Same seed → same keys (the sealed-key-file stand-in); no
        // checkpoint was ever taken, so this is recovery from the log
        // alone.
        let mut rng2 = StdRng::seed_from_u64(40);
        let (svc2, report) = MaService::recover(
            &mut rng2,
            DecParams::fixture(2, 8),
            512,
            40,
            ServiceConfig::default(),
            DurabilityConfig::new(storage),
        )
        .expect("recover");
        assert!(report.snapshot.is_none(), "no checkpoint was taken");
        assert!(report.replayed_records > 0);
        assert_eq!(report.discarded_inflight, 0, "clean shutdown");
        assert_eq!(svc2.bank.snapshot(), before, "ledger restored exactly");
        let client2 = svc2.client();
        // DEC double-spend state survived: the deposited spend under a
        // fresh request key is a double-spend, not a credit.
        let MaResponse::BatchDeposited {
            total,
            accepted,
            rejected,
        } = client2.call(MaRequest::DepositBatch {
            account: sp,
            spends: vec![s1],
        })
        else {
            panic!()
        };
        assert_eq!((total, accepted, rejected), (0, 0, 1));
        // The per-shard nonce high-water mark survived: the old nonce
        // is refused even under a valid signature.
        let auth2 = cl.sign_bytes(&mut rng2, &svc2.pairing, &1u64.to_be_bytes());
        let resp = client2.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth: auth2,
            blinded: BigUint::one(),
        });
        assert!(matches!(
            resp,
            MaResponse::Err(MarketError::BadAuthentication)
        ));
        // And the held (never fetched) payment is still held.
        assert_eq!(svc2.shutdown(), 1);
    }

    #[test]
    fn checkpoint_compacts_log_and_bounds_recovery_replay() {
        let storage = Arc::new(SimStorage::new());
        let mut durability = DurabilityConfig::new(storage.clone());
        // Tiny segments so the pre-checkpoint history spans several
        // files and compaction has something to drop.
        durability.segment_bytes = 256;
        let (svc, _rng) = durable_service(41, ServiceConfig::default(), durability.clone());
        let client = svc.client();
        for i in 0..6u8 {
            client.call(MaRequest::SubmitPayment {
                sp_pubkey: vec![i; 8],
                ciphertext: vec![i; 40],
            });
        }
        let covered = svc.checkpoint().expect("checkpoint");
        assert_eq!(covered, 12, "six requests journal twelve records");
        assert_eq!(svc.faults.wal_snapshots(), 1);
        assert!(svc.faults.wal_compactions() >= 1, "segments were dropped");
        // One more request after the checkpoint: the only tail.
        client.call(MaRequest::SubmitData {
            job_id: 0,
            sp_pubkey: vec![0; 8],
            data: vec![1],
        });
        let before = svc.bank.snapshot();
        svc.shutdown();

        let mut rng2 = StdRng::seed_from_u64(41);
        let (svc2, report) = MaService::recover(
            &mut rng2,
            DecParams::fixture(2, 8),
            512,
            40,
            ServiceConfig::default(),
            durability,
        )
        .expect("recover");
        assert_eq!(report.snapshot_lsn, covered);
        assert!(report.snapshot.is_some());
        // The compaction guarantee: recovery replays only the records
        // written since the snapshot, however long the prior history.
        assert_eq!(report.replayed_records, 2);
        assert_eq!(svc2.bank.snapshot(), before);
        // Payment 0's data arrived post-checkpoint, so its payment is
        // deliverable; the other five stay held.
        let client2 = svc2.client();
        let MaResponse::Payment(Some(ct)) = client2.call(MaRequest::FetchPayment {
            sp_pubkey: vec![0; 8],
        }) else {
            panic!("post-checkpoint SubmitData must survive recovery");
        };
        assert_eq!(ct, vec![0; 40]);
        assert_eq!(svc2.shutdown(), 5);
    }

    #[test]
    fn recovery_under_different_shard_count_is_refused() {
        let storage = Arc::new(SimStorage::new());
        let sharded = ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        };
        let (svc, _rng) = durable_service(42, sharded, DurabilityConfig::new(storage.clone()));
        svc.client().call(MaRequest::SubmitPayment {
            sp_pubkey: vec![1; 8],
            ciphertext: vec![2],
        });
        svc.checkpoint().expect("checkpoint");
        svc.shutdown();

        let mut rng2 = StdRng::seed_from_u64(42);
        let err = match MaService::recover(
            &mut rng2,
            DecParams::fixture(2, 8),
            512,
            40,
            ServiceConfig::default(),
            DurabilityConfig::new(storage),
        ) {
            Ok(_) => panic!("shard counts must match the snapshot"),
            Err(e) => e,
        };
        assert!(
            matches!(
                err,
                StorageError::ShardMismatch {
                    snapshot: 2,
                    config: 1
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn checkpoint_without_durable_tier_errors() {
        let (svc, _rng) = service(43);
        let err = svc.checkpoint().expect_err("in-memory service");
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
        svc.shutdown();
    }
}
