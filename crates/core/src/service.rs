//! The market administrator as a **message-passing service** — the
//! paper's Fig. 1 system model made concrete: JOs and SPs are
//! independent threads that talk to the MA exclusively through
//! channels, and the MA enforces the protocol rules (publish, forward,
//! hold payments until data arrives, verify deposits).
//!
//! This is the concurrent twin of [`crate::ppmsdec::DecMarket`]'s
//! single-threaded driver; the integration tests run both and expect
//! the same ledger outcomes.

use crate::bank::{AccountId, Bank};
use crate::bulletin::Bulletin;
use crate::error::MarketError;
use crate::metrics::Party;
use crate::transport::TrafficLog;
use crossbeam::channel::{self, Receiver, Sender};
use ppms_bigint::BigUint;
use ppms_crypto::cl::{ClPublicKey, ClSignature};
use ppms_crypto::pairing::TypeAPairing;
use ppms_ecash::{DecBank, DecParams, Spend};
use std::collections::HashMap;
use std::thread::JoinHandle;

/// A request to the market administrator.
pub enum MaRequest {
    /// Open a JO account with initial funds, binding a CL public key.
    RegisterJoAccount {
        /// Initial balance.
        funds: u64,
        /// Account-bound CL key for withdrawal authentication.
        clpk: ClPublicKey,
    },
    /// Open an (empty) SP account.
    RegisterSpAccount,
    /// Publish a job profile (phase 1).
    PublishJob {
        /// Job description `jd`.
        description: String,
        /// Per-SP payment `w`.
        payment: u64,
        /// The JO's pseudonymous key bytes.
        pseudonym: Vec<u8>,
    },
    /// CL-authenticated withdrawal: debit `2^L`, sign the blinded coin
    /// token (phase 2).
    Withdraw {
        /// The withdrawing account.
        account: AccountId,
        /// Fresh nonce, CL-signed below.
        nonce: u64,
        /// CL signature on the nonce under the account-bound key.
        auth: ClSignature,
        /// Blinded coin token for the bank to sign.
        blinded: BigUint,
    },
    /// SP announces interest in a job (phase 4); MA forwards to the JO.
    LaborRegister {
        /// Target job.
        job_id: u64,
        /// The SP's one-time public key bytes.
        sp_pubkey: Vec<u8>,
    },
    /// JO polls the SPs registered for its job.
    FetchLabor {
        /// The job.
        job_id: u64,
    },
    /// JO submits the encrypted payment for an SP (phase 5); the MA
    /// holds it until that SP's data report arrives (phase 7 rule).
    SubmitPayment {
        /// Receiver's one-time key bytes.
        sp_pubkey: Vec<u8>,
        /// `RSA_ENC_rpksp(E(w_1)…, sig)`.
        ciphertext: Vec<u8>,
    },
    /// SP submits its data report (phase 6).
    SubmitData {
        /// The job the data belongs to.
        job_id: u64,
        /// The submitting SP's one-time key bytes.
        sp_pubkey: Vec<u8>,
        /// The sensing data.
        data: Vec<u8>,
    },
    /// SP polls for its payment; delivered only after its data arrived.
    FetchPayment {
        /// The SP's one-time key bytes.
        sp_pubkey: Vec<u8>,
    },
    /// JO polls the data reports for its job.
    FetchData {
        /// The job.
        job_id: u64,
    },
    /// SP deposits one spend under its account id (phase 8).
    Deposit {
        /// The depositing account (`AID_sp`).
        account: AccountId,
        /// The spend.
        spend: Box<Spend>,
    },
    /// SP deposits a whole bundle at once; the bank verifies the batch
    /// rayon-parallel and credits the valid subset.
    DepositBatch {
        /// The depositing account (`AID_sp`).
        account: AccountId,
        /// The spends.
        spends: Vec<Spend>,
    },
    /// Read a balance.
    Balance {
        /// The account.
        account: AccountId,
    },
    /// Stop the service loop.
    Shutdown,
}

/// The MA's answer.
#[derive(Debug)]
pub enum MaResponse {
    /// A fresh account id.
    Account(AccountId),
    /// A bulletin-board job id.
    JobId(u64),
    /// The bank's signature on a blinded token.
    BlindSignature(BigUint),
    /// Generic success.
    Ok,
    /// Registered SP keys for a job.
    Labor(Vec<Vec<u8>>),
    /// A held payment ciphertext, if deliverable.
    Payment(Option<Vec<u8>>),
    /// Data reports for a job.
    Data(Vec<Vec<u8>>),
    /// Value credited by a deposit.
    Deposited(u64),
    /// Per-item outcome of a batch deposit plus the credited total.
    BatchDeposited {
        /// Total value credited.
        total: u64,
        /// How many items were accepted.
        accepted: usize,
        /// How many items were rejected.
        rejected: usize,
    },
    /// An account balance.
    Balance(u64),
    /// A rejection.
    Err(MarketError),
}

/// One request plus its reply channel.
pub struct Envelope {
    /// The request.
    pub request: MaRequest,
    /// Where the MA sends the response.
    pub reply: Sender<MaResponse>,
}

/// Handle to a running MA service thread.
pub struct MaService {
    tx: Sender<Envelope>,
    handle: Option<JoinHandle<()>>,
    /// Shared bulletin board (read-only access for clients).
    pub bulletin: Bulletin,
    /// Shared traffic log.
    pub traffic: TrafficLog,
    /// The DEC public parameters (clients need them to mint/spend).
    pub params: DecParams,
    /// The bank's public blind-signing key.
    pub bank_pk: ppms_crypto::rsa::RsaPublicKey,
    /// The pairing parameters (for CL keys).
    pub pairing: TypeAPairing,
}

/// A client-side connection to the MA.
#[derive(Clone)]
pub struct MaClient {
    tx: Sender<Envelope>,
}

impl MaClient {
    /// Sends a request and waits for the answer.
    pub fn call(&self, request: MaRequest) -> MaResponse {
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx
            .send(Envelope {
                request,
                reply: reply_tx,
            })
            .expect("MA service alive");
        reply_rx.recv().expect("MA service replies")
    }
}

struct MaState {
    bank: Bank,
    bulletin: Bulletin,
    dec_bank: DecBank,
    pairing: TypeAPairing,
    traffic: TrafficLog,
    cl_bindings: HashMap<AccountId, ClPublicKey>,
    used_nonces: HashMap<AccountId, u64>,
    labor: HashMap<u64, Vec<Vec<u8>>>,
    pending_payments: HashMap<Vec<u8>, Vec<u8>>,
    data_reports: HashMap<u64, Vec<Vec<u8>>>,
    data_received: HashMap<Vec<u8>, bool>,
}

impl MaState {
    fn handle(&mut self, request: MaRequest) -> Option<MaResponse> {
        use MaRequest::*;
        Some(match request {
            RegisterJoAccount { funds, clpk } => {
                let account = self.bank.open_account(funds);
                self.cl_bindings.insert(account, clpk);
                MaResponse::Account(account)
            }
            RegisterSpAccount => MaResponse::Account(self.bank.open_account(0)),
            PublishJob {
                description,
                payment,
                pseudonym,
            } => {
                self.traffic.record(
                    Party::Jo,
                    Party::Ma,
                    "job-registration",
                    description.len() + 8 + pseudonym.len(),
                );
                MaResponse::JobId(self.bulletin.publish(description, payment, pseudonym))
            }
            Withdraw {
                account,
                nonce,
                auth,
                blinded,
            } => {
                let Some(bound) = self.cl_bindings.get(&account) else {
                    return Some(MaResponse::Err(MarketError::NoSuchAccount));
                };
                // Nonce freshness prevents replaying an old withdrawal
                // authorization.
                let last = self.used_nonces.entry(account).or_insert(0);
                if nonce <= *last {
                    return Some(MaResponse::Err(MarketError::BadAuthentication));
                }
                if !auth.verify_bytes(&self.pairing, bound, &nonce.to_be_bytes()) {
                    return Some(MaResponse::Err(MarketError::BadAuthentication));
                }
                *last = nonce;
                if let Err(e) = self
                    .bank
                    .debit(account, self.dec_bank.params().face_value())
                {
                    return Some(MaResponse::Err(e));
                }
                self.traffic.record(
                    Party::Jo,
                    Party::Ma,
                    "withdrawal-request",
                    blinded.bits().div_ceil(8),
                );
                let sig = self.dec_bank.sign_blinded(&blinded);
                self.traffic
                    .record(Party::Ma, Party::Jo, "e-cash", sig.bits().div_ceil(8));
                MaResponse::BlindSignature(sig)
            }
            LaborRegister { job_id, sp_pubkey } => {
                if self.bulletin.get(job_id).is_none() {
                    return Some(MaResponse::Err(MarketError::NoSuchJob));
                }
                self.traffic
                    .record(Party::Sp, Party::Ma, "labor-registration", sp_pubkey.len());
                self.labor.entry(job_id).or_default().push(sp_pubkey);
                MaResponse::Ok
            }
            FetchLabor { job_id } => {
                let sps = self.labor.get(&job_id).cloned().unwrap_or_default();
                for pk in &sps {
                    self.traffic
                        .record(Party::Ma, Party::Jo, "labor-forward", pk.len());
                }
                MaResponse::Labor(sps)
            }
            SubmitPayment {
                sp_pubkey,
                ciphertext,
            } => {
                self.traffic.record(
                    Party::Jo,
                    Party::Ma,
                    "payment-submission",
                    ciphertext.len() + sp_pubkey.len(),
                );
                self.pending_payments.insert(sp_pubkey, ciphertext);
                MaResponse::Ok
            }
            SubmitData {
                job_id,
                sp_pubkey,
                data,
            } => {
                self.traffic
                    .record(Party::Sp, Party::Ma, "data-report", data.len());
                self.data_reports.entry(job_id).or_default().push(data);
                self.data_received.insert(sp_pubkey, true);
                MaResponse::Ok
            }
            FetchPayment { sp_pubkey } => {
                // Paper phase 7: deliver only once the SP's data is in.
                if !self.data_received.get(&sp_pubkey).copied().unwrap_or(false) {
                    return Some(MaResponse::Payment(None));
                }
                let ct = self.pending_payments.remove(&sp_pubkey);
                if let Some(ct) = &ct {
                    self.traffic
                        .record(Party::Ma, Party::Sp, "payment-delivery", ct.len());
                }
                MaResponse::Payment(ct)
            }
            FetchData { job_id } => {
                let reports = self.data_reports.remove(&job_id).unwrap_or_default();
                for d in &reports {
                    self.traffic
                        .record(Party::Ma, Party::Jo, "data-delivery", d.len());
                }
                MaResponse::Data(reports)
            }
            Deposit { account, spend } => {
                self.traffic
                    .record(Party::Sp, Party::Ma, "deposit", spend.to_bytes().len() + 8);
                match self.dec_bank.deposit(&spend, b"") {
                    Ok(value) => match self.bank.credit(account, value) {
                        Ok(()) => MaResponse::Deposited(value),
                        Err(e) => MaResponse::Err(e),
                    },
                    Err(e) => MaResponse::Err(MarketError::Dec(e)),
                }
            }
            DepositBatch { account, spends } => {
                for s in &spends {
                    self.traffic
                        .record(Party::Sp, Party::Ma, "deposit", s.to_bytes().len() + 8);
                }
                let results = self.dec_bank.deposit_batch(&spends, b"");
                let mut total = 0u64;
                let mut accepted = 0usize;
                for v in results.iter().flatten() {
                    total += v;
                    accepted += 1;
                }
                if total > 0 {
                    if let Err(e) = self.bank.credit(account, total) {
                        return Some(MaResponse::Err(e));
                    }
                }
                MaResponse::BatchDeposited {
                    total,
                    accepted,
                    rejected: results.len() - accepted,
                }
            }
            Balance { account } => match self.bank.balance(account) {
                Ok(v) => MaResponse::Balance(v),
                Err(e) => MaResponse::Err(e),
            },
            Shutdown => return None,
        })
    }
}

impl MaService {
    /// Spawns the MA service thread.
    pub fn spawn<R: rand::Rng + ?Sized>(
        rng: &mut R,
        params: DecParams,
        rsa_bits: usize,
        pairing_bits: usize,
    ) -> MaService {
        // Build the fixed-base window tables once, up front: the
        // service thread and every client clone of `params` share the
        // per-ring caches, so nobody pays the lazy first-use build.
        params.precompute();
        let dec_bank = DecBank::new(rng, params.clone(), rsa_bits);
        let bank_pk = dec_bank.public_key().clone();
        let pairing = TypeAPairing::generate(rng, pairing_bits);
        let bulletin = Bulletin::new();
        let traffic = TrafficLog::new();

        let mut state = MaState {
            bank: Bank::new(),
            bulletin: bulletin.clone(),
            dec_bank,
            pairing: pairing.clone(),
            traffic: traffic.clone(),
            cl_bindings: HashMap::new(),
            used_nonces: HashMap::new(),
            labor: HashMap::new(),
            pending_payments: HashMap::new(),
            data_reports: HashMap::new(),
            data_received: HashMap::new(),
        };

        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = channel::unbounded();
        let handle = std::thread::spawn(move || {
            while let Ok(Envelope { request, reply }) = rx.recv() {
                match state.handle(request) {
                    Some(response) => {
                        let _ = reply.send(response);
                    }
                    None => {
                        let _ = reply.send(MaResponse::Ok);
                        break;
                    }
                }
            }
        });

        MaService {
            tx,
            handle: Some(handle),
            bulletin,
            traffic,
            params,
            bank_pk,
            pairing,
        }
    }

    /// A client connection for a new party thread.
    pub fn client(&self) -> MaClient {
        MaClient {
            tx: self.tx.clone(),
        }
    }

    /// Stops the service and joins the thread.
    pub fn shutdown(mut self) {
        let client = self.client();
        let _ = client.call(MaRequest::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MaService {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let (reply_tx, _reply_rx) = channel::bounded(1);
            let _ = self.tx.send(Envelope {
                request: MaRequest::Shutdown,
                reply: reply_tx,
            });
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppms_crypto::cl::ClKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service(seed: u64) -> (MaService, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = DecParams::fixture(2, 8);
        let svc = MaService::spawn(&mut rng, params, 512, 40);
        (svc, rng)
    }

    #[test]
    fn accounts_and_balances() {
        let (svc, mut rng) = service(1);
        let client = svc.client();
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!("account");
        };
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: jo }) else {
            panic!("balance");
        };
        assert_eq!(b, 50);
        svc.shutdown();
    }

    #[test]
    fn withdrawal_requires_valid_cl_auth() {
        let (svc, mut rng) = service(2);
        let client = svc.client();
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let other = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        // Wrong key: rejected.
        let bad_auth = other.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
        let resp = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth: bad_auth,
            blinded: BigUint::from(12345u64),
        });
        assert!(matches!(
            resp,
            MaResponse::Err(MarketError::BadAuthentication)
        ));
        // Right key: accepted, balance debited by 2^L = 4.
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &2u64.to_be_bytes());
        let resp = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 2,
            auth,
            blinded: BigUint::from(12345u64),
        });
        assert!(matches!(resp, MaResponse::BlindSignature(_)), "{resp:?}");
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: jo }) else {
            panic!()
        };
        assert_eq!(b, 46);
        svc.shutdown();
    }

    #[test]
    fn nonce_replay_rejected() {
        let (svc, mut rng) = service(3);
        let client = svc.client();
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &5u64.to_be_bytes());
        let ok = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 5,
            auth: auth.clone(),
            blinded: BigUint::one(),
        });
        assert!(matches!(ok, MaResponse::BlindSignature(_)));
        let replay = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 5,
            auth,
            blinded: BigUint::one(),
        });
        assert!(matches!(
            replay,
            MaResponse::Err(MarketError::BadAuthentication)
        ));
        svc.shutdown();
    }

    #[test]
    fn payment_held_until_data() {
        let (svc, _rng) = service(4);
        let client = svc.client();
        let sp_key = vec![9u8; 16];
        client.call(MaRequest::SubmitPayment {
            sp_pubkey: sp_key.clone(),
            ciphertext: vec![1, 2, 3],
        });
        // Before data: nothing delivered.
        let MaResponse::Payment(None) = client.call(MaRequest::FetchPayment {
            sp_pubkey: sp_key.clone(),
        }) else {
            panic!("payment must be held");
        };
        client.call(MaRequest::SubmitData {
            job_id: 0,
            sp_pubkey: sp_key.clone(),
            data: vec![7],
        });
        let MaResponse::Payment(Some(ct)) =
            client.call(MaRequest::FetchPayment { sp_pubkey: sp_key })
        else {
            panic!("payment must be released after data");
        };
        assert_eq!(ct, vec![1, 2, 3]);
        svc.shutdown();
    }

    #[test]
    fn batch_deposit_credits_valid_subset() {
        let (svc, mut rng) = service(6);
        let client = svc.client();
        let MaResponse::Account(sp) = client.call(MaRequest::RegisterSpAccount) else {
            panic!()
        };

        // Craft spends directly against a parallel DecBank sharing the
        // service's parameters is impossible (keys differ), so go
        // through the service's own withdrawal path.
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let MaResponse::Account(jo) = client.call(MaRequest::RegisterJoAccount {
            funds: 50,
            clpk: cl.public.clone(),
        }) else {
            panic!()
        };
        let mut coin = ppms_ecash::Coin::mint(&mut rng, &svc.params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &1u64.to_be_bytes());
        let MaResponse::BlindSignature(sig) = client.call(MaRequest::Withdraw {
            account: jo,
            nonce: 1,
            auth,
            blinded,
        }) else {
            panic!()
        };
        assert!(coin.attach_signature(&svc.bank_pk, &sig, &factor));

        // Batch: two disjoint leaves + one duplicate.
        let s1 = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(2, 0),
            b"",
        );
        let s2 = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(2, 1),
            b"",
        );
        let dup = coin.spend(
            &mut rng,
            &svc.params,
            &ppms_ecash::NodePath::from_index(2, 0),
            b"",
        );
        let MaResponse::BatchDeposited {
            total,
            accepted,
            rejected,
        } = client.call(MaRequest::DepositBatch {
            account: sp,
            spends: vec![s1, s2, dup],
        })
        else {
            panic!("batch response");
        };
        assert_eq!(total, 2, "two unit leaves at L = 2");
        assert_eq!(accepted, 2);
        assert_eq!(rejected, 1);
        let MaResponse::Balance(b) = client.call(MaRequest::Balance { account: sp }) else {
            panic!()
        };
        assert_eq!(b, 2);
        svc.shutdown();
    }

    #[test]
    fn labor_registration_requires_job() {
        let (svc, _rng) = service(5);
        let client = svc.client();
        let resp = client.call(MaRequest::LaborRegister {
            job_id: 99,
            sp_pubkey: vec![1],
        });
        assert!(matches!(resp, MaResponse::Err(MarketError::NoSuchJob)));
        let MaResponse::JobId(id) = client.call(MaRequest::PublishJob {
            description: "d".into(),
            payment: 2,
            pseudonym: vec![2],
        }) else {
            panic!()
        };
        assert!(matches!(
            client.call(MaRequest::LaborRegister {
                job_id: id,
                sp_pubkey: vec![1]
            }),
            MaResponse::Ok
        ));
        let MaResponse::Labor(sps) = client.call(MaRequest::FetchLabor { job_id: id }) else {
            panic!()
        };
        assert_eq!(sps, vec![vec![1u8]]);
        svc.shutdown();
    }
}
