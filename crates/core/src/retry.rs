//! The client-side half of surviving a lossy market: a [`Transport`]
//! decorator that retransmits failed requests under their original
//! idempotency key.
//!
//! [`RetryingTransport`] wraps any inner transport and adds, per
//! [`RetryPolicy`]:
//!
//! * an **attempt budget** — at most `max_attempts` sends of one
//!   logical request;
//! * an **overall deadline** — once it expires the call fails with
//!   [`MarketError::Timeout`] instead of burning more attempts;
//! * **capped exponential backoff with seeded jitter** between
//!   attempts — `base_delay · 2^(attempt-1)` clamped to `max_delay`,
//!   plus a uniformly random extra in `[0, backoff/2]` drawn from a
//!   deterministic RNG so runs are reproducible;
//! * a **circuit breaker** — after `breaker_threshold` consecutive
//!   transport-level call failures the destination is declared down
//!   and calls fail fast with [`MarketError::CircuitOpen`] for
//!   `breaker_cooldown`; the first call after the cooldown is the
//!   half-open probe whose outcome re-closes or re-opens the circuit.
//!
//! Only failures where [`MarketError::is_retryable`] holds are
//! retried. A definitive protocol answer (double-spend rejected, bad
//! authentication…) is the MA's verdict, not a network accident:
//! retrying it would re-ask a question already answered.
//!
//! Crucially, every attempt of one logical request reuses **one**
//! request id, allocated once per call. The service's idempotency
//! cache recognizes the retransmit and replays the original response,
//! which is what makes blind retransmission of non-idempotent
//! operations (withdraw, deposit) safe.

use crate::error::MarketError;
use crate::metrics::{FaultMetrics, Party};
use crate::service::{MaRequest, MaResponse};
use crate::transport::{next_trace_id, Transport};
use parking_lot::Mutex;
use ppms_obs::{Counter, Gauge, Histogram, Span, SpanContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry and circuit-breaker knobs.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum sends of one logical request (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the exponential backoff.
    pub max_delay: Duration,
    /// Overall wall-clock budget for one logical request, retries and
    /// backoff included.
    pub deadline: Duration,
    /// Seed for the jitter RNG (deterministic backoff schedules).
    pub jitter_seed: u64,
    /// Consecutive call failures that open the circuit.
    pub breaker_threshold: u32,
    /// How long an open circuit rejects calls before the half-open
    /// probe is allowed through.
    pub breaker_cooldown: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(5),
            jitter_seed: 0,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy for chaos runs: enough attempts that even heavy loss
    /// (≤ 0.3 per hop, so ≈ 0.5 per round trip) practically never
    /// exhausts the budget, sub-millisecond backoffs to keep tests
    /// fast, and a breaker that effectively never opens — in a
    /// convergence test a fast-fail would abort the market, and the
    /// breaker's own behavior is unit-tested separately.
    pub fn aggressive(jitter_seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 24,
            base_delay: Duration::from_micros(20),
            max_delay: Duration::from_millis(2),
            deadline: Duration::from_secs(30),
            jitter_seed,
            breaker_threshold: u32::MAX,
            breaker_cooldown: Duration::from_millis(1),
        }
    }
}

/// Circuit state. The MA is the only destination a client talks to,
/// so one breaker per transport *is* per-destination.
#[derive(Debug)]
enum Circuit {
    /// Traffic flows; counts consecutive call failures.
    Closed {
        /// Consecutive failed calls so far.
        failures: u32,
    },
    /// Fast-failing until the cooldown ends.
    Open {
        /// When the half-open probe becomes permissible.
        until: Instant,
    },
    /// One probe call is in flight; its outcome decides the state.
    HalfOpen,
}

/// A [`Transport`] decorator adding idempotent retries, deadlines and
/// a circuit breaker. See the module docs for the full contract.
pub struct RetryingTransport {
    inner: Arc<dyn Transport>,
    policy: RetryPolicy,
    metrics: FaultMetrics,
    jitter: Mutex<StdRng>,
    circuit: Mutex<Circuit>,
    /// Individual sends, first tries included (`retry.attempts` in the
    /// fault registry; `fault.calls` counts logical calls instead).
    attempts: Arc<Counter>,
    /// Nanoseconds slept in backoff, per retry (`retry.backoff_ns`).
    backoff_ns: Arc<Histogram>,
    /// Breaker state as a number: 0 closed, 1 open, 2 half-open
    /// (`retry.circuit_state`).
    circuit_state: Arc<Gauge>,
}

/// [`RetryingTransport::circuit_state`] values.
const CIRCUIT_CLOSED: i64 = 0;
const CIRCUIT_OPEN: i64 = 1;
const CIRCUIT_HALF_OPEN: i64 = 2;

impl RetryingTransport {
    /// Wraps `inner`, reporting retry activity into `metrics` (and its
    /// registry: attempt counts, backoff sleeps, breaker state).
    pub fn new(
        inner: Arc<dyn Transport>,
        policy: RetryPolicy,
        metrics: FaultMetrics,
    ) -> RetryingTransport {
        let registry = metrics.registry().clone();
        RetryingTransport {
            inner,
            policy,
            metrics,
            jitter: Mutex::new(StdRng::seed_from_u64(policy.jitter_seed)),
            circuit: Mutex::new(Circuit::Closed { failures: 0 }),
            attempts: registry.counter("retry.attempts"),
            backoff_ns: registry.histogram("retry.backoff_ns"),
            circuit_state: registry.gauge("retry.circuit_state"),
        }
    }

    /// Gate on the breaker: `Err` fast-fails the call; `Ok` admits it
    /// (transitioning Open → HalfOpen when the cooldown has passed).
    fn admit(&self) -> Result<(), MarketError> {
        let mut circuit = self.circuit.lock();
        match *circuit {
            Circuit::Closed { .. } => Ok(()),
            Circuit::HalfOpen => {
                // A probe is already in flight; don't pile on.
                self.metrics.circuit_rejection();
                Err(MarketError::CircuitOpen)
            }
            Circuit::Open { until } => {
                if Instant::now() < until {
                    self.metrics.circuit_rejection();
                    Err(MarketError::CircuitOpen)
                } else {
                    *circuit = Circuit::HalfOpen;
                    self.circuit_state.set(CIRCUIT_HALF_OPEN);
                    Ok(())
                }
            }
        }
    }

    /// Records the final outcome of an admitted call.
    fn settle(&self, success: bool) {
        let mut circuit = self.circuit.lock();
        if success {
            *circuit = Circuit::Closed { failures: 0 };
            self.circuit_state.set(CIRCUIT_CLOSED);
            return;
        }
        let failures = match *circuit {
            Circuit::Closed { failures } => failures + 1,
            // A failed probe re-opens immediately.
            Circuit::HalfOpen | Circuit::Open { .. } => self.policy.breaker_threshold,
        };
        *circuit = if failures >= self.policy.breaker_threshold {
            self.circuit_state.set(CIRCUIT_OPEN);
            Circuit::Open {
                until: Instant::now() + self.policy.breaker_cooldown,
            }
        } else {
            self.circuit_state.set(CIRCUIT_CLOSED);
            Circuit::Closed { failures }
        };
    }

    /// Backoff before retry number `attempt` (1-based): capped
    /// exponential plus seeded jitter in `[0, backoff/2]`.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.policy.base_delay.as_micros() as u64;
        let capped = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.policy.max_delay.as_micros() as u64);
        let jitter = if capped > 1 {
            self.jitter.lock().random_range(0..=capped / 2)
        } else {
            0
        };
        Duration::from_micros(capped + jitter)
    }
}

impl Transport for RetryingTransport {
    fn round_trip_keyed(
        &self,
        from: Party,
        request_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        // One trace id per *logical* call, minted here so every
        // attempt below shares it.
        self.round_trip_traced(from, request_id, next_trace_id(), request)
    }

    fn round_trip_traced(
        &self,
        from: Party,
        request_id: u64,
        trace_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_spanned(from, request_id, SpanContext::from_trace(trace_id), request)
    }

    fn round_trip_spanned(
        &self,
        from: Party,
        request_id: u64,
        ctx: SpanContext,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.metrics.call();
        self.admit()?;
        let started = Instant::now();
        let mut attempt = 1u32;
        loop {
            // Every attempt reuses `request_id` and the *trace* id:
            // the service sees a retransmit, not a new request, and
            // the whole logical operation stays on one trace. Each
            // attempt gets its own child span, so an exported trace
            // shows every retransmit as a sibling under the caller.
            self.attempts.inc();
            let attempt_span = Span::child("retry.attempt", ctx);
            match self.inner.round_trip_spanned(
                from,
                request_id,
                attempt_span.ctx(),
                request.clone(),
            ) {
                Ok(response) => {
                    self.settle(true);
                    return Ok(response);
                }
                Err(e) if !e.is_retryable() => {
                    // A definitive protocol answer — the MA spoke, the
                    // network worked. Not a breaker event.
                    self.settle(true);
                    return Err(e);
                }
                Err(e) => {
                    if attempt >= self.policy.max_attempts {
                        self.metrics.exhausted();
                        self.settle(false);
                        return Err(e);
                    }
                    let delay = self.backoff(attempt);
                    if started.elapsed() + delay >= self.policy.deadline {
                        self.metrics.timeout();
                        self.settle(false);
                        return Err(MarketError::Timeout);
                    }
                    self.metrics.retry();
                    self.backoff_ns.record(delay.as_nanos() as u64);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Fails the first `fail_first` calls with a retryable error,
    /// then succeeds; records every request id it sees.
    struct FlakyTransport {
        fail_first: u32,
        calls: AtomicU32,
        seen_ids: Mutex<Vec<u64>>,
    }

    impl FlakyTransport {
        fn new(fail_first: u32) -> FlakyTransport {
            FlakyTransport {
                fail_first,
                calls: AtomicU32::new(0),
                seen_ids: Mutex::new(Vec::new()),
            }
        }
    }

    impl Transport for FlakyTransport {
        fn round_trip_keyed(
            &self,
            _from: Party,
            request_id: u64,
            _request: MaRequest,
        ) -> Result<MaResponse, MarketError> {
            self.seen_ids.lock().push(request_id);
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(MarketError::Transport("flaky".into()))
            } else {
                Ok(MaResponse::Ok)
            }
        }
    }

    /// Always answers with a fixed error.
    struct FixedErrTransport(fn() -> MarketError);

    impl Transport for FixedErrTransport {
        fn round_trip_keyed(
            &self,
            _from: Party,
            _request_id: u64,
            _request: MaRequest,
        ) -> Result<MaResponse, MarketError> {
            Err((self.0)())
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(100),
            deadline: Duration::from_secs(1),
            jitter_seed: 7,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(5),
        }
    }

    #[test]
    fn retries_reuse_the_same_request_id() {
        let flaky = Arc::new(FlakyTransport::new(2));
        let metrics = FaultMetrics::new();
        let t = RetryingTransport::new(flaky.clone(), fast_policy(), metrics.clone());
        let resp = t
            .round_trip_keyed(Party::Sp, 42, MaRequest::RegisterSpAccount)
            .expect("succeeds on third attempt");
        assert!(matches!(resp, MaResponse::Ok));
        assert_eq!(*flaky.seen_ids.lock(), vec![42, 42, 42]);
        let snap = metrics.snapshot();
        assert_eq!(snap.calls, 1);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.exhausted, 0);
    }

    #[test]
    fn attempt_budget_is_enforced() {
        let flaky = Arc::new(FlakyTransport::new(u32::MAX));
        let metrics = FaultMetrics::new();
        let t = RetryingTransport::new(
            flaky.clone(),
            RetryPolicy {
                breaker_threshold: u32::MAX,
                ..fast_policy()
            },
            metrics.clone(),
        );
        let err = t
            .round_trip_keyed(Party::Sp, 1, MaRequest::RegisterSpAccount)
            .expect_err("must exhaust");
        assert!(err.is_retryable(), "the last transport error surfaces");
        assert_eq!(flaky.seen_ids.lock().len(), 5, "max_attempts sends");
        assert_eq!(metrics.snapshot().exhausted, 1);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let t = RetryingTransport::new(
            Arc::new(FixedErrTransport(|| MarketError::NoSuchAccount)),
            fast_policy(),
            FaultMetrics::new(),
        );
        let err = t
            .round_trip_keyed(Party::Jo, 1, MaRequest::RegisterSpAccount)
            .expect_err("fatal");
        assert!(matches!(err, MarketError::NoSuchAccount));
    }

    #[test]
    fn deadline_cuts_the_retry_loop() {
        let metrics = FaultMetrics::new();
        let t = RetryingTransport::new(
            Arc::new(FlakyTransport::new(u32::MAX)),
            RetryPolicy {
                max_attempts: u32::MAX,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(2),
                deadline: Duration::from_millis(6),
                breaker_threshold: u32::MAX,
                ..fast_policy()
            },
            metrics.clone(),
        );
        let err = t
            .round_trip_keyed(Party::Sp, 1, MaRequest::RegisterSpAccount)
            .expect_err("deadline");
        assert!(matches!(err, MarketError::Timeout));
        assert_eq!(metrics.snapshot().timeouts, 1);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_reprobes() {
        let metrics = FaultMetrics::new();
        let policy = RetryPolicy {
            max_attempts: 1, // every call is a single attempt
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(3),
            ..fast_policy()
        };
        let t = RetryingTransport::new(
            Arc::new(FixedErrTransport(|| MarketError::Transport("down".into()))),
            policy,
            metrics.clone(),
        );
        // Three failures open the circuit…
        for _ in 0..3 {
            let err = t
                .round_trip_keyed(Party::Sp, 1, MaRequest::RegisterSpAccount)
                .expect_err("down");
            assert!(matches!(err, MarketError::Transport(_)));
        }
        // …so the next call fast-fails without touching the wire.
        let err = t
            .round_trip_keyed(Party::Sp, 2, MaRequest::RegisterSpAccount)
            .expect_err("open");
        assert!(matches!(err, MarketError::CircuitOpen));
        assert!(!err.is_retryable(), "fast-fail is final for this call");
        assert_eq!(metrics.snapshot().circuit_rejections, 1);
        // After the cooldown a half-open probe is admitted; it fails,
        // re-opening the circuit immediately.
        std::thread::sleep(Duration::from_millis(5));
        let err = t
            .round_trip_keyed(Party::Sp, 3, MaRequest::RegisterSpAccount)
            .expect_err("probe fails");
        assert!(matches!(err, MarketError::Transport(_)));
        let err = t
            .round_trip_keyed(Party::Sp, 4, MaRequest::RegisterSpAccount)
            .expect_err("re-opened");
        assert!(matches!(err, MarketError::CircuitOpen));
    }

    #[test]
    fn successful_probe_recloses_the_breaker() {
        let metrics = FaultMetrics::new();
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(2),
            ..fast_policy()
        };
        // Fails twice (opening the circuit), then recovers.
        let flaky = Arc::new(FlakyTransport::new(2));
        let t = RetryingTransport::new(flaky, policy, metrics.clone());
        for _ in 0..2 {
            let _ = t.round_trip_keyed(Party::Sp, 1, MaRequest::RegisterSpAccount);
        }
        assert!(matches!(
            t.round_trip_keyed(Party::Sp, 2, MaRequest::RegisterSpAccount),
            Err(MarketError::CircuitOpen)
        ));
        std::thread::sleep(Duration::from_millis(4));
        // The probe succeeds and closes the circuit for good.
        assert!(t
            .round_trip_keyed(Party::Sp, 3, MaRequest::RegisterSpAccount)
            .is_ok());
        assert!(t
            .round_trip_keyed(Party::Sp, 4, MaRequest::RegisterSpAccount)
            .is_ok());
    }

    #[test]
    fn backoff_is_capped() {
        let t = RetryingTransport::new(
            Arc::new(FlakyTransport::new(0)),
            RetryPolicy {
                base_delay: Duration::from_micros(100),
                max_delay: Duration::from_micros(500),
                ..fast_policy()
            },
            FaultMetrics::new(),
        );
        // capped + jitter ≤ capped * 1.5
        for attempt in 1..40 {
            assert!(t.backoff(attempt) <= Duration::from_micros(750));
        }
    }
}
