//! Traffic accounting — the instrumentation behind the paper's
//! **Table II** ("communication traffic comparing").
//!
//! Every protocol message passes through [`TrafficLog::record`] with
//! its byte size; the log then answers per-party input/output totals
//! exactly the way Table II tabulates them (bytes in / bytes out per
//! party, grand total in kilobytes).

use crate::metrics::Party;
use parking_lot::Mutex;
use std::sync::Arc;

/// One recorded message.
#[derive(Debug, Clone)]
pub struct TrafficEntry {
    /// Sender.
    pub from: Party,
    /// Receiver.
    pub to: Party,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Protocol step label (for debugging and the detailed report).
    pub label: &'static str,
}

/// Shared, thread-safe message log.
#[derive(Debug, Clone, Default)]
pub struct TrafficLog {
    entries: Arc<Mutex<Vec<TrafficEntry>>>,
}

impl TrafficLog {
    /// Fresh empty log.
    pub fn new() -> TrafficLog {
        TrafficLog::default()
    }

    /// Records one message.
    pub fn record(&self, from: Party, to: Party, label: &'static str, bytes: usize) {
        self.entries.lock().push(TrafficEntry { from, to, bytes, label });
    }

    /// Bytes received by `party`.
    pub fn input_bytes(&self, party: Party) -> usize {
        self.entries.lock().iter().filter(|e| e.to == party).map(|e| e.bytes).sum()
    }

    /// Bytes sent by `party`.
    pub fn output_bytes(&self, party: Party) -> usize {
        self.entries.lock().iter().filter(|e| e.from == party).map(|e| e.bytes).sum()
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> usize {
        self.entries.lock().iter().map(|e| e.bytes).sum()
    }

    /// Total in kilobytes (the unit of Table II's last column).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// Number of messages recorded.
    pub fn message_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// Snapshot of all entries.
    pub fn snapshot(&self) -> Vec<TrafficEntry> {
        self.entries.lock().clone()
    }

    /// `true` if any recorded plaintext label matches `label`.
    /// Used by privacy tests to assert what the MA could observe.
    pub fn has_label(&self, label: &str) -> bool {
        self.entries.lock().iter().any(|e| e.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_per_party() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "job-reg", 100);
        log.record(Party::Ma, Party::Sp, "payment", 250);
        log.record(Party::Sp, Party::Ma, "deposit", 50);
        assert_eq!(log.output_bytes(Party::Jo), 100);
        assert_eq!(log.input_bytes(Party::Ma), 150);
        assert_eq!(log.output_bytes(Party::Ma), 250);
        assert_eq!(log.input_bytes(Party::Sp), 250);
        assert_eq!(log.total_bytes(), 400);
        assert_eq!(log.message_count(), 3);
    }

    #[test]
    fn kb_conversion() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "x", 2048);
        assert!((log.total_kb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_between_clones() {
        let log = TrafficLog::new();
        let log2 = log.clone();
        log2.record(Party::Ma, Party::Jo, "fwd", 1);
        assert_eq!(log.message_count(), 1);
        assert!(log.has_label("fwd"));
        assert!(!log.has_label("nope"));
    }
}
