//! The transport layer: traffic accounting (the instrumentation
//! behind the paper's **Table II**, "communication traffic
//! comparing") plus the pluggable client↔MA [`Transport`] backends.
//!
//! Every protocol message passes through [`TrafficLog::record`] with
//! its byte size; the log then answers per-party input/output totals
//! exactly the way Table II tabulates them (bytes in / bytes out per
//! party, grand total in kilobytes). Frames that the simulated
//! network eats are accounted separately ([`TrafficLog::dropped_bytes`])
//! — a dropped frame never reached its receiver, so it must not
//! inflate the receiver's input column.
//!
//! The stack is stratified into three layers (DESIGN.md §13):
//!
//! 1. **Byte-stream** ([`crate::stream::ByteStream`]) — anything that
//!    moves bytes: a TCP socket, a fault-injecting decorator.
//! 2. **Framing/session** ([`crate::frame`]) — length-prefixed
//!    Envelope v3 + FNV-1a trailer over a stream, with partial-read
//!    reassembly ([`crate::frame::FrameDecoder`]) and bounded write
//!    buffering ([`crate::frame::WriteQueue`]).
//! 3. **Typed request/response** — this module's [`Transport`] trait,
//!    which the rest of the system talks to.
//!
//! Three [`Transport`] implementations carry requests to the
//! service's dispatcher:
//!
//! * [`InProcTransport`] moves the enums over channels directly —
//!   zero copies, no accounting; the fast default for tests. It
//!   deliberately bypasses strata 1–2 (there are no bytes to frame).
//! * [`SimNetTransport`] serializes every message into a
//!   [`wire::Envelope`](crate::wire::Envelope), applies the faults of
//!   a [`FaultPlan`] (latency, jitter, drop, duplication, stale
//!   replay, corruption), records the **actual encoded size** in the
//!   [`TrafficLog`], runs the arriving bytes through the stratum-2
//!   [`FrameDecoder`](crate::frame::FrameDecoder), and decodes on the
//!   far side — so a market run over it yields real Table II numbers,
//!   and any value that cannot survive its own encoding fails loudly.
//! * [`crate::tcp::TcpTransport`] sends the same frames over a real
//!   socket to a [`crate::tcp::TcpFrontDoor`], passing the
//!   [`crate::gate::AdmissionGate`]'s e-cash paywall first.
//!
//! [`crate::retry::RetryingTransport`] wraps any of them at stratum 3
//! — retries are about logical requests, not bytes, so the retry
//! layer is transport-agnostic by construction.
//!
//! Every request travels under a client-chosen idempotency key
//! `(party, request_id)` — the envelope's `msg_id` carries the id.
//! A retry layer (see [`crate::retry`]) reuses the same id across
//! retransmits so the service can recognize "same request, sent
//! again" and replay its cached answer instead of re-executing.

use crate::error::MarketError;
use crate::metrics::Party;
use crate::service::{Inbound, MaRequest, MaResponse, RequestKey};
use crate::wire::Envelope;
use crossbeam::channel::{self, Sender};
use parking_lot::Mutex;
use ppms_obs::{Counter, Registry, SpanContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One recorded message.
#[derive(Debug, Clone)]
pub struct TrafficEntry {
    /// Sender.
    pub from: Party,
    /// Receiver.
    pub to: Party,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Protocol step label (for debugging and the detailed report).
    pub label: &'static str,
}

/// Number of [`Party`] variants (handle array size).
const PARTY_COUNT: usize = 3;

/// Dense index of a party in the counter-handle arrays.
fn party_index(party: Party) -> usize {
    match party {
        Party::Jo => 0,
        Party::Sp => 1,
        Party::Ma => 2,
    }
}

/// Lower-case party tag used in registry metric names.
fn party_key(index: usize) -> &'static str {
    ["jo", "sp", "ma"][index]
}

/// Shared, thread-safe message log — a thin view over a
/// [`ppms_obs::Registry`]: the byte totals live in registry counters
/// (`traffic.in.<party>`, `traffic.out.<party>`, `traffic.total`,
/// `traffic.dropped.*`), so one [`Registry::snapshot`] carries the
/// whole Table II alongside every other metric. Only the per-message
/// entry list (labels, for the privacy tests and the detailed report)
/// is kept here.
#[derive(Debug, Clone)]
pub struct TrafficLog {
    entries: Arc<Mutex<Vec<TrafficEntry>>>,
    registry: Registry,
    input: [Arc<Counter>; PARTY_COUNT],
    output: [Arc<Counter>; PARTY_COUNT],
    total: Arc<Counter>,
    frames: Arc<Counter>,
    dropped_frames: Arc<Counter>,
    dropped_bytes: Arc<Counter>,
}

impl Default for TrafficLog {
    fn default() -> TrafficLog {
        TrafficLog::in_registry(&Registry::new())
    }
}

impl TrafficLog {
    /// Fresh empty log over its own private registry (one log per
    /// market run; a process-global registry would bleed bytes across
    /// concurrent markets).
    pub fn new() -> TrafficLog {
        TrafficLog::default()
    }

    /// A log whose totals are counters in `registry` — how the
    /// service exports traffic through the same snapshot as its
    /// latency and fault metrics.
    pub fn in_registry(registry: &Registry) -> TrafficLog {
        TrafficLog {
            entries: Arc::new(Mutex::new(Vec::new())),
            registry: registry.clone(),
            input: std::array::from_fn(|i| {
                registry.counter(&format!("traffic.in.{}", party_key(i)))
            }),
            output: std::array::from_fn(|i| {
                registry.counter(&format!("traffic.out.{}", party_key(i)))
            }),
            total: registry.counter("traffic.total"),
            frames: registry.counter("traffic.frames"),
            dropped_frames: registry.counter("traffic.dropped.frames"),
            dropped_bytes: registry.counter("traffic.dropped.bytes"),
        }
    }

    /// The registry holding this log's totals.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one delivered message, maintaining the running totals.
    pub fn record(&self, from: Party, to: Party, label: &'static str, bytes: usize) {
        self.entries.lock().push(TrafficEntry {
            from,
            to,
            bytes,
            label,
        });
        self.output[party_index(from)].add(bytes as u64);
        self.input[party_index(to)].add(bytes as u64);
        self.total.add(bytes as u64);
        self.frames.inc();
    }

    /// Records a frame the network ate. Lost frames never reached a
    /// receiver, so they stay out of the per-party Table II columns
    /// and are tallied on their own.
    pub fn record_dropped(&self, bytes: usize) {
        self.dropped_frames.inc();
        self.dropped_bytes.add(bytes as u64);
    }

    /// Bytes received by `party` (O(1) — a counter read).
    pub fn input_bytes(&self, party: Party) -> usize {
        self.input[party_index(party)].get() as usize
    }

    /// Bytes sent by `party` (O(1) — a counter read).
    pub fn output_bytes(&self, party: Party) -> usize {
        self.output[party_index(party)].get() as usize
    }

    /// Total bytes on the wire (O(1) — a counter read).
    pub fn total_bytes(&self) -> usize {
        self.total.get() as usize
    }

    /// Bytes lost to simulated drops/corruption.
    pub fn dropped_bytes(&self) -> usize {
        self.dropped_bytes.get() as usize
    }

    /// Frames lost to simulated drops/corruption.
    pub fn dropped_frames(&self) -> usize {
        self.dropped_frames.get() as usize
    }

    /// Total in kilobytes (the unit of Table II's last column).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// Number of messages recorded.
    pub fn message_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// Snapshot of all entries.
    pub fn snapshot(&self) -> Vec<TrafficEntry> {
        self.entries.lock().clone()
    }

    /// `true` if any recorded plaintext label matches `label`.
    /// Used by privacy tests to assert what the MA could observe.
    pub fn has_label(&self, label: &str) -> bool {
        self.entries.lock().iter().any(|e| e.label == label)
    }
}

// ---------------------------------------------------------------------------
// Transport backends
// ---------------------------------------------------------------------------

/// Per-process id nonce occupying the high 16 bits of every minted
/// request/trace id. A bare process-global counter is unique within
/// one process but *collides across processes*: two client binaries
/// dialing the same MA over TCP would both start their ids at 1 and
/// poison each other's entries in the idempotency dedup cache. The
/// vendored `rand` has no OS entropy source (its global seeding is a
/// deterministic counter, identical in every process), so the nonce
/// is FNV-1a-mixed from three values that genuinely differ between
/// processes: the wall-clock nanos at first use, the OS pid, and the
/// ASLR-randomized address of a static.
fn process_nonce() -> u64 {
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = std::process::id() as u64;
        let aslr = &NONCE as *const _ as u64;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [nanos, pid, aslr] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        // Only the low 16 bits survive into the id layout; make sure
        // they are non-zero so trace ids can never be 0 even if a
        // counter ever wrapped.
        let hi = (h >> 48) ^ (h & 0xffff);
        hi.max(1)
    })
}

/// Bits of the per-process counter kept in an id; the nonce sits
/// above them.
const ID_COUNTER_BITS: u32 = 48;

fn mint_id(counter: &AtomicU64) -> u64 {
    let low = counter.fetch_add(1, Ordering::Relaxed) & ((1 << ID_COUNTER_BITS) - 1);
    (process_nonce() << ID_COUNTER_BITS) | low
}

/// Process-wide request-id source. Ids must be unique per party for
/// the service's idempotency cache to be correct — including across
/// *processes* once clients dial in over TCP, so every id carries the
/// per-process nonce in its high 16 bits over a 48-bit process-local
/// counter.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh idempotency request id.
pub fn next_request_id() -> u64 {
    mint_id(&NEXT_REQUEST_ID)
}

/// Process-wide trace-id source. A trace id is minted once at the
/// originating client and then preserved verbatim across retransmits,
/// shard hops and the response leg, so every event a logical request
/// causes carries the same id. 0 is reserved for "no trace context"
/// (v2 wire frames); the non-zero process nonce in the high bits
/// guarantees minted ids never collide with it.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh trace id (never 0).
pub fn next_trace_id() -> u64 {
    mint_id(&NEXT_TRACE_ID)
}

/// A synchronous request/response channel to the MA service.
///
/// `round_trip` blocks until the MA answers (or the transport fails);
/// implementations decide whether messages travel as in-memory enums
/// or as serialized wire frames.
///
/// The keyed form is the primitive: `request_id` is the client's
/// idempotency token, and sending the *same* `(from, request_id)`
/// again is a retransmit — the service replays its cached response
/// instead of re-executing. [`Transport::round_trip`] allocates a fresh id per
/// call; a retry layer calls [`Transport::round_trip_keyed`] with one id for all
/// attempts of a logical request.
pub trait Transport: Send + Sync {
    /// Sends `request` on behalf of `from` under the idempotency key
    /// `(from, request_id)` and waits for the answer.
    fn round_trip_keyed(
        &self,
        from: Party,
        request_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError>;

    /// Like [`Transport::round_trip_keyed`], additionally carrying an
    /// explicit trace context (see [`next_trace_id`]). The default
    /// implementation drops the trace id — correct for transports
    /// that predate trace propagation; the real backends override it
    /// to put the id on the wire (and a retry layer passes one id to
    /// every attempt).
    fn round_trip_traced(
        &self,
        from: Party,
        request_id: u64,
        trace_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        let _ = trace_id;
        self.round_trip_keyed(from, request_id, request)
    }

    /// Like [`Transport::round_trip_traced`], carrying the caller's
    /// full [`SpanContext`] so the far side can parent its own spans
    /// to the caller's. The default implementation keeps the trace id
    /// and drops the span/parent ids — correct for transports that
    /// predate causal spans; the real backends override it to put the
    /// whole triple on the wire.
    fn round_trip_spanned(
        &self,
        from: Party,
        request_id: u64,
        ctx: SpanContext,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_traced(from, request_id, ctx.trace_id, request)
    }

    /// Sends `request` as a fresh (never-retried) logical request
    /// under a freshly minted trace id.
    fn round_trip(&self, from: Party, request: MaRequest) -> Result<MaResponse, MarketError> {
        self.round_trip_traced(from, next_request_id(), next_trace_id(), request)
    }
}

/// Protocol-step label of a request — the Table II row its bytes are
/// accounted under. Shared with the single-threaded drivers so the
/// privacy tests' label assertions hold on either path.
pub fn request_label(request: &MaRequest) -> &'static str {
    match request {
        MaRequest::RegisterJoAccount { .. } => "register-jo",
        MaRequest::RegisterSpAccount => "register-sp",
        MaRequest::PublishJob { .. } => "job-registration",
        MaRequest::Withdraw { .. } => "withdrawal-request",
        MaRequest::LaborRegister { .. } => "labor-registration",
        MaRequest::FetchLabor { .. } => "labor-fetch",
        MaRequest::SubmitPayment { .. } => "payment-submission",
        MaRequest::SubmitData { .. } => "data-report",
        MaRequest::FetchPayment { .. } => "payment-fetch",
        MaRequest::FetchData { .. } => "data-fetch",
        MaRequest::DepositBatch { .. } => "deposit",
        MaRequest::Balance { .. } => "balance",
        MaRequest::Shutdown => "shutdown",
    }
}

/// Protocol-step label of a response (see [`request_label`]).
pub fn response_label(response: &MaResponse) -> &'static str {
    match response {
        MaResponse::Account(_) => "account",
        MaResponse::JobId(_) => "job-id",
        MaResponse::BlindSignature(_) => "e-cash",
        MaResponse::Ok => "ack",
        MaResponse::Labor(_) => "labor-forward",
        MaResponse::Payment(_) => "payment-delivery",
        MaResponse::Data(_) => "data-delivery",
        MaResponse::BatchDeposited { .. } => "deposit-result",
        MaResponse::Balance(_) => "balance",
        MaResponse::Err(_) => "error",
        MaResponse::Drained { .. } => "drained",
        MaResponse::Busy => "busy",
    }
}

/// In-process transport: requests travel as enums over bounded
/// channels — zero serialization overhead, and the idempotency key
/// rides alongside the enum.
pub struct InProcTransport {
    tx: Sender<Inbound>,
}

impl InProcTransport {
    /// Wraps the service's inbox sender.
    pub fn new(tx: Sender<Inbound>) -> InProcTransport {
        InProcTransport { tx }
    }
}

impl Transport for InProcTransport {
    fn round_trip_keyed(
        &self,
        from: Party,
        request_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_traced(from, request_id, next_trace_id(), request)
    }

    fn round_trip_traced(
        &self,
        from: Party,
        request_id: u64,
        trace_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_spanned(from, request_id, SpanContext::from_trace(trace_id), request)
    }

    fn round_trip_spanned(
        &self,
        from: Party,
        request_id: u64,
        ctx: SpanContext,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx
            .send(Inbound {
                key: Some(RequestKey {
                    party: from,
                    request_id,
                }),
                span: ctx,
                request,
                reply: reply_tx,
            })
            .map_err(|_| MarketError::Transport("MA service unavailable".into()))?;
        reply_rx
            .recv()
            .map_err(|_| MarketError::Transport("MA service hung up".into()))
    }
}

/// Knobs for the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct SimNetConfig {
    /// Fixed one-way latency added to every message.
    pub latency_micros: u64,
    /// Uniform random extra delay in `[0, jitter_micros]` per message.
    pub jitter_micros: u64,
    /// Probability in `[0, 1]` that a message is dropped (the caller
    /// sees [`MarketError::Transport`]).
    pub drop_rate: f64,
    /// Seed for the jitter/drop randomness (deterministic runs).
    pub seed: u64,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        SimNetConfig {
            latency_micros: 0,
            jitter_micros: 0,
            drop_rate: 0.0,
            seed: 0,
        }
    }
}

/// A full chaos schedule for the simulated network: the base
/// [`SimNetConfig`] plus the misbehaviors a real lossy network adds
/// on top of plain loss. One seed (in `net.seed`) drives every
/// decision, so a fault schedule is reproducible from the plan alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Latency / jitter / drop / seed of the underlying network.
    pub net: SimNetConfig,
    /// Probability that a delivered request frame is delivered a
    /// second time (duplication — exercises the idempotency cache).
    pub duplicate_rate: f64,
    /// Probability that, before a request is delivered, one random
    /// *historical* request frame is re-delivered first (a late,
    /// out-of-order copy — exercises idempotency against reordering).
    pub reorder_rate: f64,
    /// Probability that a frame is corrupted in flight (one byte
    /// flipped). The receiver's integrity trailer rejects it, which
    /// the sender observes as loss.
    pub corrupt_rate: f64,
}

impl From<SimNetConfig> for FaultPlan {
    fn from(net: SimNetConfig) -> FaultPlan {
        FaultPlan {
            net,
            ..FaultPlan::default()
        }
    }
}

/// What the simulated network did to one frame in flight.
enum HopFate {
    /// Arrived intact.
    Deliver,
    /// Eaten by the network.
    Drop,
    /// Arrived with a flipped byte.
    Corrupt,
}

/// How many delivered request frames the chaos layer keeps for
/// stale-replay (reorder) injection. Bounded so a long run cannot
/// hoard frames.
const REPLAY_HISTORY: usize = 64;

/// Simulated-network transport: every message is encoded into a wire
/// [`Envelope`], subjected to the [`FaultPlan`], counted in the
/// [`TrafficLog`] at its actual encoded size **only if it arrived**,
/// and decoded before dispatch — so nothing crosses that a real wire
/// could not carry, and nothing the network ate is billed to a
/// receiver that never saw it.
pub struct SimNetTransport {
    tx: Sender<Inbound>,
    traffic: TrafficLog,
    faults: FaultPlan,
    next_id: AtomicU64,
    rng: Mutex<StdRng>,
    /// Recently delivered request frames, fodder for stale-replay.
    history: Mutex<Vec<Vec<u8>>>,
}

impl SimNetTransport {
    /// Builds a fault-free (beyond `config`'s latency/drop) transport
    /// feeding the given service inbox and log.
    pub fn new(tx: Sender<Inbound>, traffic: TrafficLog, config: SimNetConfig) -> SimNetTransport {
        SimNetTransport::with_faults(tx, traffic, FaultPlan::from(config))
    }

    /// Builds a transport running the full chaos schedule.
    pub fn with_faults(
        tx: Sender<Inbound>,
        traffic: TrafficLog,
        faults: FaultPlan,
    ) -> SimNetTransport {
        let rng = StdRng::seed_from_u64(faults.net.seed);
        SimNetTransport {
            tx,
            traffic,
            faults,
            next_id: AtomicU64::new(1),
            rng: Mutex::new(rng),
            history: Mutex::new(Vec::new()),
        }
    }

    /// Draws `rate` against the shared RNG.
    fn roll(&self, rate: f64) -> bool {
        rate > 0.0 && self.rng.lock().random_bool(rate)
    }

    /// One simulated network hop: delay, then decide the frame's fate.
    fn hop(&self) -> HopFate {
        let net = self.faults.net;
        let (extra, fate) = {
            let mut rng = self.rng.lock();
            let extra = if net.jitter_micros > 0 {
                rng.random_range(0..=net.jitter_micros)
            } else {
                0
            };
            let fate = if net.drop_rate > 0.0 && rng.random_bool(net.drop_rate) {
                HopFate::Drop
            } else if self.faults.corrupt_rate > 0.0 && rng.random_bool(self.faults.corrupt_rate) {
                HopFate::Corrupt
            } else {
                HopFate::Deliver
            };
            (extra, fate)
        };
        let delay = net.latency_micros + extra;
        if delay > 0 {
            std::thread::sleep(Duration::from_micros(delay));
        }
        fate
    }

    /// Receiver-side handling of a corrupted frame: flip one byte
    /// past the fixed header, watch the integrity trailer reject it,
    /// and surface the loss to the sender as a transport error (a
    /// receiver discards corrupt frames; the sender just never hears
    /// back).
    fn corrupt_and_discard(&self, frame: &[u8]) -> MarketError {
        let mut mangled = frame.to_vec();
        let idx = {
            let mut rng = self.rng.lock();
            // Skip the 6-byte version+length header so the flip lands
            // in the checksummed region (body or trailer).
            rng.random_range(6..mangled.len() as u64) as usize
        };
        mangled[idx] ^= 0x40;
        debug_assert!(
            Envelope::<MaRequest>::from_bytes(&mangled).is_err()
                || Envelope::<MaResponse>::from_bytes(&mangled).is_err(),
            "flipped frame must not decode cleanly"
        );
        self.traffic.record_dropped(frame.len());
        MarketError::Transport("corrupt frame discarded by receiver".into())
    }

    /// MA side: run the arriving bytes through the stratum-2
    /// [`FrameDecoder`] — the *same* splitter the TCP reactor uses —
    /// in two arbitrary chunks (so the reassembly path is exercised
    /// on every simnet request), decode the reassembled frame,
    /// dispatch it under its envelope key, and wait for the reply.
    fn dispatch(&self, frame: &[u8]) -> Result<MaResponse, MarketError> {
        let mut decoder = crate::frame::FrameDecoder::default();
        let cut = frame.len() / 2;
        decoder.push(&frame[..cut]);
        debug_assert!(
            matches!(decoder.next_frame(), Ok(None)),
            "half a frame must not yield"
        );
        decoder.push(&frame[cut..]);
        let reassembled = decoder
            .next_frame()?
            .ok_or_else(|| MarketError::Transport("frame decoder starved".into()))?;
        let envelope = Envelope::<MaRequest>::from_bytes(reassembled)?;
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx
            .send(Inbound {
                key: Some(RequestKey {
                    party: envelope.party,
                    request_id: envelope.msg_id,
                }),
                // The decoded frame's span context rides to the shard
                // untouched — a retransmitted or replayed frame carries
                // the ids its original client minted.
                span: envelope.span_ctx(),
                request: envelope.payload,
                reply: reply_tx,
            })
            .map_err(|_| MarketError::Transport("MA service unavailable".into()))?;
        reply_rx
            .recv()
            .map_err(|_| MarketError::Transport("MA service hung up".into()))
    }

    /// Remembers a delivered request frame as stale-replay fodder.
    fn remember(&self, frame: Vec<u8>) {
        let mut history = self.history.lock();
        if history.len() == REPLAY_HISTORY {
            history.remove(0);
        }
        history.push(frame);
    }

    /// Picks a random historical request frame, if any.
    fn stale_frame(&self) -> Option<Vec<u8>> {
        let history = self.history.lock();
        if history.is_empty() {
            return None;
        }
        let idx = self.rng.lock().random_range(0..history.len() as u64) as usize;
        Some(history[idx].clone())
    }
}

impl Transport for SimNetTransport {
    fn round_trip_keyed(
        &self,
        from: Party,
        request_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_traced(from, request_id, next_trace_id(), request)
    }

    fn round_trip_traced(
        &self,
        from: Party,
        request_id: u64,
        trace_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_spanned(from, request_id, SpanContext::from_trace(trace_id), request)
    }

    fn round_trip_spanned(
        &self,
        from: Party,
        request_id: u64,
        ctx: SpanContext,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        // Client side: frame the request under its idempotency key —
        // a retransmit re-frames the same id, so the MA can tell
        // "same request again" from "new request". The span context
        // rides in the same header, identical across every retransmit.
        let trace_id = ctx.trace_id;
        let label = request_label(&request);
        let frame = Envelope {
            msg_id: request_id,
            correlation_id: 0,
            trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            party: from,
            payload: request,
        }
        .to_bytes();

        // Request hop. Traffic is recorded only after the frame
        // actually survives the network: a dropped frame must not
        // count as MA input it never received.
        match self.hop() {
            HopFate::Drop => {
                self.traffic.record_dropped(frame.len());
                return Err(MarketError::Transport("message dropped by network".into()));
            }
            HopFate::Corrupt => return Err(self.corrupt_and_discard(&frame)),
            HopFate::Deliver => {}
        }
        self.traffic.record(from, Party::Ma, label, frame.len());

        // Reorder injection: a late copy of an old request lands
        // first. Its reply goes nowhere (the original sender got the
        // first copy's answer long ago); the service must shrug it
        // off via the dedup cache.
        if self.roll(self.faults.reorder_rate) {
            if let Some(stale) = self.stale_frame() {
                let _ = self.dispatch(&stale);
            }
        }

        let response = self.dispatch(&frame)?;

        // Duplication injection: the network delivered the frame
        // twice. The second delivery's reply is discarded — but it
        // must not have re-executed the request.
        if self.roll(self.faults.duplicate_rate) {
            let _ = self.dispatch(&frame);
        }
        self.remember(frame);

        // MA side: frame and "send" the response. The response leg
        // carries the request's span context back, so a client can
        // correlate the answer with the events its request caused.
        let rframe = Envelope {
            msg_id: self.next_id.fetch_add(1, Ordering::Relaxed),
            correlation_id: request_id,
            trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            party: Party::Ma,
            payload: &response,
        }
        .to_bytes();
        let rlabel = response_label(&response);

        // Response hop. On loss the MA has already executed the
        // request — exactly the window where a blind retry would
        // double-spend, and why retransmits reuse the request id.
        match self.hop() {
            HopFate::Drop => {
                self.traffic.record_dropped(rframe.len());
                return Err(MarketError::Transport("response dropped by network".into()));
            }
            HopFate::Corrupt => return Err(self.corrupt_and_discard(&rframe)),
            HopFate::Deliver => {}
        }
        self.traffic.record(Party::Ma, from, rlabel, rframe.len());

        // Client side: decode the response frame.
        let renv = Envelope::<MaResponse>::from_bytes(&rframe)?;
        debug_assert_eq!(
            renv.trace_id, trace_id,
            "response must carry the request's trace context back"
        );
        Ok(renv.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_per_party() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "job-reg", 100);
        log.record(Party::Ma, Party::Sp, "payment", 250);
        log.record(Party::Sp, Party::Ma, "deposit", 50);
        assert_eq!(log.output_bytes(Party::Jo), 100);
        assert_eq!(log.input_bytes(Party::Ma), 150);
        assert_eq!(log.output_bytes(Party::Ma), 250);
        assert_eq!(log.input_bytes(Party::Sp), 250);
        assert_eq!(log.total_bytes(), 400);
        assert_eq!(log.message_count(), 3);
    }

    #[test]
    fn kb_conversion() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "x", 2048);
        assert!((log.total_kb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_frames_stay_out_of_party_totals() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "job-reg", 100);
        log.record_dropped(77);
        log.record_dropped(23);
        assert_eq!(log.dropped_frames(), 2);
        assert_eq!(log.dropped_bytes(), 100);
        assert_eq!(log.input_bytes(Party::Ma), 100);
        assert_eq!(log.total_bytes(), 100);
        assert_eq!(log.message_count(), 1);
    }

    #[test]
    fn running_totals_match_entry_scan() {
        let log = TrafficLog::new();
        let parties = [Party::Jo, Party::Sp, Party::Ma];
        for i in 0..30usize {
            let from = parties[i % 3];
            let to = parties[(i + 1 + i % 2) % 3];
            log.record(from, to, "msg", i * 7 + 1);
        }
        let entries = log.snapshot();
        for &p in &parties {
            let scan_in: usize = entries.iter().filter(|e| e.to == p).map(|e| e.bytes).sum();
            let scan_out: usize = entries
                .iter()
                .filter(|e| e.from == p)
                .map(|e| e.bytes)
                .sum();
            assert_eq!(log.input_bytes(p), scan_in);
            assert_eq!(log.output_bytes(p), scan_out);
        }
        let scan_total: usize = entries.iter().map(|e| e.bytes).sum();
        assert_eq!(log.total_bytes(), scan_total);
    }

    #[test]
    fn shared_between_clones() {
        let log = TrafficLog::new();
        let log2 = log.clone();
        log2.record(Party::Ma, Party::Jo, "fwd", 1);
        assert_eq!(log.message_count(), 1);
        assert!(log.has_label("fwd"));
        assert!(!log.has_label("nope"));
    }

    #[test]
    fn request_ids_are_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
    }

    #[test]
    fn ids_carry_the_process_nonce_in_the_high_bits() {
        let a = next_request_id();
        let b = next_request_id();
        let t = next_trace_id();
        // Same process → same non-zero nonce above the counter bits,
        // in request ids and trace ids alike.
        let nonce = a >> ID_COUNTER_BITS;
        assert_ne!(nonce, 0, "nonce must be non-zero so trace ids never hit 0");
        assert!(nonce <= 0xffff, "nonce occupies exactly the high 16 bits");
        assert_eq!(b >> ID_COUNTER_BITS, nonce);
        assert_eq!(t >> ID_COUNTER_BITS, nonce);
        // The low bits still increment within the process.
        let mask = (1u64 << ID_COUNTER_BITS) - 1;
        assert_eq!((b & mask).wrapping_sub(a & mask), 1);
        assert_ne!(t, 0);
    }
}
