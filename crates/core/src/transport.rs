//! The transport layer: traffic accounting (the instrumentation
//! behind the paper's **Table II**, "communication traffic
//! comparing") plus the pluggable client↔MA [`Transport`] backends.
//!
//! Every protocol message passes through [`TrafficLog::record`] with
//! its byte size; the log then answers per-party input/output totals
//! exactly the way Table II tabulates them (bytes in / bytes out per
//! party, grand total in kilobytes).
//!
//! Two [`Transport`] implementations carry requests to the service's
//! dispatcher:
//!
//! * [`InProcTransport`] moves the enums over channels directly —
//!   zero copies, no accounting; the fast default for tests.
//! * [`SimNetTransport`] serializes every message into a
//!   [`wire::Envelope`](crate::wire::Envelope), applies configurable
//!   latency / jitter / drop, records the **actual encoded size** in
//!   the [`TrafficLog`], and decodes on the far side — so a market
//!   run over it yields real Table II numbers, and any value that
//!   cannot survive its own encoding fails loudly.

use crate::error::MarketError;
use crate::metrics::Party;
use crate::service::{Inbound, MaRequest, MaResponse};
use crate::wire::Envelope;
use crossbeam::channel::{self, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One recorded message.
#[derive(Debug, Clone)]
pub struct TrafficEntry {
    /// Sender.
    pub from: Party,
    /// Receiver.
    pub to: Party,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Protocol step label (for debugging and the detailed report).
    pub label: &'static str,
}

/// Running per-party totals, updated on every [`TrafficLog::record`]
/// so the Table II queries never rescan the entry list.
#[derive(Debug, Default)]
struct Totals {
    /// Bytes received, indexed by [`party_index`].
    input: [usize; PARTY_COUNT],
    /// Bytes sent, indexed by [`party_index`].
    output: [usize; PARTY_COUNT],
    /// Grand total on the wire.
    total: usize,
}

/// Number of [`Party`] variants (totals array size).
const PARTY_COUNT: usize = 3;

/// Dense index of a party in the totals arrays.
fn party_index(party: Party) -> usize {
    match party {
        Party::Jo => 0,
        Party::Sp => 1,
        Party::Ma => 2,
    }
}

/// Shared, thread-safe message log.
#[derive(Debug, Clone, Default)]
pub struct TrafficLog {
    entries: Arc<Mutex<Vec<TrafficEntry>>>,
    totals: Arc<Mutex<Totals>>,
}

impl TrafficLog {
    /// Fresh empty log.
    pub fn new() -> TrafficLog {
        TrafficLog::default()
    }

    /// Records one message, maintaining the running totals.
    pub fn record(&self, from: Party, to: Party, label: &'static str, bytes: usize) {
        self.entries.lock().push(TrafficEntry {
            from,
            to,
            bytes,
            label,
        });
        let mut totals = self.totals.lock();
        totals.output[party_index(from)] += bytes;
        totals.input[party_index(to)] += bytes;
        totals.total += bytes;
    }

    /// Bytes received by `party` (O(1) — running total).
    pub fn input_bytes(&self, party: Party) -> usize {
        self.totals.lock().input[party_index(party)]
    }

    /// Bytes sent by `party` (O(1) — running total).
    pub fn output_bytes(&self, party: Party) -> usize {
        self.totals.lock().output[party_index(party)]
    }

    /// Total bytes on the wire (O(1) — running total).
    pub fn total_bytes(&self) -> usize {
        self.totals.lock().total
    }

    /// Total in kilobytes (the unit of Table II's last column).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// Number of messages recorded.
    pub fn message_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// Snapshot of all entries.
    pub fn snapshot(&self) -> Vec<TrafficEntry> {
        self.entries.lock().clone()
    }

    /// `true` if any recorded plaintext label matches `label`.
    /// Used by privacy tests to assert what the MA could observe.
    pub fn has_label(&self, label: &str) -> bool {
        self.entries.lock().iter().any(|e| e.label == label)
    }
}

// ---------------------------------------------------------------------------
// Transport backends
// ---------------------------------------------------------------------------

/// A synchronous request/response channel to the MA service.
///
/// `round_trip` blocks until the MA answers (or the transport fails);
/// implementations decide whether messages travel as in-memory enums
/// or as serialized wire frames.
pub trait Transport: Send + Sync {
    /// Sends `request` on behalf of `from` and waits for the answer.
    fn round_trip(&self, from: Party, request: MaRequest) -> Result<MaResponse, MarketError>;
}

/// Protocol-step label of a request — the Table II row its bytes are
/// accounted under. Shared with the single-threaded drivers so the
/// privacy tests' label assertions hold on either path.
pub fn request_label(request: &MaRequest) -> &'static str {
    match request {
        MaRequest::RegisterJoAccount { .. } => "register-jo",
        MaRequest::RegisterSpAccount => "register-sp",
        MaRequest::PublishJob { .. } => "job-registration",
        MaRequest::Withdraw { .. } => "withdrawal-request",
        MaRequest::LaborRegister { .. } => "labor-registration",
        MaRequest::FetchLabor { .. } => "labor-fetch",
        MaRequest::SubmitPayment { .. } => "payment-submission",
        MaRequest::SubmitData { .. } => "data-report",
        MaRequest::FetchPayment { .. } => "payment-fetch",
        MaRequest::FetchData { .. } => "data-fetch",
        MaRequest::DepositBatch { .. } => "deposit",
        MaRequest::Balance { .. } => "balance",
        MaRequest::Shutdown => "shutdown",
    }
}

/// Protocol-step label of a response (see [`request_label`]).
pub fn response_label(response: &MaResponse) -> &'static str {
    match response {
        MaResponse::Account(_) => "account",
        MaResponse::JobId(_) => "job-id",
        MaResponse::BlindSignature(_) => "e-cash",
        MaResponse::Ok => "ack",
        MaResponse::Labor(_) => "labor-forward",
        MaResponse::Payment(_) => "payment-delivery",
        MaResponse::Data(_) => "data-delivery",
        MaResponse::BatchDeposited { .. } => "deposit-result",
        MaResponse::Balance(_) => "balance",
        MaResponse::Err(_) => "error",
        MaResponse::Drained { .. } => "drained",
    }
}

/// In-process transport: requests travel as enums over bounded
/// channels — today's behavior, zero serialization overhead.
pub struct InProcTransport {
    tx: Sender<Inbound>,
}

impl InProcTransport {
    /// Wraps the service's inbox sender.
    pub fn new(tx: Sender<Inbound>) -> InProcTransport {
        InProcTransport { tx }
    }
}

impl Transport for InProcTransport {
    fn round_trip(&self, _from: Party, request: MaRequest) -> Result<MaResponse, MarketError> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx
            .send(Inbound {
                request,
                reply: reply_tx,
            })
            .map_err(|_| MarketError::Transport("MA service unavailable".into()))?;
        reply_rx
            .recv()
            .map_err(|_| MarketError::Transport("MA service hung up".into()))
    }
}

/// Knobs for the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct SimNetConfig {
    /// Fixed one-way latency added to every message.
    pub latency_micros: u64,
    /// Uniform random extra delay in `[0, jitter_micros]` per message.
    pub jitter_micros: u64,
    /// Probability in `[0, 1]` that a message is dropped (the caller
    /// sees [`MarketError::Transport`]).
    pub drop_rate: f64,
    /// Seed for the jitter/drop randomness (deterministic runs).
    pub seed: u64,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        SimNetConfig {
            latency_micros: 0,
            jitter_micros: 0,
            drop_rate: 0.0,
            seed: 0,
        }
    }
}

/// Simulated-network transport: every message is encoded into a wire
/// [`Envelope`], delayed/dropped per [`SimNetConfig`], counted in the
/// [`TrafficLog`] at its actual encoded size, and decoded before
/// dispatch — so nothing crosses that a real wire could not carry.
pub struct SimNetTransport {
    tx: Sender<Inbound>,
    traffic: TrafficLog,
    config: SimNetConfig,
    next_id: AtomicU64,
    rng: Mutex<StdRng>,
}

impl SimNetTransport {
    /// Builds a transport feeding the given service inbox and log.
    pub fn new(tx: Sender<Inbound>, traffic: TrafficLog, config: SimNetConfig) -> SimNetTransport {
        let rng = StdRng::seed_from_u64(config.seed);
        SimNetTransport {
            tx,
            traffic,
            config,
            next_id: AtomicU64::new(1),
            rng: Mutex::new(rng),
        }
    }

    /// One simulated network hop: delay, then maybe drop.
    fn hop(&self) -> Result<(), MarketError> {
        let (extra, dropped) = {
            let mut rng = self.rng.lock();
            let extra = if self.config.jitter_micros > 0 {
                rng.random_range(0..=self.config.jitter_micros)
            } else {
                0
            };
            let dropped = self.config.drop_rate > 0.0 && rng.random_bool(self.config.drop_rate);
            (extra, dropped)
        };
        let delay = self.config.latency_micros + extra;
        if delay > 0 {
            std::thread::sleep(Duration::from_micros(delay));
        }
        if dropped {
            return Err(MarketError::Transport("message dropped by network".into()));
        }
        Ok(())
    }
}

impl Transport for SimNetTransport {
    fn round_trip(&self, from: Party, request: MaRequest) -> Result<MaResponse, MarketError> {
        // Client side: frame and "send" the request.
        let msg_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let label = request_label(&request);
        let frame = Envelope {
            msg_id,
            correlation_id: 0,
            party: from,
            payload: request,
        }
        .to_bytes();
        self.traffic.record(from, Party::Ma, label, frame.len());
        self.hop()?;

        // MA side: decode the frame (proving the bytes suffice) and
        // dispatch to the service.
        let request = Envelope::<MaRequest>::from_bytes(&frame)?.payload;
        let (reply_tx, reply_rx) = channel::bounded(1);
        self.tx
            .send(Inbound {
                request,
                reply: reply_tx,
            })
            .map_err(|_| MarketError::Transport("MA service unavailable".into()))?;
        let response = reply_rx
            .recv()
            .map_err(|_| MarketError::Transport("MA service hung up".into()))?;

        // MA side: frame and "send" the response.
        let frame = Envelope {
            msg_id: self.next_id.fetch_add(1, Ordering::Relaxed),
            correlation_id: msg_id,
            party: Party::Ma,
            payload: &response,
        }
        .to_bytes();
        self.traffic
            .record(Party::Ma, from, response_label(&response), frame.len());
        self.hop()?;

        // Client side: decode the response frame.
        Ok(Envelope::<MaResponse>::from_bytes(&frame)?.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_per_party() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "job-reg", 100);
        log.record(Party::Ma, Party::Sp, "payment", 250);
        log.record(Party::Sp, Party::Ma, "deposit", 50);
        assert_eq!(log.output_bytes(Party::Jo), 100);
        assert_eq!(log.input_bytes(Party::Ma), 150);
        assert_eq!(log.output_bytes(Party::Ma), 250);
        assert_eq!(log.input_bytes(Party::Sp), 250);
        assert_eq!(log.total_bytes(), 400);
        assert_eq!(log.message_count(), 3);
    }

    #[test]
    fn kb_conversion() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "x", 2048);
        assert!((log.total_kb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn running_totals_match_entry_scan() {
        let log = TrafficLog::new();
        let parties = [Party::Jo, Party::Sp, Party::Ma];
        for i in 0..30usize {
            let from = parties[i % 3];
            let to = parties[(i + 1 + i % 2) % 3];
            log.record(from, to, "msg", i * 7 + 1);
        }
        let entries = log.snapshot();
        for &p in &parties {
            let scan_in: usize = entries.iter().filter(|e| e.to == p).map(|e| e.bytes).sum();
            let scan_out: usize = entries
                .iter()
                .filter(|e| e.from == p)
                .map(|e| e.bytes)
                .sum();
            assert_eq!(log.input_bytes(p), scan_in);
            assert_eq!(log.output_bytes(p), scan_out);
        }
        let scan_total: usize = entries.iter().map(|e| e.bytes).sum();
        assert_eq!(log.total_bytes(), scan_total);
    }

    #[test]
    fn shared_between_clones() {
        let log = TrafficLog::new();
        let log2 = log.clone();
        log2.record(Party::Ma, Party::Jo, "fwd", 1);
        assert_eq!(log.message_count(), 1);
        assert!(log.has_label("fwd"));
        assert!(!log.has_label("nope"));
    }
}
