//! Traffic accounting — the instrumentation behind the paper's
//! **Table II** ("communication traffic comparing").
//!
//! Every protocol message passes through [`TrafficLog::record`] with
//! its byte size; the log then answers per-party input/output totals
//! exactly the way Table II tabulates them (bytes in / bytes out per
//! party, grand total in kilobytes).

use crate::metrics::Party;
use parking_lot::Mutex;
use std::sync::Arc;

/// One recorded message.
#[derive(Debug, Clone)]
pub struct TrafficEntry {
    /// Sender.
    pub from: Party,
    /// Receiver.
    pub to: Party,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Protocol step label (for debugging and the detailed report).
    pub label: &'static str,
}

/// Running per-party totals, updated on every [`TrafficLog::record`]
/// so the Table II queries never rescan the entry list.
#[derive(Debug, Default)]
struct Totals {
    /// Bytes received, indexed by [`party_index`].
    input: [usize; PARTY_COUNT],
    /// Bytes sent, indexed by [`party_index`].
    output: [usize; PARTY_COUNT],
    /// Grand total on the wire.
    total: usize,
}

/// Number of [`Party`] variants (totals array size).
const PARTY_COUNT: usize = 3;

/// Dense index of a party in the totals arrays.
fn party_index(party: Party) -> usize {
    match party {
        Party::Jo => 0,
        Party::Sp => 1,
        Party::Ma => 2,
    }
}

/// Shared, thread-safe message log.
#[derive(Debug, Clone, Default)]
pub struct TrafficLog {
    entries: Arc<Mutex<Vec<TrafficEntry>>>,
    totals: Arc<Mutex<Totals>>,
}

impl TrafficLog {
    /// Fresh empty log.
    pub fn new() -> TrafficLog {
        TrafficLog::default()
    }

    /// Records one message, maintaining the running totals.
    pub fn record(&self, from: Party, to: Party, label: &'static str, bytes: usize) {
        self.entries.lock().push(TrafficEntry {
            from,
            to,
            bytes,
            label,
        });
        let mut totals = self.totals.lock();
        totals.output[party_index(from)] += bytes;
        totals.input[party_index(to)] += bytes;
        totals.total += bytes;
    }

    /// Bytes received by `party` (O(1) — running total).
    pub fn input_bytes(&self, party: Party) -> usize {
        self.totals.lock().input[party_index(party)]
    }

    /// Bytes sent by `party` (O(1) — running total).
    pub fn output_bytes(&self, party: Party) -> usize {
        self.totals.lock().output[party_index(party)]
    }

    /// Total bytes on the wire (O(1) — running total).
    pub fn total_bytes(&self) -> usize {
        self.totals.lock().total
    }

    /// Total in kilobytes (the unit of Table II's last column).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// Number of messages recorded.
    pub fn message_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// Snapshot of all entries.
    pub fn snapshot(&self) -> Vec<TrafficEntry> {
        self.entries.lock().clone()
    }

    /// `true` if any recorded plaintext label matches `label`.
    /// Used by privacy tests to assert what the MA could observe.
    pub fn has_label(&self, label: &str) -> bool {
        self.entries.lock().iter().any(|e| e.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_per_party() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "job-reg", 100);
        log.record(Party::Ma, Party::Sp, "payment", 250);
        log.record(Party::Sp, Party::Ma, "deposit", 50);
        assert_eq!(log.output_bytes(Party::Jo), 100);
        assert_eq!(log.input_bytes(Party::Ma), 150);
        assert_eq!(log.output_bytes(Party::Ma), 250);
        assert_eq!(log.input_bytes(Party::Sp), 250);
        assert_eq!(log.total_bytes(), 400);
        assert_eq!(log.message_count(), 3);
    }

    #[test]
    fn kb_conversion() {
        let log = TrafficLog::new();
        log.record(Party::Jo, Party::Ma, "x", 2048);
        assert!((log.total_kb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn running_totals_match_entry_scan() {
        let log = TrafficLog::new();
        let parties = [Party::Jo, Party::Sp, Party::Ma];
        for i in 0..30usize {
            let from = parties[i % 3];
            let to = parties[(i + 1 + i % 2) % 3];
            log.record(from, to, "msg", i * 7 + 1);
        }
        let entries = log.snapshot();
        for &p in &parties {
            let scan_in: usize = entries.iter().filter(|e| e.to == p).map(|e| e.bytes).sum();
            let scan_out: usize = entries
                .iter()
                .filter(|e| e.from == p)
                .map(|e| e.bytes)
                .sum();
            assert_eq!(log.input_bytes(p), scan_in);
            assert_eq!(log.output_bytes(p), scan_out);
        }
        let scan_total: usize = entries.iter().map(|e| e.bytes).sum();
        assert_eq!(log.total_bytes(), scan_total);
    }

    #[test]
    fn shared_between_clones() {
        let log = TrafficLog::new();
        let log2 = log.clone();
        log2.record(Party::Ma, Party::Jo, "fwd", 1);
        assert_eq!(log.message_count(), 1);
        assert!(log.has_label("fwd"));
        assert!(!log.has_label("nope"));
    }
}
