//! Market simulation: the multi-round timing runs behind the paper's
//! **Fig. 5** and a threaded many-party market exercising the
//! mechanisms under concurrency.

use crate::ppmsdec::{DecMarket, DecRoundOutcome};
use crate::ppmspbs::PbsMarket;
use crate::MarketError;
use crossbeam::channel;
use ppms_ecash::{CashBreak, DecParams, PaymentItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Timing of a multi-round run (setup included, as in Fig. 5).
#[derive(Debug, Clone)]
pub struct RoundTiming {
    /// Rounds executed.
    pub rounds: usize,
    /// Wall-clock time for setup.
    pub setup: Duration,
    /// Wall-clock time for the rounds themselves.
    pub execution: Duration,
}

impl RoundTiming {
    /// Total time (what Fig. 5 plots: "both including a setup stage").
    pub fn total(&self) -> Duration {
        self.setup + self.execution
    }
}

/// Runs `rounds` PPMSdec rounds (fresh SP per round, as in a market
/// where each deal hires a new participant) and times them.
#[allow(clippy::too_many_arguments)]
pub fn run_dec_rounds(
    seed: u64,
    rounds: usize,
    levels: usize,
    zkp_rounds: usize,
    rsa_bits: usize,
    pairing_bits: usize,
    w: u64,
    strategy: CashBreak,
) -> Result<(RoundTiming, Vec<DecRoundOutcome>), MarketError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let params = DecParams::fixture(levels, zkp_rounds);
    // Fixed-base tables are built once here, inside the timed setup
    // stage (Fig. 5 includes setup), so the rounds run on warm rings.
    params.precompute();
    let mut market = DecMarket::new(&mut rng, params, rsa_bits, pairing_bits);
    let mut jo = market.register_jo(
        &mut rng,
        (rounds as u64 + 1) * market.params().face_value(),
        rsa_bits,
    );
    let setup = t0.elapsed();

    let t1 = Instant::now();
    let mut outcomes = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let sp = market.register_sp(&mut rng, rsa_bits);
        let outcome = market.run_round(
            &mut rng,
            &mut jo,
            &sp,
            &format!("sensing job {i}"),
            w,
            strategy,
            b"sensor readings",
        )?;
        outcomes.push(outcome);
    }
    Ok((
        RoundTiming {
            rounds,
            setup,
            execution: t1.elapsed(),
        },
        outcomes,
    ))
}

/// Runs `rounds` PPMSpbs rounds and times them.
pub fn run_pbs_rounds(
    seed: u64,
    rounds: usize,
    rsa_bits: usize,
) -> Result<RoundTiming, MarketError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut rng, rounds as u64 + 1, rsa_bits);
    let setup = t0.elapsed();

    let t1 = Instant::now();
    for i in 0..rounds {
        let sp = market.register_sp(&mut rng, rsa_bits);
        market.run_round(
            &mut rng,
            &jo,
            &sp,
            &format!("sensing job {i}"),
            b"sensor readings",
        )?;
    }
    Ok(RoundTiming {
        rounds,
        setup,
        execution: t1.elapsed(),
    })
}

/// Report of a threaded many-party PPMSpbs market.
#[derive(Debug, Clone)]
pub struct ParallelSimReport {
    /// Rounds that completed successfully.
    pub completed: usize,
    /// Rounds that failed.
    pub failed: usize,
    /// Wall-clock time for the concurrent phase.
    pub elapsed: Duration,
    /// Ledger total before the run.
    pub supply_before: u64,
    /// Ledger total after the run (must equal `supply_before`).
    pub supply_after: u64,
}

/// Runs a threaded PPMSpbs market: `n_pairs` independent (JO, SP)
/// pairs each complete `rounds_per_pair` rounds concurrently against
/// one shared market. Exercises the ledger, serial table and metrics
/// under contention.
pub fn run_parallel_pbs_market(
    seed: u64,
    n_pairs: usize,
    rounds_per_pair: usize,
    rsa_bits: usize,
    workers: usize,
) -> ParallelSimReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut market = PbsMarket::new();

    // Registration happens up front (the only &mut phase).
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let jo = market.register_jo(&mut rng, rounds_per_pair as u64, rsa_bits);
        let sp = market.register_sp(&mut rng, rsa_bits);
        pairs.push((jo, sp));
    }
    let supply_before = market.bank.total_supply();

    let (tx, rx) = channel::unbounded::<usize>();
    for idx in 0..n_pairs {
        for _ in 0..rounds_per_pair {
            tx.send(idx).expect("open channel");
        }
    }
    drop(tx);

    let market_ref = &market;
    let pairs_ref = &pairs;
    let t0 = Instant::now();
    let (completed, failed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|widx| {
                let rx = rx.clone();
                s.spawn(move || {
                    let mut ok = 0usize;
                    let mut bad = 0usize;
                    let mut wrng = StdRng::seed_from_u64(seed ^ (widx as u64) << 32);
                    while let Ok(idx) = rx.recv() {
                        let (jo, sp) = &pairs_ref[idx];
                        // Fresh per-round SP state: one-time key + serial.
                        let mut round_sp = crate::ppmspbs::PbsParticipant {
                            account: sp.account,
                            account_key: sp.account_key.clone(),
                            one_time: ppms_crypto::rsa::keygen(&mut wrng, 512),
                            serial: {
                                let mut sbytes = vec![0u8; 16];
                                wrng.fill_bytes(&mut sbytes);
                                sbytes
                            },
                        };
                        let _ = &mut round_sp;
                        match market_ref.run_round(
                            &mut wrng,
                            jo,
                            &round_sp,
                            "parallel job",
                            b"data",
                        ) {
                            Ok(_) => ok += 1,
                            Err(_) => bad += 1,
                        }
                    }
                    (ok, bad)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });
    let elapsed = t0.elapsed();

    ParallelSimReport {
        completed,
        failed,
        elapsed,
        supply_before,
        supply_after: market.bank.total_supply(),
    }
}

/// Rayon-parallel verification of a payment bundle — the SP-side
/// speedup for the unitary scheme where `2^L` items arrive at once
/// (ablation A3). Returns the valid spends and their total value.
pub fn verify_bundle_parallel(
    params: &DecParams,
    bank_pk: &ppms_crypto::rsa::RsaPublicKey,
    items: &[PaymentItem],
    binding: &[u8],
) -> (Vec<ppms_ecash::Spend>, u64) {
    // Warm the shared window tables before fanning out: rayon workers
    // verify against clones of `params`, and the clones share the
    // per-ring caches, so this one call serves every worker.
    params.precompute();
    let verified: Vec<_> = items
        .par_iter()
        .filter_map(|item| match item {
            PaymentItem::Real(spend) => spend
                .verify(params, bank_pk, binding)
                .ok()
                .map(|v| (spend.clone(), v)),
            PaymentItem::Fake(_) => None,
        })
        .collect();
    let total = verified.iter().map(|(_, v)| v).sum();
    (verified.into_iter().map(|(s, _)| s).collect(), total)
}

/// Sequential twin of [`verify_bundle_parallel`] for the ablation.
pub fn verify_bundle_sequential(
    params: &DecParams,
    bank_pk: &ppms_crypto::rsa::RsaPublicKey,
    items: &[PaymentItem],
    binding: &[u8],
) -> (Vec<ppms_ecash::Spend>, u64) {
    ppms_ecash::receive_payment(params, bank_pk, items, binding)
}
