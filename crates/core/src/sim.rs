//! Market simulation: the multi-round timing runs behind the paper's
//! **Fig. 5**, a threaded many-party market exercising the mechanisms
//! under concurrency, and a deterministic service-market driver that
//! runs the same rounds over either [`crate::transport::Transport`]
//! backend (the transport-equivalence harness).

use crate::bank::AccountId;
use crate::gate::spends_for_price;
use crate::metrics::{FaultSnapshot, Party};
use crate::ppmsdec::{DecMarket, DecRoundOutcome};
use crate::ppmspbs::PbsMarket;
use crate::retry::{RetryPolicy, RetryingTransport};
use crate::service::{
    CrashPoint, MaClient, MaRequest, MaResponse, MaService, RecoveryReport, ServiceConfig,
};
use crate::storage::{DurabilityConfig, StorageError};
use crate::stream::FlakyConfig;
use crate::tcp::{TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport};
use crate::transport::{FaultPlan, SimNetConfig, TrafficLog, Transport};
use crate::MarketError;
use crossbeam::channel;
use ppms_crypto::cl::ClKeyPair;
use ppms_crypto::rsa;
use ppms_ecash::brk::{build_payment_with, NodeAllocator};
use ppms_ecash::{
    decode_payment, encode_payment, plan_break, CashBreak, Coin, DecParams, NodePath, PaymentItem,
    Spend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing of a multi-round run (setup included, as in Fig. 5).
#[derive(Debug, Clone)]
pub struct RoundTiming {
    /// Rounds executed.
    pub rounds: usize,
    /// Wall-clock time for setup.
    pub setup: Duration,
    /// Wall-clock time for the rounds themselves.
    pub execution: Duration,
}

impl RoundTiming {
    /// Total time (what Fig. 5 plots: "both including a setup stage").
    pub fn total(&self) -> Duration {
        self.setup + self.execution
    }
}

/// Runs `rounds` PPMSdec rounds (fresh SP per round, as in a market
/// where each deal hires a new participant) and times them.
#[allow(clippy::too_many_arguments)]
pub fn run_dec_rounds(
    seed: u64,
    rounds: usize,
    levels: usize,
    zkp_rounds: usize,
    rsa_bits: usize,
    pairing_bits: usize,
    w: u64,
    strategy: CashBreak,
) -> Result<(RoundTiming, Vec<DecRoundOutcome>), MarketError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let params = DecParams::fixture(levels, zkp_rounds);
    // Fixed-base tables are built once here, inside the timed setup
    // stage (Fig. 5 includes setup), so the rounds run on warm rings.
    params.precompute();
    let mut market = DecMarket::new(&mut rng, params, rsa_bits, pairing_bits);
    let mut jo = market.register_jo(
        &mut rng,
        (rounds as u64 + 1) * market.params().face_value(),
        rsa_bits,
    );
    let setup = t0.elapsed();

    let t1 = Instant::now();
    let mut outcomes = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let sp = market.register_sp(&mut rng, rsa_bits);
        let outcome = market.run_round(
            &mut rng,
            &mut jo,
            &sp,
            &format!("sensing job {i}"),
            w,
            strategy,
            b"sensor readings",
        )?;
        outcomes.push(outcome);
    }
    Ok((
        RoundTiming {
            rounds,
            setup,
            execution: t1.elapsed(),
        },
        outcomes,
    ))
}

/// Runs `rounds` PPMSpbs rounds and times them.
pub fn run_pbs_rounds(
    seed: u64,
    rounds: usize,
    rsa_bits: usize,
) -> Result<RoundTiming, MarketError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let mut market = PbsMarket::new();
    let jo = market.register_jo(&mut rng, rounds as u64 + 1, rsa_bits);
    let setup = t0.elapsed();

    let t1 = Instant::now();
    for i in 0..rounds {
        let sp = market.register_sp(&mut rng, rsa_bits);
        market.run_round(
            &mut rng,
            &jo,
            &sp,
            &format!("sensing job {i}"),
            b"sensor readings",
        )?;
    }
    Ok(RoundTiming {
        rounds,
        setup,
        execution: t1.elapsed(),
    })
}

/// Report of a threaded many-party PPMSpbs market.
#[derive(Debug, Clone)]
pub struct ParallelSimReport {
    /// Rounds that completed successfully.
    pub completed: usize,
    /// Rounds that failed.
    pub failed: usize,
    /// Wall-clock time for the concurrent phase.
    pub elapsed: Duration,
    /// Ledger total before the run.
    pub supply_before: u64,
    /// Ledger total after the run (must equal `supply_before`).
    pub supply_after: u64,
}

/// Runs a threaded PPMSpbs market: `n_pairs` independent (JO, SP)
/// pairs each complete `rounds_per_pair` rounds concurrently against
/// one shared market. Exercises the ledger, serial table and metrics
/// under contention.
pub fn run_parallel_pbs_market(
    seed: u64,
    n_pairs: usize,
    rounds_per_pair: usize,
    rsa_bits: usize,
    workers: usize,
) -> Result<ParallelSimReport, MarketError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut market = PbsMarket::new();

    // Registration happens up front (the only &mut phase).
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let jo = market.register_jo(&mut rng, rounds_per_pair as u64, rsa_bits);
        let sp = market.register_sp(&mut rng, rsa_bits);
        pairs.push((jo, sp));
    }
    let supply_before = market.bank.total_supply();

    let (tx, rx) = channel::unbounded::<usize>();
    for idx in 0..n_pairs {
        for _ in 0..rounds_per_pair {
            tx.send(idx)
                .map_err(|_| MarketError::Transport("work queue closed".into()))?;
        }
    }
    drop(tx);

    let market_ref = &market;
    let pairs_ref = &pairs;
    let t0 = Instant::now();
    let (completed, failed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|widx| {
                let rx = rx.clone();
                s.spawn(move || {
                    let mut ok = 0usize;
                    let mut bad = 0usize;
                    let mut wrng = StdRng::seed_from_u64(seed ^ (widx as u64) << 32);
                    while let Ok(idx) = rx.recv() {
                        let (jo, sp) = &pairs_ref[idx];
                        // Fresh per-round SP state: one-time key + serial.
                        let mut round_sp = crate::ppmspbs::PbsParticipant {
                            account: sp.account,
                            account_key: sp.account_key.clone(),
                            one_time: ppms_crypto::rsa::keygen(&mut wrng, 512),
                            serial: {
                                let mut sbytes = vec![0u8; 16];
                                wrng.fill_bytes(&mut sbytes);
                                sbytes
                            },
                        };
                        let _ = &mut round_sp;
                        match market_ref.run_round(
                            &mut wrng,
                            jo,
                            &round_sp,
                            "parallel job",
                            b"data",
                        ) {
                            Ok(_) => ok += 1,
                            Err(_) => bad += 1,
                        }
                    }
                    (ok, bad)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| MarketError::Transport("simulation worker panicked".into()))
            })
            .try_fold((0, 0), |(a, b), r| r.map(|(c, d)| (a + c, b + d)))
    })?;
    let elapsed = t0.elapsed();

    Ok(ParallelSimReport {
        completed,
        failed,
        elapsed,
        supply_before,
        supply_after: market.bank.total_supply(),
    })
}

/// Rayon-parallel verification of a payment bundle — the SP-side
/// speedup for the unitary scheme where `2^L` items arrive at once
/// (ablation A3). Returns the valid spends and their total value.
pub fn verify_bundle_parallel(
    params: &DecParams,
    bank_pk: &ppms_crypto::rsa::RsaPublicKey,
    items: &[PaymentItem],
    binding: &[u8],
) -> (Vec<ppms_ecash::Spend>, u64) {
    // Warm the shared window tables before fanning out: rayon workers
    // verify against clones of `params`, and the clones share the
    // per-ring caches, so this one call serves every worker.
    params.precompute();
    let verified: Vec<_> = items
        .par_iter()
        .filter_map(|item| match item {
            PaymentItem::Real(spend) => spend
                .verify(params, bank_pk, binding)
                .ok()
                .map(|v| (spend.clone(), v)),
            PaymentItem::Fake(_) => None,
        })
        .collect();
    let total = verified.iter().map(|(_, v)| v).sum();
    (verified.into_iter().map(|(s, _)| s).collect(), total)
}

/// Sequential twin of [`verify_bundle_parallel`] for the ablation.
pub fn verify_bundle_sequential(
    params: &DecParams,
    bank_pk: &ppms_crypto::rsa::RsaPublicKey,
    items: &[PaymentItem],
    binding: &[u8],
) -> (Vec<ppms_ecash::Spend>, u64) {
    ppms_ecash::receive_payment(params, bank_pk, items, binding)
}

// ---------------------------------------------------------------------------
// Deterministic service market over a pluggable transport
// ---------------------------------------------------------------------------

/// Which transport a service market run speaks.
#[derive(Debug, Clone, Copy)]
pub enum TransportKind {
    /// Enums over channels (no serialization).
    InProc,
    /// Serialized wire envelopes with the given network behavior.
    SimNet(SimNetConfig),
    /// Serialized wire envelopes under a full chaos schedule, behind
    /// the aggressive retry layer (see [`RetryPolicy::aggressive`]):
    /// faults are absorbed by idempotent retransmission, so the run
    /// is expected to *converge* to the fault-free outcome.
    Faulty(FaultPlan),
    /// Real loopback sockets through the [`TcpFrontDoor`] and its
    /// admission gate: the market pays its own way in with e-cash
    /// before any request reaches a shard.
    Tcp(TcpEquivConfig),
}

/// Knobs for the real-socket arm of the equivalence harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpEquivConfig {
    /// Inject seeded stream tears under the clients' framing layer
    /// (exercises redial + re-admission; the seed is varied per party
    /// and per dial).
    pub flaky: Option<FlakyConfig>,
    /// Wrap the clients in the aggressive retry layer, as the chaos
    /// arm does for simnet.
    pub retry: bool,
    /// Pin the clients to an older wire version (`None` = current):
    /// the mixed-version interop arm drives v3/v2 clients against the
    /// v4 server and must still converge on the same ledger.
    pub wire_version: Option<u16>,
}

/// The observable end state of a service market run — everything a
/// ledger audit would compare. Two runs with the same seed must
/// produce *equal* outcomes regardless of the transport or shard
/// count that carried them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceMarketOutcome {
    /// JO's final balance.
    pub jo_balance: u64,
    /// Each SP's final balance, in registration order.
    pub sp_balances: Vec<u64>,
    /// Value credited to each SP's deposit batch, in order.
    pub sp_credited: Vec<u64>,
    /// Data reports the JO collected, in order.
    pub data_reports: Vec<Vec<u8>>,
    /// Published jobs: `(job_id, description, payment)`.
    pub jobs: Vec<(u64, String, u64)>,
    /// Held payments never picked up (reported by shutdown drain).
    pub undelivered_payments: usize,
}

fn unexpected(what: &str, resp: &MaResponse) -> MarketError {
    MarketError::Transport(format!("unexpected {what} response: {resp:?}"))
}

/// Runs a complete deterministic PPMSdec market against a freshly
/// spawned [`MaService`] with `shards` shard workers, speaking `kind`
/// over the wire: one JO publishes a job, `n_sps` SPs register labor,
/// the JO withdraws a coin per SP and pays `w` via PCBA cash
/// breaking, each SP submits data, fetches and verifies its payment,
/// and deposits the spends as one batch. Returns the ledger outcome
/// (see [`ServiceMarketOutcome`]) — the transport-equivalence tests
/// run this once per transport and assert equality.
pub fn run_service_market(
    seed: u64,
    shards: usize,
    n_sps: usize,
    w: u64,
    kind: TransportKind,
) -> Result<ServiceMarketOutcome, MarketError> {
    run_market(seed, shards, n_sps, w, kind, None).map(|(outcome, _, _)| outcome)
}

/// Like [`run_service_market`], but also returns the run's
/// [`TrafficLog`] — per-message labels and per-party byte totals (the
/// paper's Table II instrument). Under [`TransportKind::Tcp`] the log
/// carries the gate frames too, so the socket path's framing and
/// admission overhead is measured by the same instrument as the
/// simnet numbers.
pub fn run_service_market_traffic(
    seed: u64,
    shards: usize,
    n_sps: usize,
    w: u64,
    kind: TransportKind,
) -> Result<(ServiceMarketOutcome, TrafficLog), MarketError> {
    run_market(seed, shards, n_sps, w, kind, None).map(|(outcome, _, traffic)| (outcome, traffic))
}

/// The chaos harness: the same deterministic market, but over a lossy
/// network running `plan` (drops, duplicates, stale replays,
/// corruption) behind the aggressive retry layer, optionally with a
/// crash-injected shard. Returns the ledger outcome plus the
/// fault-tolerance counters — the chaos tests assert the outcome
/// equals the fault-free one and the counters prove faults actually
/// fired.
pub fn run_service_market_chaos(
    seed: u64,
    shards: usize,
    n_sps: usize,
    w: u64,
    plan: FaultPlan,
    crash: Option<CrashPoint>,
) -> Result<(ServiceMarketOutcome, FaultSnapshot), MarketError> {
    run_market(seed, shards, n_sps, w, TransportKind::Faulty(plan), crash)
        .map(|(outcome, faults, _)| (outcome, faults))
}

/// What the fallible drive hands back on success:
/// `(jo_balance, sp_balances, sp_credited, data_reports)`.
type DriveOutput = (u64, Vec<u64>, Vec<u64>, Vec<Vec<u8>>);

fn run_market(
    seed: u64,
    shards: usize,
    n_sps: usize,
    w: u64,
    kind: TransportKind,
    crash: Option<CrashPoint>,
) -> Result<(ServiceMarketOutcome, FaultSnapshot, TrafficLog), MarketError> {
    const RSA_BITS: usize = 512;
    let mut rng = StdRng::seed_from_u64(seed);
    let params = DecParams::fixture(3, 8);
    let svc = MaService::spawn_with_config(
        &mut rng,
        params.clone(),
        RSA_BITS,
        40,
        ServiceConfig {
            shards,
            queue_depth: 64,
            crash,
            ..ServiceConfig::default()
        },
    );
    // Keeps the socket front door (if any) alive for the whole drive;
    // dropping it stops the reactor.
    let mut _front_door: Option<TcpFrontDoor> = None;
    let (jo_client, sp_client) = match kind {
        TransportKind::InProc => (svc.client(), svc.client()),
        TransportKind::Tcp(tcfg) => {
            let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", TcpConfig::default())
                .map_err(|e| MarketError::Transport(format!("front door spawn failed: {e}")))?;
            let addr = door.addr();
            let admission = TcpConfig::default().admission;
            // Wallet sizing: the drive makes a few dozen calls per
            // party, one admission covers `requests_per_token` of
            // them, and flaky redials can burn extra admissions —
            // eight admissions each is comfortably generous. Minting
            // uses its own rng stream and funder account, so the
            // drive below is bit-identical to the other arms.
            let per_party = 8 * spends_for_price(admission.price).max(1);
            let mut jo_wallet = mint_admission_spends(&svc, seed, 2 * per_party)?;
            let sp_wallet = jo_wallet.split_off(per_party);
            let client = |party: Party, mix: u64, wallet: Vec<Spend>| -> MaClient {
                let mut cc = TcpClientConfig::new(addr);
                cc.flaky = tcfg.flaky.map(|f| FlakyConfig {
                    seed: f.seed ^ mix,
                    ..f
                });
                if let Some(v) = tcfg.wire_version {
                    cc.wire_version = v;
                }
                let transport = TcpTransport::new(cc);
                transport.load_wallet(wallet);
                let transport: Arc<dyn Transport> = Arc::new(transport);
                let transport: Arc<dyn Transport> = if tcfg.retry {
                    Arc::new(RetryingTransport::new(
                        transport,
                        RetryPolicy::aggressive(seed ^ mix),
                        svc.faults.clone(),
                    ))
                } else {
                    transport
                };
                MaClient::new(transport, party)
            };
            let pair = (
                client(Party::Jo, 0x4A4F, jo_wallet),
                client(Party::Sp, 0x5350, sp_wallet),
            );
            _front_door = Some(door);
            pair
        }
        TransportKind::SimNet(cfg) => (
            svc.simnet_client(Party::Jo, cfg),
            svc.simnet_client(
                Party::Sp,
                SimNetConfig {
                    seed: cfg.seed ^ 0x5350,
                    ..cfg
                },
            ),
        ),
        TransportKind::Faulty(plan) => (
            svc.retrying_client(
                Party::Jo,
                plan,
                RetryPolicy::aggressive(plan.net.seed ^ 0x4A4F),
            ),
            svc.retrying_client(
                Party::Sp,
                FaultPlan {
                    net: SimNetConfig {
                        seed: plan.net.seed ^ 0x5350,
                        ..plan.net
                    },
                    ..plan
                },
                RetryPolicy::aggressive(plan.net.seed ^ 0x5350),
            ),
        ),
    };

    // The fallible drive runs in a closure: if the market diverges or
    // errors (which under chaos means the fault-tolerance machinery
    // failed to converge), the flight recorders are dumped before the
    // error surfaces, preserving the last events each shard saw.
    let mut drive = || -> Result<DriveOutput, MarketError> {
        // JO setup: account, CL key, job pseudonym, published job.
        let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
        let funds = (n_sps as u64 + 1) * params.face_value();
        let jo_account = match jo_client.try_call(MaRequest::RegisterJoAccount {
            funds,
            clpk: cl.public.clone(),
        })? {
            MaResponse::Account(a) => a,
            other => return Err(unexpected("jo-account", &other)),
        };
        let job_key = rsa::keygen(&mut rng, RSA_BITS);
        let job_id = match jo_client.try_call(MaRequest::PublishJob {
            description: "simulated sensing job".into(),
            payment: w,
            pseudonym: job_key.public.to_bytes(),
        })? {
            MaResponse::JobId(id) => id,
            other => return Err(unexpected("publish", &other)),
        };

        let mut sp_accounts = Vec::with_capacity(n_sps);
        let mut sp_credited = Vec::with_capacity(n_sps);
        for i in 0..n_sps {
            // SP: account, one-time key, labor registration.
            let sp_account = match sp_client.try_call(MaRequest::RegisterSpAccount)? {
                MaResponse::Account(a) => a,
                other => return Err(unexpected("sp-account", &other)),
            };
            let one_time = rsa::keygen(&mut rng, RSA_BITS);
            let sp_pubkey = one_time.public.to_bytes();
            match sp_client.try_call(MaRequest::LaborRegister {
                job_id,
                sp_pubkey: sp_pubkey.clone(),
            })? {
                MaResponse::Ok => {}
                other => return Err(unexpected("labor-register", &other)),
            }

            // JO: poll labor, withdraw a fresh coin, pay this SP.
            let keys = match jo_client.try_call(MaRequest::FetchLabor { job_id })? {
                MaResponse::Labor(keys) => keys,
                other => return Err(unexpected("labor-fetch", &other)),
            };
            let receiver = keys
                .last()
                .cloned()
                .ok_or_else(|| MarketError::Transport("labor registration not visible".into()))?;
            let mut coin = Coin::mint(&mut rng, &params);
            let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
            let nonce = i as u64 + 1;
            let auth = cl.sign_bytes(&mut rng, &svc.pairing, &nonce.to_be_bytes());
            let sig = match jo_client.try_call(MaRequest::Withdraw {
                account: jo_account,
                nonce,
                auth,
                blinded,
            })? {
                MaResponse::BlindSignature(sig) => sig,
                other => return Err(unexpected("withdraw", &other)),
            };
            if !coin.attach_signature(&svc.bank_pk, &sig, &factor) {
                return Err(MarketError::BadCoin("bank signature did not verify".into()));
            }
            let plan = plan_break(CashBreak::Pcba, w, params.levels)?;
            let mut allocator = NodeAllocator::new(params.levels);
            let items = build_payment_with(
                &mut rng,
                &params,
                &coin,
                &plan,
                b"",
                svc.bank_pk.size_bytes(),
                &mut allocator,
            )?;
            let payload = encode_payment(&items);
            let sp_pk = rsa::RsaPublicKey::from_bytes(&receiver)
                .ok_or_else(|| MarketError::BadPayload("labor key does not parse".into()))?;
            let ciphertext = rsa::encrypt(&mut rng, &sp_pk, &payload);
            match jo_client.try_call(MaRequest::SubmitPayment {
                sp_pubkey: sp_pubkey.clone(),
                ciphertext,
            })? {
                MaResponse::Ok => {}
                other => return Err(unexpected("payment-submission", &other)),
            }

            // SP: submit data (releasing the hold), fetch, verify, deposit.
            match sp_client.try_call(MaRequest::SubmitData {
                job_id,
                sp_pubkey: sp_pubkey.clone(),
                data: format!("reading from sp {i}").into_bytes(),
            })? {
                MaResponse::Ok => {}
                other => return Err(unexpected("data-report", &other)),
            }
            let ciphertext = match sp_client.try_call(MaRequest::FetchPayment { sp_pubkey })? {
                MaResponse::Payment(Some(ct)) => ct,
                MaResponse::Payment(None) => {
                    return Err(MarketError::Transport(
                        "payment still held after data".into(),
                    ))
                }
                other => return Err(unexpected("payment-fetch", &other)),
            };
            let payload = rsa::decrypt(&one_time, &ciphertext)
                .map_err(|_| MarketError::BadPayload("payment does not decrypt".into()))?;
            let items = decode_payment(&payload)
                .map_err(|_| MarketError::BadPayload("payment bundle does not parse".into()))?;
            let (spends, _) = verify_bundle_sequential(&params, &svc.bank_pk, &items, b"");
            match sp_client.try_call(MaRequest::DepositBatch {
                account: sp_account,
                spends,
            })? {
                MaResponse::BatchDeposited { total, .. } => sp_credited.push(total),
                other => return Err(unexpected("deposit", &other)),
            }
            sp_accounts.push(sp_account);
        }

        // JO: collect the data reports.
        let data_reports = match jo_client.try_call(MaRequest::FetchData { job_id })? {
            MaResponse::Data(reports) => reports,
            other => return Err(unexpected("data-fetch", &other)),
        };

        // Audit the ledger.
        let jo_balance = match jo_client.try_call(MaRequest::Balance {
            account: jo_account,
        })? {
            MaResponse::Balance(b) => b,
            other => return Err(unexpected("balance", &other)),
        };
        let mut sp_balances = Vec::with_capacity(n_sps);
        for &account in &sp_accounts {
            match sp_client.try_call(MaRequest::Balance { account })? {
                MaResponse::Balance(b) => sp_balances.push(b),
                other => return Err(unexpected("balance", &other)),
            }
        }
        Ok((jo_balance, sp_balances, sp_credited, data_reports))
    };

    let (jo_balance, sp_balances, sp_credited, data_reports) = match drive() {
        Ok(parts) => parts,
        Err(e) => {
            let snap = svc.obs_snapshot();
            for recorder in svc.recorders() {
                if let Ok(path) = recorder.dump("market-divergence", &snap) {
                    eprintln!("flight-recorder dump: {}", path.display());
                }
            }
            return Err(e);
        }
    };
    let jobs = svc
        .bulletin
        .list()
        .into_iter()
        .map(|j| (j.job_id, j.description, j.payment))
        .collect();
    let faults = svc.faults.clone();
    let traffic = svc.traffic.clone();
    // Stop the front door before the service: the reactor must not
    // observe the dispatcher's inbox closing as client-visible errors
    // mid-drain.
    if let Some(mut door) = _front_door.take() {
        door.shutdown();
    }
    let undelivered_payments = svc.shutdown();

    Ok((
        ServiceMarketOutcome {
            jo_balance,
            sp_balances,
            sp_credited,
            data_reports,
            jobs,
            undelivered_payments,
        },
        faults.snapshot(),
        traffic,
    ))
}

// ---------------------------------------------------------------------------
// Durable market drive (crash-matrix harness support)
// ---------------------------------------------------------------------------

/// Idempotency-key base of the keyed durable drive. Far above the
/// range `next_request_id` allocates from, so the drive's explicit
/// keys never collide with ids minted elsewhere in the same process
/// (wallet minting, concurrent tests).
const DURABLE_KEY_BASE: u64 = 0x5EED_0000_0000_0000;

/// Spawn/recover sizing shared by the durable-market helpers. The two
/// sides must agree exactly: recovery regenerates the bank and
/// pairing keys from the same-seeded rng (the reproduction's stand-in
/// for a sealed key file), so any divergence in parameters would
/// produce keys the logged history does not verify under.
fn durable_fixture(seed: u64, shards: usize) -> (StdRng, DecParams, ServiceConfig) {
    (
        StdRng::seed_from_u64(seed),
        DecParams::fixture(3, 8),
        ServiceConfig {
            shards,
            queue_depth: 64,
            ..ServiceConfig::default()
        },
    )
}

/// Spawns a fresh durable [`MaService`] with the deterministic market
/// fixture sizes, journaling into `durability`.
pub fn spawn_durable_market(
    seed: u64,
    shards: usize,
    durability: DurabilityConfig,
) -> Result<MaService, StorageError> {
    let (mut rng, params, config) = durable_fixture(seed, shards);
    MaService::spawn_durable(&mut rng, params, 512, 40, config, durability)
}

/// Cold-starts a durable [`MaService`] from whatever `durability`'s
/// storage holds — the post-crash half of the crash-matrix harness.
/// `seed` and `shards` must match the instance that wrote the
/// storage.
pub fn recover_durable_market(
    seed: u64,
    shards: usize,
    durability: DurabilityConfig,
) -> Result<(MaService, RecoveryReport), StorageError> {
    let (mut rng, params, config) = durable_fixture(seed, shards);
    MaService::recover(&mut rng, params, 512, 40, config, durability)
}

/// Where a budgeted keyed drive stopped.
#[derive(Debug)]
pub enum KeyedDrive {
    /// The call budget ran out mid-schedule — the harness's kill
    /// point. `calls` requests were issued and answered first.
    Paused {
        /// Requests issued before the pause.
        calls: u64,
    },
    /// The whole schedule ran. `undelivered_payments` is `0` in the
    /// returned outcome — only the shutdown drain can count it, so
    /// the caller fills it in from [`MaService::shutdown`].
    Complete(Box<ServiceMarketOutcome>),
}

/// The deterministic service market of [`run_service_market`], driven
/// as a *resumable keyed schedule*: every request carries the
/// explicit idempotency key `DURABLE_KEY_BASE + step`, and at most
/// `max_calls` requests are issued before the drive pauses.
///
/// Because the keys and every rng draw are functions of `(seed,
/// n_sps, w)` alone, re-invoking the drive replays the schedule
/// byte-identically from step 0: steps whose commit survived (in
/// memory, or on the durable log across a crash) answer from the
/// dedup cache without re-executing, and lost steps re-execute
/// against the recovered state. Killing a durable service after `k`
/// calls and re-driving with an infinite budget must therefore
/// converge on the fault-free outcome — the crash-matrix invariant.
pub fn drive_market_keyed(
    svc: &MaService,
    seed: u64,
    n_sps: usize,
    w: u64,
    max_calls: u64,
) -> Result<KeyedDrive, MarketError> {
    const RSA_BITS: usize = 512;
    // The drive's rng stream is disjoint from the spawn's: re-driving
    // after a recovery regenerates the same coins and keys no matter
    // how many draws service spawn consumed.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x64_72_69_76_65); // "drive"
    let params = svc.params.clone();
    let client = svc.client();
    let mut calls = 0u64;
    macro_rules! step {
        ($req:expr) => {{
            if calls == max_calls {
                return Ok(KeyedDrive::Paused { calls });
            }
            let id = DURABLE_KEY_BASE + calls;
            calls += 1;
            client.try_call_keyed(id, $req)?
        }};
    }

    // JO setup: account, CL key, job pseudonym, published job.
    let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
    let funds = (n_sps as u64 + 1) * params.face_value();
    let jo_account = match step!(MaRequest::RegisterJoAccount {
        funds,
        clpk: cl.public.clone(),
    }) {
        MaResponse::Account(a) => a,
        other => return Err(unexpected("jo-account", &other)),
    };
    let job_key = rsa::keygen(&mut rng, RSA_BITS);
    let job_id = match step!(MaRequest::PublishJob {
        description: "simulated sensing job".into(),
        payment: w,
        pseudonym: job_key.public.to_bytes(),
    }) {
        MaResponse::JobId(id) => id,
        other => return Err(unexpected("publish", &other)),
    };

    let mut sp_accounts = Vec::with_capacity(n_sps);
    let mut sp_credited = Vec::with_capacity(n_sps);
    for i in 0..n_sps {
        // SP: account, one-time key, labor registration.
        let sp_account = match step!(MaRequest::RegisterSpAccount) {
            MaResponse::Account(a) => a,
            other => return Err(unexpected("sp-account", &other)),
        };
        let one_time = rsa::keygen(&mut rng, RSA_BITS);
        let sp_pubkey = one_time.public.to_bytes();
        match step!(MaRequest::LaborRegister {
            job_id,
            sp_pubkey: sp_pubkey.clone(),
        }) {
            MaResponse::Ok => {}
            other => return Err(unexpected("labor-register", &other)),
        }

        // JO: poll labor, withdraw a fresh coin, pay this SP.
        let keys = match step!(MaRequest::FetchLabor { job_id }) {
            MaResponse::Labor(keys) => keys,
            other => return Err(unexpected("labor-fetch", &other)),
        };
        let receiver = keys
            .last()
            .cloned()
            .ok_or_else(|| MarketError::Transport("labor registration not visible".into()))?;
        let mut coin = Coin::mint(&mut rng, &params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let nonce = i as u64 + 1;
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &nonce.to_be_bytes());
        let sig = match step!(MaRequest::Withdraw {
            account: jo_account,
            nonce,
            auth,
            blinded,
        }) {
            MaResponse::BlindSignature(sig) => sig,
            other => return Err(unexpected("withdraw", &other)),
        };
        if !coin.attach_signature(&svc.bank_pk, &sig, &factor) {
            return Err(MarketError::BadCoin("bank signature did not verify".into()));
        }
        let plan = plan_break(CashBreak::Pcba, w, params.levels)?;
        let mut allocator = NodeAllocator::new(params.levels);
        let items = build_payment_with(
            &mut rng,
            &params,
            &coin,
            &plan,
            b"",
            svc.bank_pk.size_bytes(),
            &mut allocator,
        )?;
        let payload = encode_payment(&items);
        let sp_pk = rsa::RsaPublicKey::from_bytes(&receiver)
            .ok_or_else(|| MarketError::BadPayload("labor key does not parse".into()))?;
        let ciphertext = rsa::encrypt(&mut rng, &sp_pk, &payload);
        match step!(MaRequest::SubmitPayment {
            sp_pubkey: sp_pubkey.clone(),
            ciphertext,
        }) {
            MaResponse::Ok => {}
            other => return Err(unexpected("payment-submission", &other)),
        }

        // SP: submit data (releasing the hold), fetch, verify, deposit.
        match step!(MaRequest::SubmitData {
            job_id,
            sp_pubkey: sp_pubkey.clone(),
            data: format!("reading from sp {i}").into_bytes(),
        }) {
            MaResponse::Ok => {}
            other => return Err(unexpected("data-report", &other)),
        }
        let ciphertext = match step!(MaRequest::FetchPayment { sp_pubkey }) {
            MaResponse::Payment(Some(ct)) => ct,
            MaResponse::Payment(None) => {
                return Err(MarketError::Transport(
                    "payment still held after data".into(),
                ))
            }
            other => return Err(unexpected("payment-fetch", &other)),
        };
        let payload = rsa::decrypt(&one_time, &ciphertext)
            .map_err(|_| MarketError::BadPayload("payment does not decrypt".into()))?;
        let items = decode_payment(&payload)
            .map_err(|_| MarketError::BadPayload("payment bundle does not parse".into()))?;
        let (spends, _) = verify_bundle_sequential(&params, &svc.bank_pk, &items, b"");
        match step!(MaRequest::DepositBatch {
            account: sp_account,
            spends,
        }) {
            MaResponse::BatchDeposited { total, .. } => sp_credited.push(total),
            other => return Err(unexpected("deposit", &other)),
        }
        sp_accounts.push(sp_account);
    }

    // JO: collect the data reports.
    let data_reports = match step!(MaRequest::FetchData { job_id }) {
        MaResponse::Data(reports) => reports,
        other => return Err(unexpected("data-fetch", &other)),
    };

    // Audit the ledger.
    let jo_balance = match step!(MaRequest::Balance {
        account: jo_account,
    }) {
        MaResponse::Balance(b) => b,
        other => return Err(unexpected("balance", &other)),
    };
    let mut sp_balances = Vec::with_capacity(n_sps);
    for &account in &sp_accounts {
        match step!(MaRequest::Balance { account }) {
            MaResponse::Balance(b) => sp_balances.push(b),
            other => return Err(unexpected("balance", &other)),
        }
    }
    let jobs = svc
        .bulletin
        .list()
        .into_iter()
        .map(|j| (j.job_id, j.description, j.payment))
        .collect();
    Ok(KeyedDrive::Complete(Box::new(ServiceMarketOutcome {
        jo_balance,
        sp_balances,
        sp_credited,
        data_reports,
        jobs,
        undelivered_payments: 0,
    })))
}

// ---------------------------------------------------------------------------
// Deposit workload (shard-scaling benchmark support)
// ---------------------------------------------------------------------------

/// Mints `n_batches` deposit batches against a running service: each
/// batch is a fresh SP account plus every unit leaf of one
/// service-withdrawn coin. The expensive part of depositing these —
/// per-spend ZK verification — is exactly what the shard workers
/// parallelize, so these batches are the shard-scaling benchmark's
/// workload.
pub fn mint_deposit_batches(
    svc: &MaService,
    seed: u64,
    n_batches: usize,
) -> Result<Vec<(AccountId, Vec<Spend>)>, MarketError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let client = svc.client();
    let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
    let face = svc.params.face_value();
    let jo = match client.try_call(MaRequest::RegisterJoAccount {
        funds: n_batches as u64 * face,
        clpk: cl.public.clone(),
    })? {
        MaResponse::Account(a) => a,
        other => return Err(unexpected("jo-account", &other)),
    };
    let levels = svc.params.levels;
    let mut out = Vec::with_capacity(n_batches);
    for i in 0..n_batches {
        let account = match client.try_call(MaRequest::RegisterSpAccount)? {
            MaResponse::Account(a) => a,
            other => return Err(unexpected("sp-account", &other)),
        };
        let mut coin = Coin::mint(&mut rng, &svc.params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let nonce = i as u64 + 1;
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &nonce.to_be_bytes());
        let sig = match client.try_call(MaRequest::Withdraw {
            account: jo,
            nonce,
            auth,
            blinded,
        })? {
            MaResponse::BlindSignature(sig) => sig,
            other => return Err(unexpected("withdraw", &other)),
        };
        if !coin.attach_signature(&svc.bank_pk, &sig, &factor) {
            return Err(MarketError::BadCoin("bank signature did not verify".into()));
        }
        let spends = (0..(1u64 << levels))
            .map(|leaf| {
                coin.spend(
                    &mut rng,
                    &svc.params,
                    &NodePath::from_index(levels, leaf),
                    b"",
                )
            })
            .collect();
        out.push((account, spends));
    }
    Ok(out)
}

/// Mints `n_spends` unit-value leaf spends for paying TCP admission
/// fees — the client-side half of the gate's economy. Registers its
/// own funder account and draws from its own rng stream (derived from
/// `seed` but disjoint from the market drives' streams), so minting a
/// wallet perturbs neither a concurrent drive's randomness nor its
/// ledger audit.
pub fn mint_admission_spends(
    svc: &MaService,
    seed: u64,
    n_spends: usize,
) -> Result<Vec<Spend>, MarketError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6761_7465_6665_6573); // "gatefees"
    let client = svc.client();
    let cl = ClKeyPair::generate(&mut rng, &svc.pairing);
    let levels = svc.params.levels;
    let face = svc.params.face_value();
    let coins = n_spends.div_ceil(face as usize).max(1);
    let funder = match client.try_call(MaRequest::RegisterJoAccount {
        funds: coins as u64 * face,
        clpk: cl.public.clone(),
    })? {
        MaResponse::Account(a) => a,
        other => return Err(unexpected("gate-funder", &other)),
    };
    let mut out = Vec::with_capacity(n_spends);
    for c in 0..coins {
        let mut coin = Coin::mint(&mut rng, &svc.params);
        let (blinded, factor) = coin.blind_token(&mut rng, &svc.bank_pk);
        let nonce = c as u64 + 1;
        let auth = cl.sign_bytes(&mut rng, &svc.pairing, &nonce.to_be_bytes());
        let sig = match client.try_call(MaRequest::Withdraw {
            account: funder,
            nonce,
            auth,
            blinded,
        })? {
            MaResponse::BlindSignature(sig) => sig,
            other => return Err(unexpected("withdraw", &other)),
        };
        if !coin.attach_signature(&svc.bank_pk, &sig, &factor) {
            return Err(MarketError::BadCoin("bank signature did not verify".into()));
        }
        for leaf in 0..(1u64 << levels) {
            if out.len() == n_spends {
                break;
            }
            out.push(coin.spend(
                &mut rng,
                &svc.params,
                &NodePath::from_index(levels, leaf),
                b"",
            ));
        }
    }
    Ok(out)
}

/// Drives `batches` through the service from `clients` concurrent
/// client threads (batch `k` goes to client `k % clients`) and
/// returns the total value credited. Throughput here scales with the
/// service's shard count: each batch's verification runs on the shard
/// owning its account.
pub fn run_deposit_workload(
    svc: &MaService,
    batches: &[(AccountId, Vec<Spend>)],
    clients: usize,
) -> Result<u64, MarketError> {
    let clients = clients.max(1);
    let totals = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = svc.client();
                s.spawn(move || -> Result<u64, MarketError> {
                    let mut total = 0u64;
                    for (account, spends) in batches.iter().skip(c).step_by(clients) {
                        match client.try_call(MaRequest::DepositBatch {
                            account: *account,
                            spends: spends.clone(),
                        })? {
                            MaResponse::BatchDeposited { total: t, .. } => total += t,
                            other => return Err(unexpected("deposit", &other)),
                        }
                    }
                    Ok(total)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| MarketError::Transport("client thread panicked".into()))
                    .and_then(|r| r)
            })
            .collect::<Result<Vec<u64>, MarketError>>()
    })?;
    Ok(totals.into_iter().sum())
}
