//! A decryption **mix network** — the network-level anonymization the
//! paper's trust model assumes (§III-B: "the communications between
//! each JO/SP and the MA are anonymized on the networking level using
//! IP/MAC recycling and/or Mix Networks").
//!
//! Chaumian decryption mix: the sender onion-encrypts its message
//! under the mix nodes' RSA keys (innermost layer = last node), each
//! node collects a batch, strips one layer, **shuffles**, and forwards.
//! With at least one honest node, the input-to-output permutation is
//! hidden from everyone else; the MA receives plaintexts it cannot map
//! back to senders.
//!
//! The market itself treats this as an assumption (the protocols never
//! inspect network addresses); this module exists so the assumption is
//! *implemented and testable* rather than hand-waved: the privacy test
//! checks that output order is decorrelated from input order while the
//! multiset of messages is preserved.

use ppms_crypto::rsa::{self, RsaPrivateKey, RsaPublicKey};
use rand::seq::SliceRandom;
use rand::Rng;

/// One mix node: an RSA keypair plus batch processing.
pub struct MixNode {
    key: RsaPrivateKey,
}

/// Errors from mix processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixError {
    /// A layer failed to decrypt (malformed onion or wrong route).
    BadOnion,
}

impl std::fmt::Display for MixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "onion layer failed to decrypt")
    }
}

impl std::error::Error for MixError {}

impl MixNode {
    /// Creates a node with a fresh key.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, rsa_bits: usize) -> MixNode {
        MixNode {
            key: rsa::keygen(rng, rsa_bits),
        }
    }

    /// The node's public key (senders need it to build onions).
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.key.public
    }

    /// Strips one onion layer from every message in the batch and
    /// returns the *shuffled* next-hop batch. The shuffle is the whole
    /// point: it breaks the positional correlation between inputs and
    /// outputs.
    pub fn process_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        batch: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, MixError> {
        let mut out = Vec::with_capacity(batch.len());
        for onion in batch {
            out.push(rsa::decrypt(&self.key, onion).map_err(|_| MixError::BadOnion)?);
        }
        out.shuffle(rng);
        Ok(out)
    }
}

/// A cascade of mix nodes with a fixed route.
pub struct MixCascade {
    nodes: Vec<MixNode>,
}

impl MixCascade {
    /// Builds a cascade of `n` nodes.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, n: usize, rsa_bits: usize) -> MixCascade {
        assert!(n >= 1);
        MixCascade {
            nodes: (0..n).map(|_| MixNode::new(rng, rsa_bits)).collect(),
        }
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.nodes.len()
    }

    /// Sender-side onion construction: encrypt under the *last* node's
    /// key first, then wrap outward so the first node strips first.
    pub fn build_onion<R: Rng + ?Sized>(&self, rng: &mut R, message: &[u8]) -> Vec<u8> {
        let mut onion = message.to_vec();
        for node in self.nodes.iter().rev() {
            onion = rsa::encrypt(rng, node.public_key(), &onion);
        }
        onion
    }

    /// Runs a batch through the whole cascade; the output is the
    /// plaintext multiset in an order unlinkable to the input order.
    pub fn run_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        onions: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, MixError> {
        let mut batch = onions.to_vec();
        for node in &self.nodes {
            batch = node.process_batch(rng, &batch)?;
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_node_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let cascade = MixCascade::new(&mut rng, 1, 512);
        let onion = cascade.build_onion(&mut rng, b"labor registration");
        let out = cascade.run_batch(&mut rng, &[onion]).unwrap();
        assert_eq!(out, vec![b"labor registration".to_vec()]);
    }

    #[test]
    fn three_hop_batch_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(2);
        let cascade = MixCascade::new(&mut rng, 3, 512);
        let messages: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 20]).collect();
        let onions: Vec<Vec<u8>> = messages
            .iter()
            .map(|m| cascade.build_onion(&mut rng, m))
            .collect();
        let mut out = cascade.run_batch(&mut rng, &onions).unwrap();
        let mut expected = messages.clone();
        out.sort();
        expected.sort();
        assert_eq!(out, expected, "all messages delivered exactly once");
    }

    #[test]
    fn output_order_decorrelated_from_input() {
        // Over many batches, the identity permutation should be rare —
        // with 6 messages, P(identity) = 1/720 per batch.
        let mut rng = StdRng::seed_from_u64(3);
        let cascade = MixCascade::new(&mut rng, 2, 512);
        let messages: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 4]).collect();
        let mut identity_count = 0;
        let trials = 20;
        for _ in 0..trials {
            let onions: Vec<Vec<u8>> = messages
                .iter()
                .map(|m| cascade.build_onion(&mut rng, m))
                .collect();
            let out = cascade.run_batch(&mut rng, &onions).unwrap();
            if out == messages {
                identity_count += 1;
            }
        }
        assert!(
            identity_count <= 1,
            "shuffle must actually permute ({identity_count}/{trials} identity)"
        );
    }

    #[test]
    fn onion_layers_look_independent() {
        // The same message onion-built twice yields different bytes at
        // every layer (OAEP randomness) — no watermarking by content.
        let mut rng = StdRng::seed_from_u64(4);
        let cascade = MixCascade::new(&mut rng, 2, 512);
        let o1 = cascade.build_onion(&mut rng, b"same");
        let o2 = cascade.build_onion(&mut rng, b"same");
        assert_ne!(o1, o2);
    }

    #[test]
    fn malformed_onion_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let cascade = MixCascade::new(&mut rng, 2, 512);
        let mut onion = cascade.build_onion(&mut rng, b"x");
        onion[3] ^= 0xFF;
        assert_eq!(
            cascade.run_batch(&mut rng, &[onion]),
            Err(MixError::BadOnion)
        );
    }

    #[test]
    fn wrong_route_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let c1 = MixCascade::new(&mut rng, 2, 512);
        let c2 = MixCascade::new(&mut rng, 2, 512);
        let onion = c1.build_onion(&mut rng, b"x");
        assert!(c2.run_batch(&mut rng, &[onion]).is_err());
    }
}
