//! Operation metering — the instrumentation behind the paper's
//! **Table I** ("core operation complexity comparing").
//!
//! The paper counts four operation classes per party: `ZKP`
//! (zero-knowledge proofs), `Enc` (encryptions *and* signatures —
//! §VI-D: "we consider signature as encryption"), `Dec` (decryptions
//! and verifications) and `H` (hash invocations). The protocol
//! drivers increment these counters around each cryptographic call,
//! and the report harness prints the per-party totals next to the
//! paper's formulas.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The three market parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Party {
    /// Job owner.
    Jo,
    /// Sensing participant.
    Sp,
    /// Market administrator (incl. the bank).
    Ma,
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Party::Jo => write!(f, "JO"),
            Party::Sp => write!(f, "SP"),
            Party::Ma => write!(f, "MA"),
        }
    }
}

/// The four operation classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Zero-knowledge proof generated or verified.
    Zkp,
    /// Encryption or signature generation.
    Enc,
    /// Decryption or signature verification.
    Dec,
    /// Hash invocation.
    Hash,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Zkp => write!(f, "ZKP"),
            Op::Enc => write!(f, "Enc"),
            Op::Dec => write!(f, "Dec"),
            Op::Hash => write!(f, "H"),
        }
    }
}

/// Shared, thread-safe operation counters.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counts: Arc<Mutex<BTreeMap<(Party, Op), u64>>>,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&self, party: Party, op: Op, n: u64) {
        *self.counts.lock().entry((party, op)).or_insert(0) += n;
    }

    /// Increments a counter by one.
    pub fn count(&self, party: Party, op: Op) {
        self.add(party, op, 1);
    }

    /// Reads a counter.
    pub fn get(&self, party: Party, op: Op) -> u64 {
        self.counts.lock().get(&(party, op)).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> BTreeMap<(Party, Op), u64> {
        self.counts.lock().clone()
    }

    /// Formats one party's counts in the paper's Table I style,
    /// e.g. `"9ZKP+4Enc+1Dec+1H"`.
    pub fn formula(&self, party: Party) -> String {
        let mut parts = Vec::new();
        for op in [Op::Zkp, Op::Enc, Op::Dec, Op::Hash] {
            let n = self.get(party, op);
            if n > 0 {
                parts.push(format!("{n}{op}"));
            }
        }
        if parts.is_empty() {
            "-".into()
        } else {
            parts.join("+")
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerance counters
// ---------------------------------------------------------------------------

/// Shared, thread-safe counters for the fault-tolerance layer: the
/// retry transport, the service's idempotency cache, and the shard
/// supervisor all report here. Cloning shares the underlying
/// counters, mirroring [`Metrics`] / [`crate::transport::TrafficLog`].
#[derive(Debug, Clone, Default)]
pub struct FaultMetrics {
    inner: Arc<FaultCounters>,
}

#[derive(Debug, Default)]
struct FaultCounters {
    /// Calls entering the retry layer.
    calls: AtomicU64,
    /// Retransmissions after a retryable failure.
    retries: AtomicU64,
    /// Calls that exhausted their attempt budget.
    exhausted: AtomicU64,
    /// Calls abandoned because the overall deadline expired.
    timeouts: AtomicU64,
    /// Calls rejected up front by an open circuit breaker.
    circuit_rejections: AtomicU64,
    /// Retransmits answered from the service's dedup cache instead of
    /// re-executing (the exactly-once replay path).
    dedup_replays: AtomicU64,
    /// Shard workers respawned by the supervisor after a crash.
    shard_respawns: AtomicU64,
    /// Committed write-ahead-journal records.
    wal_commits: AtomicU64,
    /// Uncommitted (in-flight at crash) journal records discarded
    /// during replay.
    wal_discarded: AtomicU64,
}

/// A point-in-time copy of every [`FaultMetrics`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Calls entering the retry layer.
    pub calls: u64,
    /// Retransmissions after a retryable failure.
    pub retries: u64,
    /// Calls that exhausted their attempt budget.
    pub exhausted: u64,
    /// Calls abandoned because the overall deadline expired.
    pub timeouts: u64,
    /// Calls rejected up front by an open circuit breaker.
    pub circuit_rejections: u64,
    /// Retransmits answered from the dedup cache.
    pub dedup_replays: u64,
    /// Shard workers respawned by the supervisor.
    pub shard_respawns: u64,
    /// Committed journal records.
    pub wal_commits: u64,
    /// Uncommitted journal records discarded during replay.
    pub wal_discarded: u64,
}

impl FaultMetrics {
    /// Fresh, zeroed counters.
    pub fn new() -> FaultMetrics {
        FaultMetrics::default()
    }

    /// Records a call entering the retry layer.
    pub fn call(&self) {
        self.inner.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retransmission.
    pub fn retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a call that ran out of attempts.
    pub fn exhausted(&self) {
        self.inner.exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a call that ran out of deadline.
    pub fn timeout(&self) {
        self.inner.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a call rejected by an open circuit breaker.
    pub fn circuit_rejection(&self) {
        self.inner
            .circuit_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a retransmit served from the dedup cache.
    pub fn dedup_replay(&self) {
        self.inner.dedup_replays.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shard respawn.
    pub fn shard_respawn(&self) {
        self.inner.shard_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a committed journal record.
    pub fn wal_commit(&self) {
        self.inner.wal_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` uncommitted journal records discarded by replay.
    pub fn wal_discard(&self, n: u64) {
        self.inner.wal_discarded.fetch_add(n, Ordering::Relaxed);
    }

    /// Shard respawns so far (the supervision tests' key assertion).
    pub fn shard_respawns(&self) -> u64 {
        self.inner.shard_respawns.load(Ordering::Relaxed)
    }

    /// Dedup-cache replays so far.
    pub fn dedup_replays(&self) -> u64 {
        self.inner.dedup_replays.load(Ordering::Relaxed)
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> FaultSnapshot {
        let c = &self.inner;
        FaultSnapshot {
            calls: c.calls.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            exhausted: c.exhausted.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            circuit_rejections: c.circuit_rejections.load(Ordering::Relaxed),
            dedup_replays: c.dedup_replays.load(Ordering::Relaxed),
            shard_respawns: c.shard_respawns.load(Ordering::Relaxed),
            wal_commits: c.wal_commits.load(Ordering::Relaxed),
            wal_discarded: c.wal_discarded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let m = Metrics::new();
        m.count(Party::Jo, Op::Zkp);
        m.add(Party::Jo, Op::Zkp, 7);
        m.count(Party::Sp, Op::Dec);
        assert_eq!(m.get(Party::Jo, Op::Zkp), 8);
        assert_eq!(m.get(Party::Sp, Op::Dec), 1);
        assert_eq!(m.get(Party::Ma, Op::Hash), 0);
    }

    #[test]
    fn formula_format() {
        let m = Metrics::new();
        m.add(Party::Jo, Op::Zkp, 9);
        m.add(Party::Jo, Op::Enc, 4);
        m.add(Party::Jo, Op::Dec, 1);
        m.add(Party::Jo, Op::Hash, 1);
        assert_eq!(m.formula(Party::Jo), "9ZKP+4Enc+1Dec+1H");
        assert_eq!(m.formula(Party::Ma), "-");
    }

    #[test]
    fn clone_shares_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.count(Party::Ma, Op::Enc);
        assert_eq!(m.get(Party::Ma, Op::Enc), 1);
    }

    #[test]
    fn concurrent_updates() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.count(Party::Sp, Op::Hash);
                    }
                });
            }
        });
        assert_eq!(m.get(Party::Sp, Op::Hash), 8000);
    }
}
