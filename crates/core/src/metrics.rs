//! Operation metering — the instrumentation behind the paper's
//! **Table I** ("core operation complexity comparing").
//!
//! The paper counts four operation classes per party: `ZKP`
//! (zero-knowledge proofs), `Enc` (encryptions *and* signatures —
//! §VI-D: "we consider signature as encryption"), `Dec` (decryptions
//! and verifications) and `H` (hash invocations). The protocol
//! drivers increment these counters around each cryptographic call,
//! and the report harness prints the per-party totals next to the
//! paper's formulas.

use parking_lot::Mutex;
use ppms_obs::{Counter, Registry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The three market parties.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Party {
    /// Job owner.
    Jo,
    /// Sensing participant.
    Sp,
    /// Market administrator (incl. the bank).
    Ma,
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Party::Jo => write!(f, "JO"),
            Party::Sp => write!(f, "SP"),
            Party::Ma => write!(f, "MA"),
        }
    }
}

/// The four operation classes of Table I.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Op {
    /// Zero-knowledge proof generated or verified.
    Zkp,
    /// Encryption or signature generation.
    Enc,
    /// Decryption or signature verification.
    Dec,
    /// Hash invocation.
    Hash,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Zkp => write!(f, "ZKP"),
            Op::Enc => write!(f, "Enc"),
            Op::Dec => write!(f, "Dec"),
            Op::Hash => write!(f, "H"),
        }
    }
}

/// Shared, thread-safe operation counters.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counts: Arc<Mutex<BTreeMap<(Party, Op), u64>>>,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&self, party: Party, op: Op, n: u64) {
        *self.counts.lock().entry((party, op)).or_insert(0) += n;
    }

    /// Increments a counter by one.
    pub fn count(&self, party: Party, op: Op) {
        self.add(party, op, 1);
    }

    /// Reads a counter.
    pub fn get(&self, party: Party, op: Op) -> u64 {
        self.counts.lock().get(&(party, op)).copied().unwrap_or(0)
    }

    /// Point-in-time copy of all counters — the stable, mergeable
    /// export the report harness reads (instead of polling counters
    /// live mid-run).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counts: self.counts.lock().clone(),
        }
    }

    /// Formats one party's counts in the paper's Table I style,
    /// e.g. `"9ZKP+4Enc+1Dec+1H"`.
    pub fn formula(&self, party: Party) -> String {
        self.snapshot().formula(party)
    }
}

/// A point-in-time copy of a [`Metrics`] meter: the per-party Table I
/// operation counts, detached from the live counters so a report
/// renders one consistent state.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by `(party, operation)`.
    pub counts: BTreeMap<(Party, Op), u64>,
}

impl MetricsSnapshot {
    /// Reads one counter (0 if never incremented).
    pub fn get(&self, party: Party, op: Op) -> u64 {
        self.counts.get(&(party, op)).copied().unwrap_or(0)
    }

    /// Whether nothing was counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Sum of two snapshots — aggregation across workers or runs.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counts = self.counts.clone();
        for (&key, &n) in &other.counts {
            *counts.entry(key).or_insert(0) += n;
        }
        MetricsSnapshot { counts }
    }

    /// Formats one party's counts in the paper's Table I style,
    /// e.g. `"9ZKP+4Enc+1Dec+1H"`.
    pub fn formula(&self, party: Party) -> String {
        let mut parts = Vec::new();
        for op in [Op::Zkp, Op::Enc, Op::Dec, Op::Hash] {
            let n = self.get(party, op);
            if n > 0 {
                parts.push(format!("{n}{op}"));
            }
        }
        if parts.is_empty() {
            "-".into()
        } else {
            parts.join("+")
        }
    }

    /// Hand-rolled JSON (the workspace's serde_json is a build stub):
    /// `{"JO.ZKP": 9, ...}` keyed by party/op display names.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .counts
            .iter()
            .map(|(&(party, op), &n)| format!("\"{party}.{op}\":{n}"))
            .collect();
        format!("{{{}}}", cells.join(","))
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerance counters
// ---------------------------------------------------------------------------

/// Shared, thread-safe counters for the fault-tolerance layer: the
/// retry transport, the service's idempotency cache, and the shard
/// supervisor all report here. Cloning shares the underlying
/// counters, mirroring [`Metrics`] / [`crate::transport::TrafficLog`].
///
/// A thin view over a [`ppms_obs::Registry`]: every counter is a
/// registry counter named `fault.*`, so one [`Registry::snapshot`]
/// carries the fault picture alongside latency and traffic — this
/// struct only caches the handles and shapes the [`FaultSnapshot`]
/// the chaos tests assert on.
#[derive(Debug, Clone)]
pub struct FaultMetrics {
    registry: Registry,
    /// Calls entering the retry layer.
    calls: Arc<Counter>,
    /// Retransmissions after a retryable failure.
    retries: Arc<Counter>,
    /// Calls that exhausted their attempt budget.
    exhausted: Arc<Counter>,
    /// Calls abandoned because the overall deadline expired.
    timeouts: Arc<Counter>,
    /// Calls rejected up front by an open circuit breaker.
    circuit_rejections: Arc<Counter>,
    /// Retransmits answered from the service's dedup cache instead of
    /// re-executing (the exactly-once replay path).
    dedup_replays: Arc<Counter>,
    /// Shard workers respawned by the supervisor after a crash.
    shard_respawns: Arc<Counter>,
    /// Committed write-ahead-journal records.
    wal_commits: Arc<Counter>,
    /// Uncommitted (in-flight at crash) journal records discarded
    /// during replay.
    wal_discarded: Arc<Counter>,
    /// Checkpoints published by the durable tier.
    wal_snapshots: Arc<Counter>,
    /// Log compactions run behind a durable checkpoint.
    wal_compactions: Arc<Counter>,
}

impl Default for FaultMetrics {
    fn default() -> FaultMetrics {
        FaultMetrics::in_registry(&Registry::new())
    }
}

/// A point-in-time copy of every [`FaultMetrics`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Calls entering the retry layer.
    pub calls: u64,
    /// Retransmissions after a retryable failure.
    pub retries: u64,
    /// Calls that exhausted their attempt budget.
    pub exhausted: u64,
    /// Calls abandoned because the overall deadline expired.
    pub timeouts: u64,
    /// Calls rejected up front by an open circuit breaker.
    pub circuit_rejections: u64,
    /// Retransmits answered from the dedup cache.
    pub dedup_replays: u64,
    /// Shard workers respawned by the supervisor.
    pub shard_respawns: u64,
    /// Committed journal records.
    pub wal_commits: u64,
    /// Uncommitted journal records discarded during replay.
    pub wal_discarded: u64,
    /// Checkpoints published by the durable tier.
    pub wal_snapshots: u64,
    /// Log compactions run behind a durable checkpoint.
    pub wal_compactions: u64,
}

impl FaultMetrics {
    /// Fresh counters in a private registry.
    pub fn new() -> FaultMetrics {
        FaultMetrics::default()
    }

    /// Counters registered in (and visible through snapshots of)
    /// `registry`. Used by the service so its fault counters, latency
    /// histograms, and traffic totals land in one snapshot.
    pub fn in_registry(registry: &Registry) -> FaultMetrics {
        FaultMetrics {
            registry: registry.clone(),
            calls: registry.counter("fault.calls"),
            retries: registry.counter("fault.retries"),
            exhausted: registry.counter("fault.exhausted"),
            timeouts: registry.counter("fault.timeouts"),
            circuit_rejections: registry.counter("fault.circuit_rejections"),
            dedup_replays: registry.counter("fault.dedup_replays"),
            shard_respawns: registry.counter("fault.shard_respawns"),
            wal_commits: registry.counter("fault.wal_commits"),
            wal_discarded: registry.counter("fault.wal_discarded"),
            // Shared names with the durable tier: `DurableLog` and the
            // dispatcher's checkpoint path increment the same
            // registry-owned counters, so this view needs no wiring.
            wal_snapshots: registry.counter("wal.snapshots"),
            wal_compactions: registry.counter("wal.compactions"),
        }
    }

    /// The registry these counters live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records a call entering the retry layer.
    pub fn call(&self) {
        self.calls.inc();
    }

    /// Records one retransmission.
    pub fn retry(&self) {
        self.retries.inc();
    }

    /// Records a call that ran out of attempts.
    pub fn exhausted(&self) {
        self.exhausted.inc();
    }

    /// Records a call that ran out of deadline.
    pub fn timeout(&self) {
        self.timeouts.inc();
    }

    /// Records a call rejected by an open circuit breaker.
    pub fn circuit_rejection(&self) {
        self.circuit_rejections.inc();
    }

    /// Records a retransmit served from the dedup cache.
    pub fn dedup_replay(&self) {
        self.dedup_replays.inc();
    }

    /// Records a shard respawn.
    pub fn shard_respawn(&self) {
        self.shard_respawns.inc();
    }

    /// Records a committed journal record.
    pub fn wal_commit(&self) {
        self.wal_commits.inc();
    }

    /// Records `n` uncommitted journal records discarded by replay.
    pub fn wal_discard(&self, n: u64) {
        self.wal_discarded.add(n);
    }

    /// Durable checkpoints published so far.
    pub fn wal_snapshots(&self) -> u64 {
        self.wal_snapshots.get()
    }

    /// Log compactions so far.
    pub fn wal_compactions(&self) -> u64 {
        self.wal_compactions.get()
    }

    /// Shard respawns so far (the supervision tests' key assertion).
    pub fn shard_respawns(&self) -> u64 {
        self.shard_respawns.get()
    }

    /// Dedup-cache replays so far.
    pub fn dedup_replays(&self) -> u64 {
        self.dedup_replays.get()
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            calls: self.calls.get(),
            retries: self.retries.get(),
            exhausted: self.exhausted.get(),
            timeouts: self.timeouts.get(),
            circuit_rejections: self.circuit_rejections.get(),
            dedup_replays: self.dedup_replays.get(),
            shard_respawns: self.shard_respawns.get(),
            wal_commits: self.wal_commits.get(),
            wal_discarded: self.wal_discarded.get(),
            wal_snapshots: self.wal_snapshots.get(),
            wal_compactions: self.wal_compactions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let m = Metrics::new();
        m.count(Party::Jo, Op::Zkp);
        m.add(Party::Jo, Op::Zkp, 7);
        m.count(Party::Sp, Op::Dec);
        assert_eq!(m.get(Party::Jo, Op::Zkp), 8);
        assert_eq!(m.get(Party::Sp, Op::Dec), 1);
        assert_eq!(m.get(Party::Ma, Op::Hash), 0);
    }

    #[test]
    fn formula_format() {
        let m = Metrics::new();
        m.add(Party::Jo, Op::Zkp, 9);
        m.add(Party::Jo, Op::Enc, 4);
        m.add(Party::Jo, Op::Dec, 1);
        m.add(Party::Jo, Op::Hash, 1);
        assert_eq!(m.formula(Party::Jo), "9ZKP+4Enc+1Dec+1H");
        assert_eq!(m.formula(Party::Ma), "-");
    }

    #[test]
    fn clone_shares_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.count(Party::Ma, Op::Enc);
        assert_eq!(m.get(Party::Ma, Op::Enc), 1);
    }

    #[test]
    fn concurrent_updates() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.count(Party::Sp, Op::Hash);
                    }
                });
            }
        });
        assert_eq!(m.get(Party::Sp, Op::Hash), 8000);
    }
}
