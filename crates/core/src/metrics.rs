//! Operation metering — the instrumentation behind the paper's
//! **Table I** ("core operation complexity comparing").
//!
//! The paper counts four operation classes per party: `ZKP`
//! (zero-knowledge proofs), `Enc` (encryptions *and* signatures —
//! §VI-D: "we consider signature as encryption"), `Dec` (decryptions
//! and verifications) and `H` (hash invocations). The protocol
//! drivers increment these counters around each cryptographic call,
//! and the report harness prints the per-party totals next to the
//! paper's formulas.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The three market parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Party {
    /// Job owner.
    Jo,
    /// Sensing participant.
    Sp,
    /// Market administrator (incl. the bank).
    Ma,
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Party::Jo => write!(f, "JO"),
            Party::Sp => write!(f, "SP"),
            Party::Ma => write!(f, "MA"),
        }
    }
}

/// The four operation classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// Zero-knowledge proof generated or verified.
    Zkp,
    /// Encryption or signature generation.
    Enc,
    /// Decryption or signature verification.
    Dec,
    /// Hash invocation.
    Hash,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Zkp => write!(f, "ZKP"),
            Op::Enc => write!(f, "Enc"),
            Op::Dec => write!(f, "Dec"),
            Op::Hash => write!(f, "H"),
        }
    }
}

/// Shared, thread-safe operation counters.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counts: Arc<Mutex<BTreeMap<(Party, Op), u64>>>,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&self, party: Party, op: Op, n: u64) {
        *self.counts.lock().entry((party, op)).or_insert(0) += n;
    }

    /// Increments a counter by one.
    pub fn count(&self, party: Party, op: Op) {
        self.add(party, op, 1);
    }

    /// Reads a counter.
    pub fn get(&self, party: Party, op: Op) -> u64 {
        self.counts.lock().get(&(party, op)).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> BTreeMap<(Party, Op), u64> {
        self.counts.lock().clone()
    }

    /// Formats one party's counts in the paper's Table I style,
    /// e.g. `"9ZKP+4Enc+1Dec+1H"`.
    pub fn formula(&self, party: Party) -> String {
        let mut parts = Vec::new();
        for op in [Op::Zkp, Op::Enc, Op::Dec, Op::Hash] {
            let n = self.get(party, op);
            if n > 0 {
                parts.push(format!("{n}{op}"));
            }
        }
        if parts.is_empty() {
            "-".into()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let m = Metrics::new();
        m.count(Party::Jo, Op::Zkp);
        m.add(Party::Jo, Op::Zkp, 7);
        m.count(Party::Sp, Op::Dec);
        assert_eq!(m.get(Party::Jo, Op::Zkp), 8);
        assert_eq!(m.get(Party::Sp, Op::Dec), 1);
        assert_eq!(m.get(Party::Ma, Op::Hash), 0);
    }

    #[test]
    fn formula_format() {
        let m = Metrics::new();
        m.add(Party::Jo, Op::Zkp, 9);
        m.add(Party::Jo, Op::Enc, 4);
        m.add(Party::Jo, Op::Dec, 1);
        m.add(Party::Jo, Op::Hash, 1);
        assert_eq!(m.formula(Party::Jo), "9ZKP+4Enc+1Dec+1H");
        assert_eq!(m.formula(Party::Ma), "-");
    }

    #[test]
    fn clone_shares_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.count(Party::Ma, Op::Enc);
        assert_eq!(m.get(Party::Ma, Op::Enc), 1);
    }

    #[test]
    fn concurrent_updates() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.count(Party::Sp, Op::Hash);
                    }
                });
            }
        });
        assert_eq!(m.get(Party::Sp, Op::Hash), 8000);
    }
}
