//! The virtual bank the market administrator runs (paper §III-A):
//! every market resident holds exactly one account opened with
//! authentic identity, credits are conserved, and the ledger is the
//! ground truth the privacy analysis quantifies over.

use crate::error::MarketError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An account identifier (`AID` in the paper) — equivalent to the
/// resident's real identity and therefore the thing the mechanisms
/// must keep unlinkable from job pseudonyms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub u64);

/// The ledger. Thread-safe; clones share state.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    inner: Arc<RwLock<BankInner>>,
}

#[derive(Debug, Default)]
struct BankInner {
    next_id: u64,
    balances: HashMap<AccountId, u64>,
}

impl Bank {
    /// Fresh empty bank.
    pub fn new() -> Bank {
        Bank::default()
    }

    /// Opens an account with an initial balance, returning its AID.
    pub fn open_account(&self, initial: u64) -> AccountId {
        let mut inner = self.inner.write();
        let id = AccountId(inner.next_id);
        inner.next_id += 1;
        inner.balances.insert(id, initial);
        id
    }

    /// Current balance.
    pub fn balance(&self, id: AccountId) -> Result<u64, MarketError> {
        self.inner
            .read()
            .balances
            .get(&id)
            .copied()
            .ok_or(MarketError::NoSuchAccount)
    }

    /// Debits an account (withdrawal).
    pub fn debit(&self, id: AccountId, amount: u64) -> Result<(), MarketError> {
        let mut inner = self.inner.write();
        let bal = inner
            .balances
            .get_mut(&id)
            .ok_or(MarketError::NoSuchAccount)?;
        if *bal < amount {
            return Err(MarketError::InsufficientFunds);
        }
        *bal -= amount;
        Ok(())
    }

    /// Credits an account (deposit).
    pub fn credit(&self, id: AccountId, amount: u64) -> Result<(), MarketError> {
        let mut inner = self.inner.write();
        let bal = inner
            .balances
            .get_mut(&id)
            .ok_or(MarketError::NoSuchAccount)?;
        *bal += amount;
        Ok(())
    }

    /// Atomic transfer between two accounts (PPMSpbs deposits).
    pub fn transfer(&self, from: AccountId, to: AccountId, amount: u64) -> Result<(), MarketError> {
        let mut inner = self.inner.write();
        if !inner.balances.contains_key(&to) {
            return Err(MarketError::NoSuchAccount);
        }
        let src = inner
            .balances
            .get_mut(&from)
            .ok_or(MarketError::NoSuchAccount)?;
        if *src < amount {
            return Err(MarketError::InsufficientFunds);
        }
        *src -= amount;
        *inner.balances.get_mut(&to).expect("checked above") += amount;
        Ok(())
    }

    /// Sum of all balances — conserved by every in-bank operation
    /// except explicit withdrawals into e-cash (tests assert on this).
    pub fn total_supply(&self) -> u64 {
        self.inner.read().balances.values().sum()
    }

    /// Serializable snapshot of the ledger (operational persistence —
    /// a real market administrator checkpoints its ledger).
    pub fn snapshot(&self) -> BankSnapshot {
        let inner = self.inner.read();
        let mut accounts: Vec<(u64, u64)> = inner
            .balances
            .iter()
            .map(|(id, bal)| (id.0, *bal))
            .collect();
        accounts.sort_unstable();
        BankSnapshot {
            next_id: inner.next_id,
            accounts,
        }
    }

    /// Restores one account at an explicit id — the cold-start
    /// recovery path replaying a committed registration whose id was
    /// already handed to the client. The id counter advances past the
    /// restored id so future registrations never collide.
    pub fn restore_account(&self, id: AccountId, balance: u64) {
        let mut inner = self.inner.write();
        inner.next_id = inner.next_id.max(id.0 + 1);
        inner.balances.insert(id, balance);
    }

    /// Restores a bank from a snapshot.
    pub fn restore(snapshot: &BankSnapshot) -> Bank {
        let bank = Bank::new();
        {
            let mut inner = bank.inner.write();
            inner.next_id = snapshot.next_id;
            inner.balances = snapshot
                .accounts
                .iter()
                .map(|&(id, bal)| (AccountId(id), bal))
                .collect();
        }
        bank
    }
}

/// A point-in-time copy of the ledger, serializable with serde.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BankSnapshot {
    /// Next account id to hand out.
    pub next_id: u64,
    /// `(account id, balance)` pairs, sorted by id.
    pub accounts: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_and_balance() {
        let bank = Bank::new();
        let a = bank.open_account(100);
        let b = bank.open_account(0);
        assert_ne!(a, b);
        assert_eq!(bank.balance(a), Ok(100));
        assert_eq!(bank.balance(b), Ok(0));
        assert_eq!(
            bank.balance(AccountId(999)),
            Err(MarketError::NoSuchAccount)
        );
    }

    #[test]
    fn debit_credit() {
        let bank = Bank::new();
        let a = bank.open_account(50);
        bank.debit(a, 20).unwrap();
        assert_eq!(bank.balance(a), Ok(30));
        bank.credit(a, 5).unwrap();
        assert_eq!(bank.balance(a), Ok(35));
        assert_eq!(bank.debit(a, 100), Err(MarketError::InsufficientFunds));
    }

    #[test]
    fn transfer_conserves_supply() {
        let bank = Bank::new();
        let a = bank.open_account(10);
        let b = bank.open_account(10);
        bank.transfer(a, b, 7).unwrap();
        assert_eq!(bank.balance(a), Ok(3));
        assert_eq!(bank.balance(b), Ok(17));
        assert_eq!(bank.total_supply(), 20);
        assert_eq!(
            bank.transfer(a, b, 100),
            Err(MarketError::InsufficientFunds)
        );
        assert_eq!(
            bank.transfer(a, AccountId(42), 1),
            Err(MarketError::NoSuchAccount)
        );
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let bank = Bank::new();
        let a = bank.open_account(10);
        let b = bank.open_account(32);
        bank.transfer(b, a, 2).unwrap();
        let snap = bank.snapshot();
        let restored = Bank::restore(&snap);
        assert_eq!(restored.balance(a), Ok(12));
        assert_eq!(restored.balance(b), Ok(30));
        // New accounts continue from the snapshotted counter.
        let c = restored.open_account(0);
        assert!(c > b);
        assert_eq!(restored.snapshot().accounts.len(), 3);
    }

    #[test]
    fn concurrent_transfers_conserve() {
        let bank = Bank::new();
        let a = bank.open_account(10_000);
        let b = bank.open_account(10_000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let bank = bank.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        let _ = bank.transfer(a, b, 1);
                        let _ = bank.transfer(b, a, 1);
                    }
                });
            }
        });
        assert_eq!(bank.total_supply(), 20_000);
    }
}
