//! **PPMSdec** (paper §IV, Algorithm 1): the privacy-preserving market
//! mechanism for arbitrary payments, built on divisible e-cash.
//!
//! One payment round walks the paper's phases:
//!
//! 1. *Job registration* — `JO → MA: jd, w, rpk_jo`; MA publishes on
//!    the bulletin board.
//! 2. *Money withdrawal* — JO authenticates with a CL signature on a
//!    fresh nonce (its CL public key is account-bound, paper §IV-A1),
//!    the bank debits `2^L` and blind-signs the coin root.
//! 3. *Cash break* — the payment `w` is broken per the chosen
//!    strategy (unitary / PCBA / EPCBA) and padded with fakes `E(0)`.
//! 4. *Labor registration* — `SP → MA → JO: rpk_sp`.
//! 5. *Payment submission* — JO signs the SP's one-time key
//!    (`sig = RSA_SIG_rskjo(rpk_sp)`, eq. (7)) and encrypts the coin
//!    bundle + signature under `rpk_sp` (eq. (8)).
//! 6. *Data submission / delivery* — SP's report flows through MA.
//! 7. *Payment delivery* — MA forwards the ciphertext (eq. (9)).
//! 8. *Money deposit* — SP decrypts, verifies the designation
//!    signature and each coin, then deposits the spends one by one
//!    under its real account id (eq. (11)).
//!
//! The driver records every message in the [`TrafficLog`] (→ Table II)
//! and every cryptographic operation in [`Metrics`] (→ Table I).
//! Message sizes are the **actual encoded lengths** of the
//! [`crate::wire`] envelopes those messages occupy on the wire
//! ([`wire::framed_len`]), not hand-estimates.

use crate::bank::{AccountId, Bank};
use crate::bulletin::Bulletin;
use crate::error::MarketError;
use crate::metrics::{Metrics, Op, Party};
use crate::service::{MaRequest, MaResponse};
use crate::transport::TrafficLog;
use crate::wire;
use ppms_crypto::cl::{ClKeyPair, ClPublicKey};
use ppms_crypto::pairing::TypeAPairing;
use ppms_crypto::rsa::{self, RsaPrivateKey};
use ppms_ecash::brk::{build_payment_with, NodeAllocator};
use ppms_ecash::{
    decode_payment, encode_payment, plan_break, CashBreak, Coin, DecBank, DecParams, PaymentItem,
};
use rand::Rng;
use std::collections::HashMap;

/// The market administrator's PPMSdec state: ledger, bulletin board,
/// DEC bank, pairing parameters, and account→CL-key bindings.
pub struct DecMarket {
    /// The virtual-currency ledger.
    pub bank: Bank,
    /// The public bulletin board.
    pub bulletin: Bulletin,
    /// The divisible e-cash bank (blind issuance + deposits).
    pub dec_bank: DecBank,
    /// Pairing parameters for CL authentication.
    pub pairing: TypeAPairing,
    /// Operation counters (Table I).
    pub metrics: Metrics,
    /// Message log (Table II).
    pub traffic: TrafficLog,
    cl_bindings: HashMap<AccountId, ClPublicKey>,
    withdraw_nonce: u64,
}

/// A job owner in the DEC market.
pub struct DecJobOwner {
    /// Bank account (authentic identity).
    pub account: AccountId,
    cl: ClKeyPair,
    /// Per-job pseudonymous RSA key (`rpk_jo`).
    job_key: RsaPrivateKey,
    /// The withdrawn coin, if any.
    coin: Option<Coin>,
    /// Which tree nodes of the coin are still unspent.
    allocator: NodeAllocator,
}

impl DecJobOwner {
    /// The job's pseudonymous verification key (`rpk_jo`) — what the
    /// bulletin board publishes and the SP verifies against.
    pub fn job_key_public(&self) -> ppms_crypto::rsa::RsaPublicKey {
        self.job_key.public.clone()
    }

    /// Unspent value still held in the current coin.
    pub fn change_value(&self, _params: &DecParams) -> u64 {
        if self.coin.is_some() {
            self.allocator.remaining()
        } else {
            0
        }
    }
}

/// A sensing participant in the DEC market.
pub struct DecParticipant {
    /// Bank account (authentic identity — used *only* at deposit).
    pub account: AccountId,
    /// Per-job one-time RSA key (`rpk_sp`).
    one_time: RsaPrivateKey,
}

impl DecParticipant {
    /// The one-time public key bytes (the SP's job pseudonym).
    pub fn pseudonym(&self) -> Vec<u8> {
        self.one_time.public.to_bytes()
    }
}

/// What a completed round produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecRoundOutcome {
    /// Bulletin-board job id.
    pub job_id: u64,
    /// Value credited to the SP.
    pub credited: u64,
    /// Real coins in the payment bundle.
    pub real_coins: usize,
    /// Fake coins `E(0)` in the bundle.
    pub fake_coins: usize,
    /// The deposit values the MA observed, in order — the adversary's
    /// view for the denomination attack.
    pub deposit_stream: Vec<u64>,
}

impl DecMarket {
    /// Sets up the market: DEC parameters, DEC bank (blind-signing key
    /// of `rsa_bits`), and Type-A pairing for CL authentication.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        params: DecParams,
        rsa_bits: usize,
        pairing_bits: usize,
    ) -> DecMarket {
        DecMarket {
            bank: Bank::new(),
            bulletin: Bulletin::new(),
            dec_bank: DecBank::new(rng, params, rsa_bits),
            pairing: TypeAPairing::generate(rng, pairing_bits),
            metrics: Metrics::new(),
            traffic: TrafficLog::new(),
            cl_bindings: HashMap::new(),
            withdraw_nonce: 0,
        }
    }

    /// DEC parameters in force.
    pub fn params(&self) -> &DecParams {
        self.dec_bank.params()
    }

    /// Registers a job owner: opens a funded account and binds a fresh
    /// CL public key to it (paper §IV-A1).
    pub fn register_jo<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        initial_funds: u64,
        rsa_bits: usize,
    ) -> DecJobOwner {
        let account = self.bank.open_account(initial_funds);
        let cl = ClKeyPair::generate(rng, &self.pairing);
        self.cl_bindings.insert(account, cl.public.clone());
        DecJobOwner {
            account,
            cl,
            job_key: rsa::keygen(rng, rsa_bits),
            coin: None,
            allocator: NodeAllocator::new(self.dec_bank.params().levels),
        }
    }

    /// Registers a sensing participant: opens an (empty) account and
    /// draws a one-time key pair for the job.
    pub fn register_sp<R: Rng + ?Sized>(&mut self, rng: &mut R, rsa_bits: usize) -> DecParticipant {
        let account = self.bank.open_account(0);
        DecParticipant {
            account,
            one_time: rsa::keygen(rng, rsa_bits),
        }
    }

    /// Phase 1 — job registration and bulletin publication.
    pub fn register_job(&mut self, jo: &DecJobOwner, description: &str, payment: u64) -> u64 {
        let pseudonym = jo.job_key.public.to_bytes();
        let size = wire::framed_len(
            Party::Jo,
            &MaRequest::PublishJob {
                description: description.to_string(),
                payment,
                pseudonym: pseudonym.clone(),
            },
        );
        self.traffic
            .record(Party::Jo, Party::Ma, "job-registration", size);
        self.bulletin
            .publish(description.to_string(), payment, pseudonym)
    }

    /// Phase 2 — money withdrawal: CL-authenticated debit of `2^L`
    /// plus blind issuance of the coin.
    pub fn withdraw<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        jo: &mut DecJobOwner,
    ) -> Result<(), MarketError> {
        // JO authenticates the withdrawal request by CL-signing a
        // fresh nonce under its account-bound key.
        self.withdraw_nonce += 1;
        let nonce = self.withdraw_nonce.to_be_bytes();
        let auth = jo.cl.sign_bytes(rng, &self.pairing, &nonce);
        self.metrics.count(Party::Jo, Op::Enc); // CL signature

        let bound = self
            .cl_bindings
            .get(&jo.account)
            .ok_or(MarketError::NoSuchAccount)?;
        if !auth.verify_bytes(&self.pairing, bound, &nonce) {
            return Err(MarketError::BadAuthentication);
        }
        self.metrics.count(Party::Ma, Op::Dec); // CL verification

        let face = self.params().face_value();
        self.bank.debit(jo.account, face)?;

        // Blind issuance: JO mints, blinds, bank signs, JO unblinds.
        let mut coin = Coin::mint(rng, self.params());
        self.metrics.count(Party::Jo, Op::Hash); // coin token
        let (blinded, factor) = coin.blind_token(rng, self.dec_bank.public_key());
        self.metrics.count(Party::Jo, Op::Enc); // blinding exponentiation
        self.traffic.record(
            Party::Jo,
            Party::Ma,
            "withdrawal-request",
            wire::framed_len(
                Party::Jo,
                &MaRequest::Withdraw {
                    account: jo.account,
                    nonce: self.withdraw_nonce,
                    auth: auth.clone(),
                    blinded: blinded.clone(),
                },
            ),
        );

        let sig = self.dec_bank.sign_blinded(&blinded);
        self.metrics.count(Party::Ma, Op::Enc); // bank blind signature
        self.traffic.record(
            Party::Ma,
            Party::Jo,
            "e-cash",
            wire::framed_len(Party::Ma, &MaResponse::BlindSignature(sig.clone())),
        );

        if !coin.attach_signature(self.dec_bank.public_key(), &sig, &factor) {
            return Err(MarketError::BadCoin("bank signature did not verify".into()));
        }
        self.metrics.count(Party::Jo, Op::Dec); // unblind + verify
        jo.coin = Some(coin);
        jo.allocator = NodeAllocator::new(self.params().levels);
        Ok(())
    }

    /// Phase 4 — labor registration: SP's one-time key travels
    /// `SP → MA → JO`.
    pub fn labor_registration(&mut self, sp: &DecParticipant) -> Vec<u8> {
        let pk = sp.pseudonym();
        self.traffic.record(
            Party::Sp,
            Party::Ma,
            "labor-registration",
            wire::framed_len(
                Party::Sp,
                &MaRequest::LaborRegister {
                    job_id: 0,
                    sp_pubkey: pk.clone(),
                },
            ),
        );
        self.traffic.record(
            Party::Ma,
            Party::Jo,
            "labor-forward",
            wire::framed_len(Party::Ma, &MaResponse::Labor(vec![pk.clone()])),
        );
        pk
    }

    /// Phases 3+5 — cash break and payment submission: breaks `w`,
    /// builds the bundle (real spends + fakes), signs the receiver's
    /// key and encrypts everything under it (paper eqs. (7)–(8)).
    /// Returns the ciphertext held by the MA and the bundle stats.
    #[allow(clippy::type_complexity)]
    pub fn submit_payment<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        jo: &mut DecJobOwner,
        sp_pubkey_bytes: &[u8],
        w: u64,
        strategy: CashBreak,
    ) -> Result<(Vec<u8>, usize, usize), MarketError> {
        let params = self.params().clone();
        let coin = jo
            .coin
            .as_ref()
            .ok_or(MarketError::BadCoin("no coin withdrawn".into()))?;
        if jo.allocator.remaining() < w {
            return Err(MarketError::InsufficientFunds);
        }

        let plan = plan_break(strategy, w, params.levels)?;
        let bank_sig_bytes = self.dec_bank.public_key().size_bytes();
        let items = build_payment_with(
            rng,
            &params,
            coin,
            &plan,
            b"",
            bank_sig_bytes,
            &mut jo.allocator,
        )?;
        let real = items
            .iter()
            .filter(|i| matches!(i, PaymentItem::Real(_)))
            .count();
        let fake = items.len() - real;
        // Every real spend carries 1 Stadler + 1 linked-repr +
        // (depth−1) OR proofs.
        for item in &items {
            if let PaymentItem::Real(s) = item {
                self.metrics.add(Party::Jo, Op::Zkp, (s.depth() + 1) as u64);
            }
        }
        // Designated-receiver signature on the SP's one-time key.
        let sig = rsa::sign(&jo.job_key, sp_pubkey_bytes);
        self.metrics.count(Party::Jo, Op::Enc);
        self.metrics.count(Party::Jo, Op::Hash);

        // Bundle + signature, encrypted under rpk_sp.
        let mut payload = encode_payment(&items);
        let sig_bytes = sig.to_bytes_be();
        payload.extend_from_slice(&(sig_bytes.len() as u32).to_be_bytes());
        payload.extend_from_slice(&sig_bytes);

        let sp_pk = ppms_crypto::rsa::RsaPublicKey::from_bytes(sp_pubkey_bytes)
            .ok_or(MarketError::BadPayload("sp public key".into()))?;
        let ciphertext = rsa::encrypt(rng, &sp_pk, &payload);
        self.metrics.count(Party::Jo, Op::Enc);

        self.traffic.record(
            Party::Jo,
            Party::Ma,
            "payment-submission",
            wire::framed_len(
                Party::Jo,
                &MaRequest::SubmitPayment {
                    sp_pubkey: sp_pubkey_bytes.to_vec(),
                    ciphertext: ciphertext.clone(),
                },
            ),
        );
        Ok((ciphertext, real, fake))
    }

    /// Phase 6 — data submission (SP → MA) and delivery (MA → JO).
    pub fn submit_data(&mut self, sp: &DecParticipant, job_id: u64, data: &[u8]) {
        self.traffic.record(
            Party::Sp,
            Party::Ma,
            "data-report",
            wire::framed_len(
                Party::Sp,
                &MaRequest::SubmitData {
                    job_id,
                    sp_pubkey: sp.pseudonym(),
                    data: data.to_vec(),
                },
            ),
        );
        self.traffic.record(
            Party::Ma,
            Party::Jo,
            "data-delivery",
            wire::framed_len(Party::Ma, &MaResponse::Data(vec![data.to_vec()])),
        );
    }

    /// Phase 7 — payment delivery: MA forwards the ciphertext.
    pub fn deliver_payment(&mut self, ciphertext: &[u8]) {
        self.traffic.record(
            Party::Ma,
            Party::Sp,
            "payment-delivery",
            wire::framed_len(Party::Ma, &MaResponse::Payment(Some(ciphertext.to_vec()))),
        );
    }

    /// Phase 8 — the SP opens the payment, verifies designation and
    /// coins, then deposits every valid spend under its account.
    /// Returns the credited total and the deposit value stream the MA
    /// observed.
    pub fn deposit_payment(
        &mut self,
        sp: &DecParticipant,
        jo_job_pubkey: &ppms_crypto::rsa::RsaPublicKey,
        ciphertext: &[u8],
    ) -> Result<(u64, Vec<u64>), MarketError> {
        // Decrypt (eq. (10)).
        let payload = rsa::decrypt(&sp.one_time, ciphertext)
            .map_err(|_| MarketError::BadPayload("decrypt".into()))?;
        self.metrics.count(Party::Sp, Op::Dec);

        // Split bundle / signature (eq. (10)).
        let (items, sig) = split_bundle_and_sig(&payload)?;

        // Verify the designation signature (paper: "SP verifies the
        // validity of the sig using the JO's public key").
        if !rsa::verify(jo_job_pubkey, &sp.pseudonym(), &sig) {
            return Err(MarketError::BadPayload("designation signature".into()));
        }
        self.metrics.count(Party::Sp, Op::Dec);
        self.metrics.count(Party::Sp, Op::Hash);

        // Verify coins; fakes drop out here (paper §IV-A4).
        let params = self.params().clone();
        let bank_pk = self.dec_bank.public_key().clone();
        let mut valid = Vec::new();
        for item in &items {
            if let PaymentItem::Real(spend) = item {
                if spend.verify(&params, &bank_pk, b"").is_ok() {
                    self.metrics
                        .add(Party::Sp, Op::Zkp, (spend.depth() + 1) as u64);
                    valid.push(spend.clone());
                }
                self.metrics.count(Party::Sp, Op::Dec);
            }
        }

        // Deposit one by one (paper: "waits a random period of time
        // between two consecutive deposits" — timing simulated by the
        // market simulator; here we record the value stream).
        let mut credited = 0;
        let mut stream = Vec::new();
        for spend in &valid {
            // One deposit on the wire is a batch of one (the unified
            // service path); the SP still spaces deposits out, so each
            // spend pays its own envelope.
            let size = wire::framed_len(
                Party::Sp,
                &MaRequest::DepositBatch {
                    account: sp.account,
                    spends: vec![spend.clone()],
                },
            );
            self.traffic.record(Party::Sp, Party::Ma, "deposit", size);
            let value = self.dec_bank.deposit(spend, b"")?;
            self.metrics
                .add(Party::Ma, Op::Zkp, (spend.depth() + 1) as u64);
            self.metrics.count(Party::Ma, Op::Dec);
            self.bank.credit(sp.account, value)?;
            credited += value;
            stream.push(value);
        }
        Ok((credited, stream))
    }

    /// Optional change redemption: the JO deposits the coin's unspent
    /// nodes back into its own account.
    ///
    /// **Privacy warning** (documented deviation): all spends of one
    /// coin share the root tag `R`, so redeeming change under the JO's
    /// account lets the bank link `R` — and therefore every SP deposit
    /// of this coin — to the JO. Keep change for future payments
    /// instead when transaction-linkage privacy matters.
    pub fn redeem_change<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        jo: &mut DecJobOwner,
    ) -> Result<u64, MarketError> {
        let params = self.params().clone();
        let coin = jo
            .coin
            .as_ref()
            .ok_or(MarketError::BadCoin("no coin".into()))?;
        let nodes = jo.allocator.free_nodes();
        let mut total = 0;
        for path in &nodes {
            let spend = coin.spend(rng, &params, path, b"");
            self.metrics
                .add(Party::Jo, Op::Zkp, (spend.depth() + 1) as u64);
            let value = self.dec_bank.deposit(&spend, b"")?;
            self.bank.credit(jo.account, value)?;
            total += value;
        }
        jo.coin = None;
        jo.allocator = NodeAllocator::new(params.levels);
        Ok(total)
    }

    /// Runs one complete PPMSdec round (paper Algorithm 1).
    #[allow(clippy::too_many_arguments)] // one parameter per protocol input
    pub fn run_round<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        jo: &mut DecJobOwner,
        sp: &DecParticipant,
        description: &str,
        w: u64,
        strategy: CashBreak,
        data: &[u8],
    ) -> Result<DecRoundOutcome, MarketError> {
        let job_id = self.register_job(jo, description, w);
        if jo.coin.is_none() || jo.change_value(self.params()) < w {
            self.withdraw(rng, jo)?;
        }
        let sp_pk = self.labor_registration(sp);
        let (ciphertext, real, fake) = self.submit_payment(rng, jo, &sp_pk, w, strategy)?;
        self.submit_data(sp, job_id, data);
        self.deliver_payment(&ciphertext);
        let (credited, deposit_stream) =
            self.deposit_payment(sp, &jo.job_key.public, &ciphertext)?;
        Ok(DecRoundOutcome {
            job_id,
            credited,
            real_coins: real,
            fake_coins: fake,
            deposit_stream,
        })
    }
}

/// Splits `encode_payment(items) || len(sig) || sig` back apart.
fn split_bundle_and_sig(
    payload: &[u8],
) -> Result<(Vec<PaymentItem>, ppms_bigint::BigUint), MarketError> {
    // The bundle is self-delimiting; try progressively shorter
    // prefixes is wasteful, so parse structurally: decode_payment on
    // the full buffer fails (trailing sig), so walk the frame manually.
    // Layout: [u32 count] ([u8 tag][u32 len][bytes])* [u32 sig_len][sig]
    if payload.len() < 4 {
        return Err(MarketError::BadPayload("framing".into()));
    }
    let count = u32::from_be_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
    let mut off = 4;
    for _ in 0..count {
        if payload.len() < off + 5 {
            return Err(MarketError::BadPayload("framing".into()));
        }
        let len =
            u32::from_be_bytes(payload[off + 1..off + 5].try_into().expect("4 bytes")) as usize;
        off += 5 + len;
    }
    if payload.len() < off + 4 {
        return Err(MarketError::BadPayload("framing".into()));
    }
    let bundle = &payload[..off];
    let sig_len = u32::from_be_bytes(payload[off..off + 4].try_into().expect("4 bytes")) as usize;
    if payload.len() != off + 4 + sig_len {
        return Err(MarketError::BadPayload("framing".into()));
    }
    let sig = ppms_bigint::BigUint::from_bytes_be(&payload[off + 4..]);
    let items = decode_payment(bundle).map_err(|_| MarketError::BadPayload("bundle".into()))?;
    Ok((items, sig))
}
