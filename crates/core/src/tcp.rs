//! The **TCP front door**: the first transport backend where bytes
//! actually cross a socket, plus the matching client-side
//! [`Transport`].
//!
//! ## Server: a hand-rolled non-blocking reactor
//!
//! The offline crate allowlist has no tokio/mio, so readiness is a
//! polling loop over `std::net` sockets in non-blocking mode: each
//! tick accepts new connections (up to `max_connections`), reads
//! every socket until `WouldBlock` feeding the per-connection
//! stratum-2 [`FrameDecoder`], dispatches complete frames, polls the
//! in-flight replies from the shard workers, and drains the
//! per-connection [`WriteQueue`]s. When a full tick makes no
//! progress, the reactor sleeps `idle_sleep` — busy enough for
//! loopback latency, idle enough not to burn a core.
//!
//! Overload policy (all observable via the service registry):
//!
//! * **Connection limit** — sockets beyond `max_connections` are
//!   refused on accept (`tcp.refused`).
//! * **Load shedding** — a request that cannot enter the service
//!   inbox without blocking (or that would exceed the per-connection
//!   in-flight cap) is answered immediately with
//!   [`MaResponse::Busy`] / [`GateResponse::Busy`] (`tcp.shed`); the
//!   reactor never blocks on a full queue, so a saturated service
//!   slows its clients instead of growing its own memory.
//! * **Slow-client eviction** — responses queue per connection in a
//!   byte-capped [`WriteQueue`]; a client that stops reading until
//!   the cap would be exceeded is disconnected (`tcp.evicted`).
//!
//! ## Admission
//!
//! Every connection starts unadmitted. The only things an unadmitted
//! peer can get out of the reactor are a [`GateResponse::Challenge`]
//! or a denial — `App` frames without a valid session token never
//! reach `inbox.try_send`, so no shard handler ever runs on behalf of
//! an unpaid connection. See [`crate::gate`] for the protocol and the
//! coin economics.

use crate::error::MarketError;
use crate::frame::{FrameDecoder, FramedConn, WriteQueue};
use crate::gate::{
    denied_error, spends_for_price, AdmissionConfig, AdmissionGate, GateCheckpoint, GateRequest,
    GateResponse, OpsRequest,
};
use crate::metrics::Party;
use crate::service::{Inbound, MaRequest, MaResponse, MaService, RequestKey, ShardRouter};
use crate::stream::{ByteStream, FlakyConfig, FlakyStream, TcpByteStream};
use crate::transport::{next_request_id, next_trace_id, request_label, response_label};
use crate::transport::{TrafficLog, Transport};
use crate::wire::{Envelope, WIRE_VERSION};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use ppms_ecash::Spend;
use ppms_obs::{FlightRecorder, Span, SpanContext};
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Front-door policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Concurrent-connection cap; accepts beyond it are refused.
    pub max_connections: usize,
    /// Per-connection outbound buffer cap in bytes; exceeding it
    /// evicts the (slow) client.
    pub write_queue_bytes: usize,
    /// Largest frame body a connection may announce.
    pub max_frame_bytes: usize,
    /// Per-connection in-flight request cap; beyond it requests are
    /// shed with `Busy`.
    pub max_inflight_per_conn: usize,
    /// Admission policy.
    pub admission: AdmissionConfig,
    /// Reactor sleep when a tick makes no progress.
    pub idle_sleep: Duration,
    /// Sustained [`GateRequest::Ops`] rate allowed per second (token
    /// bucket). Ops queries skip admission, so without a limit they
    /// would be a free flood vector.
    pub ops_rate_per_sec: u32,
    /// Ops token-bucket burst capacity.
    pub ops_burst: u32,
    /// Requests slower than this land in the slow-request log with
    /// their span tree.
    pub slow_request_threshold: Duration,
    /// How many slow-request entries the log retains (FIFO).
    pub slow_log_capacity: usize,
    /// Test hook: panic inside the reactor on the *first* frame that
    /// arrives with this trace id (the hook disarms itself, so the
    /// caller's retry goes through) — exercises the panic dump and
    /// resume path end to end.
    pub chaos_panic_on_trace: Option<u64>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_connections: 64,
            write_queue_bytes: 256 * 1024,
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            max_inflight_per_conn: 32,
            admission: AdmissionConfig::default(),
            idle_sleep: Duration::from_micros(200),
            ops_rate_per_sec: 100,
            ops_burst: 20,
            slow_request_threshold: Duration::from_millis(250),
            slow_log_capacity: 64,
            chaos_panic_on_trace: None,
        }
    }
}

/// One accepted connection's reactor state.
struct Conn {
    stream: TcpByteStream,
    decoder: FrameDecoder,
    outq: WriteQueue,
    /// Requests currently inside the service on this connection's
    /// behalf.
    inflight: usize,
    /// Set when the connection must be torn down after the current
    /// tick (protocol violation, eviction, peer close).
    dead: bool,
}

/// What a pending reply, once it arrives, should be turned into.
enum PendingKind {
    /// An application request: wrap the response in
    /// [`GateResponse::App`]. Carries the session token for refunds.
    App,
    /// An admission deposit for `presented` spends: judge the verdict
    /// through the gate.
    Admit { presented: usize },
}

/// A request dispatched into the service whose reply has not yet
/// arrived.
struct Pending {
    conn_id: u64,
    key: RequestKey,
    /// The *client's* span context from the request envelope — replies
    /// and the slow-request log attribute to the caller's trace, not
    /// to the reactor's internal read span.
    ctx: SpanContext,
    kind: PendingKind,
    rx: Receiver<MaResponse>,
    started: Instant,
}

/// Handle to a running TCP front door. Dropping it stops the reactor
/// and joins the thread.
pub struct TcpFrontDoor {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    obs: ppms_obs::Registry,
    /// Crash-dump files written by the reactor on panic, in order.
    dumps: Arc<Mutex<Vec<PathBuf>>>,
}

impl TcpFrontDoor {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`), registers the gate's
    /// revenue account with the service, and spawns the reactor
    /// thread. All front-door metrics land in the service's own
    /// registry (`tcp.*`, `gate.*`), so one
    /// [`MaService::obs_snapshot`] covers the whole stack.
    pub fn spawn(svc: &MaService, bind: &str, config: TcpConfig) -> io::Result<TcpFrontDoor> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Recovery path first: a service recovered from a snapshot
        // that includes gate state hands it over exactly once, and
        // the restored gate carries its own revenue account, paid
        // sessions and admission verdicts — re-registering a fresh
        // account would strand the accrued fees.
        let gate = match svc.take_recovered_gate() {
            Some(blob) => {
                let mut gate =
                    AdmissionGate::new(config.admission, crate::bank::AccountId(0), &svc.obs);
                gate.restore_state(&blob).map_err(|e| {
                    io::Error::other(format!("recovered gate state does not decode: {e}"))
                })?;
                gate
            }
            None => {
                // The admission fees need somewhere to accrue: an
                // ordinary SP-style account owned by the MA itself,
                // registered through the ordinary path.
                let revenue_account = match svc.client().try_call(MaRequest::RegisterSpAccount) {
                    Ok(MaResponse::Account(id)) => id,
                    other => {
                        return Err(io::Error::other(format!(
                            "could not register gate revenue account: {other:?}"
                        )));
                    }
                };
                AdmissionGate::new(config.admission, revenue_account, &svc.obs)
            }
        };

        // Checkpoints want the gate's state in the snapshot; the
        // reactor owns the gate outright, so hand the dispatcher a
        // polling rendezvous instead of a lock.
        let gate_hook = Arc::new(GateCheckpoint::new());
        svc.attach_gate_checkpoint(gate_hook.clone());

        let stop = Arc::new(AtomicBool::new(false));
        let dumps = Arc::new(Mutex::new(Vec::new()));
        let mut reactor = Reactor {
            listener,
            config,
            inbox: svc.inbox(),
            router: svc.router(),
            gate,
            gate_hook,
            traffic: svc.traffic.clone(),
            conns: HashMap::new(),
            pending: Vec::new(),
            next_conn_id: 1,
            next_msg_id: 1,
            reply_scratch: Vec::new(),
            stop: stop.clone(),
            obs: svc.obs.clone(),
            recorder: Arc::new(FlightRecorder::new("tcp-reactor", 256)),
            dumps: dumps.clone(),
            started: Instant::now(),
            ops_tokens: config.ops_burst as f64,
            ops_refilled: Instant::now(),
            slow_log: VecDeque::new(),
            accepted: svc.obs.counter("tcp.accepted"),
            refused: svc.obs.counter("tcp.refused"),
            evicted: svc.obs.counter("tcp.evicted"),
            shed: svc.obs.counter("tcp.shed"),
            bad_frames: svc.obs.counter("tcp.bad_frames"),
            ops_served: svc.obs.counter("tcp.ops"),
            ops_limited: svc.obs.counter("tcp.ops_limited"),
            slow_requests: svc.obs.counter("tcp.slow_requests"),
            reactor_panics: svc.obs.counter("tcp.reactor_panics"),
            connections: svc.obs.gauge("tcp.connections"),
            request_ns: svc.obs.histogram("tcp.request_ns"),
            queue_fill: svc.obs.histogram("tcp.write_queue_fill"),
            frames_per_tick: svc.obs.histogram("tcp.frames_per_tick"),
        };
        let handle = std::thread::Builder::new()
            .name("tcp-front-door".into())
            .spawn(move || reactor.run())?;
        Ok(TcpFrontDoor {
            addr,
            stop,
            handle: Some(handle),
            obs: svc.obs.clone(),
            dumps,
        })
    }

    /// The bound listen address (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time snapshot of everything observable about the
    /// stack: the service registry the front door records into
    /// (`tcp.*`, `gate.*`, per-op latencies, WAL timings) merged with
    /// the process-global registry (storage gauges and anything else
    /// recorded outside the service). Same view the ops plane serves.
    pub fn obs_snapshot(&self) -> ppms_obs::Snapshot {
        self.obs.snapshot().merge(&ppms_obs::global().snapshot())
    }

    /// Crash-dump files the reactor wrote after in-reactor panics
    /// (empty when it never panicked).
    pub fn crash_dumps(&self) -> Vec<PathBuf> {
        self.dumps.lock().clone()
    }

    /// Stops the reactor and joins its thread. Called by `Drop`;
    /// explicit form for tests that want the join to finish first.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpFrontDoor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Reactor {
    listener: TcpListener,
    config: TcpConfig,
    /// Supervised fallback path for whatever the router hands back.
    inbox: Sender<Inbound>,
    /// Direct route into the shard queues — skips the dispatcher
    /// thread hop on the hot path.
    router: ShardRouter,
    gate: AdmissionGate,
    /// Checkpoint rendezvous: polled once per tick; when the
    /// dispatcher requests it, the reactor exports the gate state.
    gate_hook: Arc<GateCheckpoint>,
    traffic: TrafficLog,
    conns: HashMap<u64, Conn>,
    pending: Vec<Pending>,
    next_conn_id: u64,
    next_msg_id: u64,
    /// Reusable reply-encoding scratch (see `send_gate`).
    reply_scratch: Vec<u8>,
    stop: Arc<AtomicBool>,
    /// Service registry handle — the ops plane snapshots it (merged
    /// with the process-global registry) without leaving the reactor.
    obs: ppms_obs::Registry,
    /// Last-events ring for the reactor itself; dumped on panic like
    /// a shard worker's recorder.
    recorder: Arc<FlightRecorder>,
    dumps: Arc<Mutex<Vec<PathBuf>>>,
    started: Instant,
    /// Ops token bucket: refilled at `ops_rate_per_sec`, capped at
    /// `ops_burst`.
    ops_tokens: f64,
    ops_refilled: Instant,
    /// Slow-request log: rendered JSON entries, oldest evicted first.
    slow_log: VecDeque<String>,
    accepted: Arc<ppms_obs::Counter>,
    refused: Arc<ppms_obs::Counter>,
    evicted: Arc<ppms_obs::Counter>,
    shed: Arc<ppms_obs::Counter>,
    bad_frames: Arc<ppms_obs::Counter>,
    ops_served: Arc<ppms_obs::Counter>,
    ops_limited: Arc<ppms_obs::Counter>,
    slow_requests: Arc<ppms_obs::Counter>,
    reactor_panics: Arc<ppms_obs::Counter>,
    connections: Arc<ppms_obs::Gauge>,
    request_ns: Arc<ppms_obs::Histogram>,
    queue_fill: Arc<ppms_obs::Histogram>,
    /// Whole frames decoded from one connection in one read tick —
    /// the reactor-side coalescing evidence (DESIGN.md §16).
    frames_per_tick: Arc<ppms_obs::Histogram>,
}

impl Reactor {
    fn run(&mut self) {
        // The reactor thread is the front door's single point of
        // failure, so a panic anywhere in a tick (a handler bug, the
        // chaos hook) is caught, dumped — flight-recorder events plus
        // the in-flight span ring — and the loop resumes. A panic
        // *storm* (something deterministically broken) stops the
        // reactor instead of spinning the dump path forever.
        let mut panics = 0u32;
        while !self.stop.load(Ordering::SeqCst) {
            match std::panic::catch_unwind(AssertUnwindSafe(|| self.tick())) {
                Ok(progress) => {
                    if !progress {
                        std::thread::sleep(self.config.idle_sleep);
                    }
                }
                Err(_) => {
                    panics += 1;
                    self.reactor_panics.inc();
                    let snap = self.obs.snapshot().merge(&ppms_obs::global().snapshot());
                    if let Ok(path) = self.recorder.dump("tcp-reactor-panic", &snap) {
                        eprintln!("flight-recorder dump: {}", path.display());
                        self.dumps.lock().push(path);
                    }
                    if panics >= 8 {
                        break;
                    }
                }
            }
        }
        // Tear every connection down on the way out.
        for conn in self.conns.values_mut() {
            conn.stream.shutdown();
        }
        self.conns.clear();
        self.connections.set(0);
    }

    /// One reactor iteration; `true` when any sub-tick made progress.
    fn tick(&mut self) -> bool {
        if self.gate_hook.pending() {
            self.gate_hook.fulfill(self.gate.export_state());
        }
        let mut progress = false;
        progress |= self.accept_tick();
        progress |= self.read_tick();
        progress |= self.reply_tick();
        progress |= self.write_tick();
        self.bury_dead();
        progress
    }

    fn accept_tick(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if self.conns.len() >= self.config.max_connections {
                        self.refused.inc();
                        drop(stream); // refused: close immediately
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        self.refused.inc();
                        continue;
                    }
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream: TcpByteStream(stream),
                            decoder: FrameDecoder::new(self.config.max_frame_bytes),
                            outq: WriteQueue::new(self.config.write_queue_bytes),
                            inflight: 0,
                            dead: false,
                        },
                    );
                    self.accepted.inc();
                    self.connections.set(self.conns.len() as i64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        progress
    }

    fn read_tick(&mut self) -> bool {
        let mut progress = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        let mut buf = [0u8; 8192];
        for id in ids {
            // Read until WouldBlock.
            loop {
                let conn = self.conns.get_mut(&id).expect("conn exists");
                if conn.dead {
                    break;
                }
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        conn.decoder.push(&buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            // Drain complete frames, decoding each envelope *in place*
            // from the connection buffer: `next_frame` yields a slice
            // borrowed from the decoder's reassembly buffer (no
            // per-frame copy — the zero-copy hot path pinned by
            // `tests/frame_alloc.rs`), and only the owned envelope
            // leaves the borrow before dispatch.
            let mut frames = 0u64;
            loop {
                let conn = self.conns.get_mut(&id).expect("conn exists");
                if conn.dead {
                    break;
                }
                let decoded = match conn.decoder.next_frame() {
                    Ok(Some(frame)) => match Envelope::<GateRequest>::from_bytes(frame) {
                        Ok(env) => Some((env, frame.len())),
                        Err(_) => None,
                    },
                    Ok(None) => break,
                    Err(_) => None,
                };
                match decoded {
                    Some((env, frame_len)) => {
                        progress = true;
                        frames += 1;
                        self.handle_envelope(id, env, frame_len);
                    }
                    None => {
                        // Desynchronized or undecodable: unrecoverable.
                        self.bad_frames.inc();
                        self.conns.get_mut(&id).expect("conn exists").dead = true;
                        break;
                    }
                }
            }
            if frames > 0 {
                // Coalescing evidence: how many whole requests one
                // drained connection contributed to this tick.
                self.frames_per_tick.record(frames);
            }
        }
        progress
    }

    /// Hands a request to the service: direct into its shard's queue
    /// when possible, through the supervised dispatcher inbox when the
    /// router declines (full/dead shard queue, service still spawning).
    // The Err variant carries the moved-back request for the Busy
    // reply; boxing it would allocate on the zero-alloc hot path.
    #[allow(clippy::result_large_err)]
    fn submit(&mut self, inbound: Inbound) -> Result<(), TrySendError<Inbound>> {
        match self.router.try_route(inbound) {
            Ok(()) => Ok(()),
            Err(inbound) => self.inbox.try_send(inbound),
        }
    }

    fn handle_envelope(&mut self, conn_id: u64, env: Envelope<GateRequest>, frame_len: usize) {
        if self.config.chaos_panic_on_trace == Some(env.trace_id) && env.trace_id != 0 {
            // Disarm before unwinding: the hook fires exactly once, so
            // the caller's retransmit of the same trace succeeds.
            self.config.chaos_panic_on_trace = None;
            self.recorder.record(env.trace_id, "chaos-panic", || {
                format!("conn={conn_id} msg={}", env.msg_id)
            });
            panic!("chaos: injected reactor panic on trace {:#x}", env.trace_id);
        }
        let party = env.party;
        let key = RequestKey {
            party,
            request_id: env.msg_id,
        };
        // The frame's span context is the *client's* attempt span; the
        // reactor's own read phase is a child of it, and everything
        // the request causes downstream (gate check, shard handler,
        // WAL appends) parents under the read span — one causal tree
        // per client attempt, shared across retransmits only at the
        // trace level.
        let ctx = env.span_ctx();
        let read_span = Span::child("tcp.read", ctx);
        let read_ctx = read_span.ctx();
        self.recorder.record(env.trace_id, "frame", || {
            format!("conn={conn_id} party={party:?} msg={}", env.msg_id)
        });
        match env.payload {
            GateRequest::Hello => {
                self.traffic
                    .record(party, Party::Ma, "gate-hello", frame_len);
                let resp = if self.gate.config().price == 0 {
                    self.gate.mint()
                } else {
                    self.gate.challenge()
                };
                self.send_gate(conn_id, party, key.request_id, ctx, resp);
            }
            GateRequest::Admit { spends } => {
                self.traffic
                    .record(party, Party::Ma, "gate-admit", frame_len);
                let gate_span = Span::child("gate.admit", read_ctx);
                if let Some(cached) = self.gate.cached_admission(key) {
                    // Retransmitted Admit: replay the recorded verdict
                    // (same token), no second deposit.
                    drop(gate_span);
                    self.send_gate(conn_id, party, key.request_id, ctx, cached);
                    return;
                }
                let presented = spends.len();
                let request = self.gate.deposit_request(spends);
                drop(gate_span);
                let (reply_tx, reply_rx) = channel::bounded(1);
                let inbound = Inbound {
                    key: Some(key),
                    span: read_ctx,
                    request,
                    reply: reply_tx,
                };
                match self.submit(inbound) {
                    Ok(()) => self.pending.push(Pending {
                        conn_id,
                        key,
                        ctx,
                        kind: PendingKind::Admit { presented },
                        rx: reply_rx,
                        started: Instant::now(),
                    }),
                    Err(_) => {
                        self.shed.inc();
                        self.send_gate(conn_id, party, key.request_id, ctx, GateResponse::Busy);
                    }
                }
            }
            GateRequest::App { token, request } => {
                self.traffic
                    .record(party, Party::Ma, request_label(&request), frame_len);
                if matches!(request, MaRequest::Shutdown) {
                    // The dispatcher-stopping control message is an
                    // in-process privilege; from the network it would
                    // let any paying client kill the market.
                    self.send_gate(
                        conn_id,
                        party,
                        key.request_id,
                        ctx,
                        GateResponse::Denied {
                            reason: "shutdown is not accepted from the network".into(),
                        },
                    );
                    return;
                }
                let admitted = {
                    let _gate_span = Span::child("gate.check", read_ctx);
                    self.gate.consume(token)
                };
                if !admitted {
                    // Unknown or exhausted token: the request never
                    // reaches the inbox — re-challenge.
                    let resp = self.gate.challenge();
                    self.send_gate(conn_id, party, key.request_id, ctx, resp);
                    return;
                }
                let inflight = self
                    .conns
                    .get(&conn_id)
                    .map(|c| c.inflight)
                    .unwrap_or(usize::MAX);
                if inflight >= self.config.max_inflight_per_conn {
                    self.gate.refund(token);
                    self.shed.inc();
                    self.send_gate(
                        conn_id,
                        party,
                        key.request_id,
                        ctx,
                        GateResponse::App(MaResponse::Busy),
                    );
                    return;
                }
                let (reply_tx, reply_rx) = channel::bounded(1);
                let inbound = Inbound {
                    key: Some(key),
                    span: read_ctx,
                    request,
                    reply: reply_tx,
                };
                match self.submit(inbound) {
                    Ok(()) => {
                        if let Some(conn) = self.conns.get_mut(&conn_id) {
                            conn.inflight += 1;
                        }
                        self.pending.push(Pending {
                            conn_id,
                            key,
                            ctx,
                            kind: PendingKind::App,
                            rx: reply_rx,
                            started: Instant::now(),
                        });
                    }
                    Err(TrySendError::Full(_)) => {
                        self.gate.refund(token);
                        self.shed.inc();
                        self.send_gate(
                            conn_id,
                            party,
                            key.request_id,
                            ctx,
                            GateResponse::App(MaResponse::Busy),
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.send_gate(
                            conn_id,
                            party,
                            key.request_id,
                            ctx,
                            GateResponse::App(MaResponse::Err(MarketError::Transport(
                                "service stopped".into(),
                            ))),
                        );
                    }
                }
            }
            GateRequest::Ops(op) => {
                self.traffic.record(party, Party::Ma, "ops", frame_len);
                // Admission-exempt but rate-limited: refill the token
                // bucket, then either serve from reactor-local state
                // or shed with Busy. Never touches a shard.
                let elapsed = self.ops_refilled.elapsed().as_secs_f64();
                self.ops_refilled = Instant::now();
                self.ops_tokens = (self.ops_tokens
                    + elapsed * f64::from(self.config.ops_rate_per_sec))
                .min(f64::from(self.config.ops_burst));
                if self.ops_tokens < 1.0 {
                    self.ops_limited.inc();
                    self.send_gate(conn_id, party, key.request_id, ctx, GateResponse::Busy);
                    return;
                }
                self.ops_tokens -= 1.0;
                self.ops_served.inc();
                let _ops_span = Span::child("tcp.ops", read_ctx);
                let body = match op {
                    OpsRequest::Health => self.health_json(),
                    OpsRequest::MetricsJson => self
                        .obs
                        .snapshot()
                        .merge(&ppms_obs::global().snapshot())
                        .to_json(),
                    OpsRequest::MetricsText => self
                        .obs
                        .snapshot()
                        .merge(&ppms_obs::global().snapshot())
                        .to_prometheus(),
                    OpsRequest::SlowLog => {
                        let entries: Vec<&str> = self.slow_log.iter().map(String::as_str).collect();
                        format!("[{}]", entries.join(","))
                    }
                };
                self.send_gate(
                    conn_id,
                    party,
                    key.request_id,
                    ctx,
                    GateResponse::Ops { body },
                );
            }
        }
    }

    /// The health/readiness body: liveness is implied by answering at
    /// all; readiness is `status == "ok"` (a stopping reactor reports
    /// `"stopping"` so a scraper can drain it from rotation).
    fn health_json(&self) -> String {
        let status = if self.stop.load(Ordering::SeqCst) {
            "stopping"
        } else {
            "ok"
        };
        format!(
            "{{\"status\":\"{}\",\"uptime_ms\":{},\"connections\":{},\"inflight\":{},\
             \"slow_log_entries\":{}}}",
            status,
            self.started.elapsed().as_millis(),
            self.conns.len(),
            self.pending.len(),
            self.slow_log.len()
        )
    }

    fn reply_tick(&mut self) -> bool {
        let mut progress = false;
        let mut done = Vec::new();
        for (i, p) in self.pending.iter().enumerate() {
            match p.rx.try_recv() {
                Ok(resp) => done.push((i, resp)),
                Err(channel::TryRecvError::Empty) => {}
                Err(channel::TryRecvError::Disconnected) => done.push((
                    i,
                    MaResponse::Err(MarketError::Transport("shard hung up".into())),
                )),
            }
        }
        // Remove back-to-front so the collected indices stay valid.
        for (i, resp) in done.into_iter().rev() {
            progress = true;
            let p = self.pending.swap_remove(i);
            let elapsed = p.started.elapsed();
            let gate_resp = match p.kind {
                PendingKind::App => {
                    self.request_ns.record(elapsed.as_nanos() as u64);
                    if let Some(conn) = self.conns.get_mut(&p.conn_id) {
                        conn.inflight = conn.inflight.saturating_sub(1);
                    }
                    GateResponse::App(resp)
                }
                PendingKind::Admit { presented } => {
                    self.gate.judge_deposit(p.key, presented, &resp)
                }
            };
            if elapsed >= self.config.slow_request_threshold && p.ctx.trace_id != 0 {
                self.log_slow(&p, elapsed);
            }
            self.send_gate(p.conn_id, p.key.party, p.key.request_id, p.ctx, gate_resp);
        }
        progress
    }

    /// Appends one slow-request entry — the request's identity plus
    /// its span tree as captured in the ring right now — evicting the
    /// oldest beyond `slow_log_capacity`.
    fn log_slow(&mut self, p: &Pending, elapsed: Duration) {
        self.slow_requests.inc();
        let entry = format!(
            "{{\"trace_id\":\"{:#018x}\",\"party\":\"{:?}\",\"request_id\":{},\
             \"elapsed_ns\":{},\"spans\":{}}}",
            p.ctx.trace_id,
            p.key.party,
            p.key.request_id,
            elapsed.as_nanos(),
            ppms_obs::trace_dump_json(p.ctx.trace_id)
        );
        if self.slow_log.len() >= self.config.slow_log_capacity.max(1) {
            self.slow_log.pop_front();
        }
        self.slow_log.push_back(entry);
    }

    /// Frames a gate response and queues it on the connection.
    /// Overflowing the write queue is the slow-client signal: the
    /// connection is evicted.
    fn send_gate(
        &mut self,
        conn_id: u64,
        to: Party,
        correlation_id: u64,
        ctx: SpanContext,
        resp: GateResponse,
    ) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return; // peer vanished while the request was in flight
        };
        if conn.dead {
            return;
        }
        let label = match &resp {
            GateResponse::Challenge { .. } => "gate-challenge",
            GateResponse::Admitted { .. } => "gate-admitted",
            GateResponse::Denied { .. } => "gate-denied",
            GateResponse::App(inner) => response_label(inner),
            GateResponse::Busy => "busy",
            GateResponse::Ops { .. } => "ops",
        };
        // The reply span parents under the *client's* request context
        // and its ids ride back in the response envelope, closing the
        // causal tree across the wire.
        let reply_span = Span::child("tcp.reply", ctx);
        let rctx = reply_span.ctx();
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        // Encode into the reactor's reusable scratch: the reply path
        // allocates nothing at steady state.
        self.reply_scratch.clear();
        Envelope {
            msg_id,
            correlation_id,
            trace_id: rctx.trace_id,
            span_id: rctx.span_id,
            parent_id: rctx.parent_id,
            party: Party::Ma,
            payload: resp,
        }
        .encode_append(&mut self.reply_scratch);
        let len = self.reply_scratch.len();
        match conn.outq.enqueue(&self.reply_scratch) {
            Ok(()) => {
                self.queue_fill.record(conn.outq.queued_bytes() as u64);
                self.traffic.record(Party::Ma, to, label, len);
            }
            Err(_) => {
                // Slow client: its outbound buffer is full. Evict.
                self.evicted.inc();
                conn.dead = true;
            }
        }
    }

    fn write_tick(&mut self) -> bool {
        let mut progress = false;
        for conn in self.conns.values_mut() {
            if conn.dead || conn.outq.is_empty() {
                continue;
            }
            match conn.outq.flush(&mut conn.stream) {
                Ok(n) => progress |= n > 0,
                Err(_) => conn.dead = true,
            }
        }
        progress
    }

    /// Removes connections marked dead this tick.
    fn bury_dead(&mut self) {
        let before = self.conns.len();
        self.conns.retain(|_, conn| {
            if conn.dead {
                conn.stream.shutdown();
                false
            } else {
                true
            }
        });
        if self.conns.len() != before {
            self.connections.set(self.conns.len() as i64);
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side connection knobs.
#[derive(Debug, Clone)]
pub struct TcpClientConfig {
    /// Front-door address.
    pub addr: SocketAddr,
    /// How long to wait for any single reply.
    pub reply_timeout: Duration,
    /// How many challenge/re-admit cycles one logical request may
    /// cause before giving up (covers token expiry mid-conversation).
    pub handshake_attempts: u32,
    /// Inject seeded stream tears under the framing layer (tests the
    /// redial/re-admit path; the seed is varied per dial).
    pub flaky: Option<FlakyConfig>,
    /// Wire version this client frames requests at — defaults to the
    /// current [`WIRE_VERSION`]; pinning an older version exercises
    /// mixed-version interop (a v3 client loses span ids, a v2 client
    /// loses the trace id, and the server must serve both).
    pub wire_version: u16,
}

impl TcpClientConfig {
    /// Defaults for a front door at `addr`.
    pub fn new(addr: SocketAddr) -> TcpClientConfig {
        TcpClientConfig {
            addr,
            reply_timeout: Duration::from_secs(30),
            handshake_attempts: 5,
            flaky: None,
            wire_version: WIRE_VERSION,
        }
    }
}

struct ClientState {
    conn: Option<FramedConn>,
    token: Option<u64>,
    /// Unit-value spends reserved for admission fees.
    wallet: VecDeque<Spend>,
    /// An `Admit` whose outcome we never learned: `(msg_id, spends)`.
    /// Retransmitted under the same id so the service's dedup cache
    /// (and the gate's verdict cache) replay the original admission
    /// instead of taking payment twice.
    pending_admit: Option<(u64, Vec<Spend>)>,
    dials: u64,
}

/// Stratum-3 [`Transport`] over a real TCP connection through the
/// admission gate. One transport = one connection (re-dialed lazily
/// after failures) + one wallet of admission spends + at most one
/// live session token. `Send + Sync` via an internal lock; callers
/// needing concurrency open more transports (connections are cheap on
/// the reactor side).
pub struct TcpTransport {
    config: TcpClientConfig,
    state: Mutex<ClientState>,
}

impl TcpTransport {
    /// A transport dialing `config.addr` lazily on first use.
    pub fn new(config: TcpClientConfig) -> TcpTransport {
        TcpTransport {
            config,
            state: Mutex::new(ClientState {
                conn: None,
                token: None,
                wallet: VecDeque::new(),
                pending_admit: None,
                dials: 0,
            }),
        }
    }

    /// Convenience: resolve `addr` (e.g. `"127.0.0.1:4070"`).
    pub fn dial(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "no address"))?;
        Ok(TcpTransport::new(TcpClientConfig::new(addr)))
    }

    /// Adds admission spends to the wallet. The gate charges
    /// `price` face value per admission; wallets hold unit-value
    /// leaf spends, so one admission costs `price` of them.
    pub fn load_wallet(&self, spends: Vec<Spend>) {
        self.state.lock().wallet.extend(spends);
    }

    /// Admission spends still available.
    pub fn wallet_len(&self) -> usize {
        self.state.lock().wallet.len()
    }

    fn connect(&self, state: &mut ClientState) -> Result<(), MarketError> {
        if state.conn.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.config.addr, Duration::from_secs(5))
            .map_err(|e| MarketError::Transport(format!("dial failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        // A short read timeout gives recv_frame its poll granularity;
        // the frame-level deadline is enforced above this.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
        state.dials += 1;
        let byte_stream: Box<dyn ByteStream> = match self.config.flaky {
            Some(mut cfg) => {
                // Vary the tear schedule per dial, or every reconnect
                // would die at the same byte.
                cfg.seed = cfg.seed.wrapping_add(state.dials);
                Box::new(FlakyStream::new(TcpByteStream(stream), cfg))
            }
            None => Box::new(TcpByteStream(stream)),
        };
        state.conn = Some(FramedConn::new(byte_stream));
        // A new connection does not invalidate the token (tokens are
        // gate-global bearer words), but a torn mid-handshake dial
        // may have left one half-minted; keep whatever we have and
        // let the server re-challenge if it disagrees.
        Ok(())
    }

    /// Sends one gate request and receives the correlated gate
    /// response. Any io failure tears the connection so the next call
    /// re-dials.
    fn gate_round_trip(
        &self,
        state: &mut ClientState,
        from: Party,
        msg_id: u64,
        ctx: SpanContext,
        payload: &GateRequest,
    ) -> Result<GateResponse, MarketError> {
        self.connect(state)?;
        let frame = Envelope {
            msg_id,
            correlation_id: 0,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            party: from,
            payload,
        }
        .to_bytes_versioned(self.config.wire_version)
        .map_err(|e| {
            MarketError::Transport(format!(
                "cannot frame at v{}: {e}",
                self.config.wire_version
            ))
        })?;
        let conn = state.conn.as_mut().expect("connected above");
        let result = (|| {
            conn.send_frame(&frame)?;
            let deadline = Instant::now() + self.config.reply_timeout;
            loop {
                let reply = conn.recv_frame(deadline)?;
                let env = Envelope::<GateResponse>::from_bytes(&reply)
                    .map_err(|e| MarketError::Transport(format!("bad reply frame: {e}")))?;
                if env.correlation_id == msg_id {
                    return Ok(env.payload);
                }
                // A stale reply (e.g. for a request whose first
                // attempt we gave up on): skip it.
            }
        })();
        if result.is_err() {
            // Tear the session; the next call re-dials.
            if let Some(mut conn) = state.conn.take() {
                conn.shutdown();
            }
        }
        result
    }

    /// Ensures `state.token` holds a live session token, paying the
    /// admission price from the wallet if challenged. The handshake's
    /// spans parent under `parent` — when admission happens on behalf
    /// of an application request, the Hello/Admit exchange shows up
    /// inside that request's trace instead of as orphan roots.
    fn ensure_admitted(
        &self,
        state: &mut ClientState,
        from: Party,
        parent: SpanContext,
    ) -> Result<(), MarketError> {
        if state.token.is_some() {
            return Ok(());
        }
        // Hello is read-only, so each attempt gets a fresh id.
        let hello_span = Span::child("tcp.hello", parent);
        let hello = self.gate_round_trip(
            state,
            from,
            next_request_id(),
            hello_span.ctx(),
            &GateRequest::Hello,
        )?;
        drop(hello_span);
        let price = match hello {
            GateResponse::Admitted { token, .. } => {
                state.token = Some(token);
                return Ok(());
            }
            GateResponse::Challenge { price, .. } => price,
            GateResponse::Denied { reason } => return Err(denied_error(&reason)),
            GateResponse::Busy => {
                return Err(MarketError::Transport("front door busy".into()));
            }
            GateResponse::App(_) | GateResponse::Ops { .. } => {
                return Err(MarketError::Transport("protocol confusion on Hello".into()));
            }
        };
        // Pay. A re-used pending_admit replays the exact same frame
        // (same msg_id, same spends) so a lost Admitted answer cannot
        // cost a second payment.
        let (admit_id, spends) = match state.pending_admit.take() {
            Some(pa) => pa,
            None => {
                let need = spends_for_price(price);
                if state.wallet.len() < need {
                    return Err(MarketError::BadCoin(format!(
                        "admission wallet exhausted: have {}, need {need}",
                        state.wallet.len()
                    )));
                }
                let spends: Vec<Spend> = state.wallet.drain(..need).collect();
                (next_request_id(), spends)
            }
        };
        state.pending_admit = Some((admit_id, spends.clone()));
        let admit_span = Span::child("tcp.admit", parent);
        let verdict = self.gate_round_trip(
            state,
            from,
            admit_id,
            admit_span.ctx(),
            &GateRequest::Admit { spends },
        )?;
        drop(admit_span);
        match verdict {
            GateResponse::Admitted { token, .. } => {
                state.token = Some(token);
                state.pending_admit = None;
                Ok(())
            }
            GateResponse::Denied { reason } => {
                // A definitive refusal: the coins are judged (and the
                // verdict cached server-side); replaying them is
                // pointless.
                state.pending_admit = None;
                Err(denied_error(&reason))
            }
            GateResponse::Busy => {
                // The deposit never entered the service; keep
                // pending_admit for the retry.
                Err(MarketError::Transport("front door busy".into()))
            }
            other => Err(MarketError::Transport(format!(
                "unexpected admission answer: {other:?}"
            ))),
        }
    }

    /// Runs one admission-exempt operational query against the front
    /// door and returns the rendered body. No wallet, token or
    /// admission required — this is the programmatic form of "scrape
    /// the ops plane" (the load harness calls it mid-run).
    pub fn ops(&self, op: OpsRequest) -> Result<String, MarketError> {
        let mut state = self.state.lock();
        let answer = self.gate_round_trip(
            &mut state,
            Party::Ma,
            next_request_id(),
            SpanContext::from_trace(next_trace_id()),
            &GateRequest::Ops(op),
        )?;
        match answer {
            GateResponse::Ops { body } => Ok(body),
            GateResponse::Busy => Err(MarketError::Transport(
                "ops query rate-limited; retry later".into(),
            )),
            other => Err(MarketError::Transport(format!(
                "unexpected ops answer: {other:?}"
            ))),
        }
    }
}

impl Transport for TcpTransport {
    fn round_trip_keyed(
        &self,
        from: Party,
        request_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_traced(from, request_id, next_trace_id(), request)
    }

    fn round_trip_traced(
        &self,
        from: Party,
        request_id: u64,
        trace_id: u64,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        self.round_trip_spanned(from, request_id, SpanContext::from_trace(trace_id), request)
    }

    fn round_trip_spanned(
        &self,
        from: Party,
        request_id: u64,
        ctx: SpanContext,
        request: MaRequest,
    ) -> Result<MaResponse, MarketError> {
        let mut state = self.state.lock();
        for _ in 0..self.config.handshake_attempts.max(1) {
            self.ensure_admitted(&mut state, from, ctx)?;
            let token = state.token.expect("admitted above");
            let answer = self.gate_round_trip(
                &mut state,
                from,
                request_id,
                ctx,
                &GateRequest::App {
                    token,
                    request: request.clone(),
                },
            )?;
            match answer {
                GateResponse::App(MaResponse::Busy) | GateResponse::Busy => {
                    return Err(MarketError::Transport(
                        "service busy (load shed); retry later".into(),
                    ));
                }
                GateResponse::App(resp) => return Ok(resp),
                GateResponse::Challenge { .. } => {
                    // Token exhausted or expelled: re-admit and replay
                    // this request under its *original* key — the
                    // dedup cache makes the replay exactly-once even
                    // if the first copy did execute.
                    state.token = None;
                    continue;
                }
                GateResponse::Denied { reason } => return Err(denied_error(&reason)),
                GateResponse::Admitted { .. } | GateResponse::Ops { .. } => {
                    return Err(MarketError::Transport(
                        "unsolicited admission during request".into(),
                    ));
                }
            }
        }
        Err(MarketError::Transport(
            "admission kept expiring; giving up".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = TcpConfig::default();
        assert!(c.max_connections > 0);
        assert!(c.write_queue_bytes > 4096);
        assert!(c.max_inflight_per_conn > 0);
        assert!(c.admission.price > 0, "paywall is on by default");
    }

    #[test]
    fn transport_without_wallet_fails_closed() {
        // Nothing is listening on this port — the transport must
        // surface a retryable transport error, not hang or panic.
        let t = TcpTransport::new(TcpClientConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            reply_timeout: Duration::from_millis(50),
            handshake_attempts: 1,
            flaky: None,
            wire_version: WIRE_VERSION,
        });
        let err = t
            .round_trip(Party::Sp, MaRequest::FetchData { job_id: 1 })
            .unwrap_err();
        assert!(
            err.is_retryable(),
            "dial failure must be retryable: {err:?}"
        );
    }
}
