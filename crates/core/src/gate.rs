//! 402-style **admission control** for the TCP front door, priced in
//! the market's own e-cash.
//!
//! An unauthenticated connection may not reach any shard handler.
//! Instead the front door speaks a tiny session protocol around the
//! market protocol proper:
//!
//! ```text
//! client                          front door
//!   | -- Hello -------------------> |
//!   | <- Challenge{price, N} ------ |      (402: payment required)
//!   | -- Admit{spends} -----------> |      (e-cash coins, face >= price)
//!   |      [gate deposits the coins through the ordinary
//!   |       DepositBatch path: ZK-verified, double-spend-checked,
//!   |       credited to the gate's revenue account]
//!   | <- Admitted{token, N} ------- |
//!   | -- App{token, request} -----> |      (xN, then re-challenged)
//!   | <- App(response) ------------ |
//! ```
//!
//! The economics: one admission coin buys `requests_per_token`
//! requests, so a flooder must spend real (blindly-signed,
//! unforgeable, double-spend-traced) currency at a rate proportional
//! to the load it imposes — DDoS resistance in the system's native
//! unit, the token-gated browsing-fee pattern of the Cashu
//! marketplace. Honest clients pay the same price, which is tiny
//! relative to the payments the market itself moves. Because the
//! coins go through the standard deposit path, a *double-spent*
//! admission coin is rejected by the DEC bank like any other
//! double-spend and admission is denied.
//!
//! Tokens are plain bearer words minted from a seeded splitmix64
//! stream — unguessable enough for tests and loopback benches, and
//! deliberately *not* presented as cryptographic: a production gate
//! would mint from an OS entropy source (the vendored `rand` has
//! none) or bind tokens to a channel secret.

use crate::bank::AccountId;
use crate::error::MarketError;
use crate::service::{MaRequest, MaResponse, RequestKey};
use crate::wire::{put_list, read_list, WireDecode, WireEncode, WireError, WireReader, WireWriter};
use ppms_ecash::Spend;
use ppms_obs::{Counter, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// What a connection may say to the front door. The market protocol
/// proper ([`MaRequest`]) rides inside [`GateRequest::App`], so one
/// framed connection carries both the session handshake and the
/// application traffic.
#[derive(Debug, Clone)]
pub enum GateRequest {
    /// "Let me in" — answered with a [`GateResponse::Challenge`]
    /// (or an immediate mint when the configured price is zero).
    Hello,
    /// Payment for admission: e-cash spends whose face value must
    /// cover the challenged price. Idempotent under the envelope's
    /// `(party, msg_id)` key — a retransmitted `Admit` replays the
    /// deposit's cached verdict instead of double-depositing.
    Admit {
        /// The admission coins.
        spends: Vec<Spend>,
    },
    /// An application request under a previously minted session
    /// token.
    App {
        /// Bearer token from [`GateResponse::Admitted`].
        token: u64,
        /// The market request itself.
        request: MaRequest,
    },
    /// A read-only operational query, answered by the reactor itself
    /// — admission-exempt (monitoring must work when the paywall or
    /// the wallet is broken) but rate-limited, and it never reaches a
    /// shard.
    Ops(OpsRequest),
}

/// The operational queries the front door answers in-reactor. All
/// read-only; all served from the reactor's own state plus metric
/// snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpsRequest {
    /// Liveness/readiness probe: a small JSON body with connection and
    /// in-flight gauges plus uptime.
    Health,
    /// The merged metrics snapshot (service registry + process-global
    /// registry) as JSON.
    MetricsJson,
    /// The same snapshot in Prometheus text exposition format.
    MetricsText,
    /// The slow-request log: JSON array of requests that exceeded the
    /// configured latency threshold, each with its span tree.
    SlowLog,
}

/// The front door's answers.
#[derive(Debug, Clone)]
pub enum GateResponse {
    /// 402: present e-cash worth `price` to proceed.
    Challenge {
        /// Total face value the admission spends must reach.
        price: u64,
        /// How many requests one admission buys.
        requests_per_token: u64,
    },
    /// Admission granted.
    Admitted {
        /// Bearer token to present in [`GateRequest::App`].
        token: u64,
        /// Requests this token covers.
        requests: u64,
    },
    /// Admission (or a request) permanently refused.
    Denied {
        /// Human-readable reason.
        reason: String,
    },
    /// An application response.
    App(MaResponse),
    /// Load shed: the server refused the message *before* the service
    /// pipeline. Retryable.
    Busy,
    /// The answer to a [`GateRequest::Ops`] query: a self-describing
    /// JSON or Prometheus-text body.
    Ops {
        /// The rendered body.
        body: String,
    },
}

impl WireEncode for GateRequest {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            GateRequest::Hello => w.u8(0),
            GateRequest::Admit { spends } => {
                w.u8(1);
                put_list(w, spends, |w, s| s.encode(w));
            }
            GateRequest::App { token, request } => {
                w.u8(2);
                w.u64(*token);
                request.encode(w);
            }
            GateRequest::Ops(op) => {
                w.u8(3);
                w.u8(match op {
                    OpsRequest::Health => 0,
                    OpsRequest::MetricsJson => 1,
                    OpsRequest::MetricsText => 2,
                    OpsRequest::SlowLog => 3,
                });
            }
        }
    }
}

impl WireDecode for GateRequest {
    fn decode(r: &mut WireReader<'_>) -> Result<GateRequest, WireError> {
        Ok(match r.u8()? {
            0 => GateRequest::Hello,
            1 => GateRequest::Admit {
                spends: read_list(r, Spend::decode)?,
            },
            2 => GateRequest::App {
                token: r.u64()?,
                request: MaRequest::decode(r)?,
            },
            3 => GateRequest::Ops(match r.u8()? {
                0 => OpsRequest::Health,
                1 => OpsRequest::MetricsJson,
                2 => OpsRequest::MetricsText,
                3 => OpsRequest::SlowLog,
                t => return Err(WireError::BadTag("ops-request", t)),
            }),
            t => return Err(WireError::BadTag("gate-request", t)),
        })
    }
}

impl WireEncode for GateResponse {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            GateResponse::Challenge {
                price,
                requests_per_token,
            } => {
                w.u8(0);
                w.u64(*price);
                w.u64(*requests_per_token);
            }
            GateResponse::Admitted { token, requests } => {
                w.u8(1);
                w.u64(*token);
                w.u64(*requests);
            }
            GateResponse::Denied { reason } => {
                w.u8(2);
                w.str(reason);
            }
            GateResponse::App(resp) => {
                w.u8(3);
                resp.encode(w);
            }
            GateResponse::Busy => w.u8(4),
            GateResponse::Ops { body } => {
                w.u8(5);
                w.str(body);
            }
        }
    }
}

impl WireDecode for GateResponse {
    fn decode(r: &mut WireReader<'_>) -> Result<GateResponse, WireError> {
        Ok(match r.u8()? {
            0 => GateResponse::Challenge {
                price: r.u64()?,
                requests_per_token: r.u64()?,
            },
            1 => GateResponse::Admitted {
                token: r.u64()?,
                requests: r.u64()?,
            },
            2 => GateResponse::Denied { reason: r.str()? },
            3 => GateResponse::App(MaResponse::decode(r)?),
            4 => GateResponse::Busy,
            5 => GateResponse::Ops { body: r.str()? },
            t => return Err(WireError::BadTag("gate-response", t)),
        })
    }
}

/// Gate policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Face value one admission costs. `0` turns the paywall off:
    /// `Hello` mints a token directly (useful for benches isolating
    /// transport cost from admission cost).
    pub price: u64,
    /// Requests one admission buys before the client is re-challenged.
    pub requests_per_token: u64,
    /// Live-session cap; the oldest session is expelled FIFO beyond
    /// it, so session state is bounded no matter how many clients pay.
    pub max_sessions: usize,
    /// Seed for the token stream (deterministic tests).
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            price: 1,
            requests_per_token: 32,
            max_sessions: 1024,
            seed: 0x0B_AD_C0_DE,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The admission middleware: session-token bookkeeping plus the
/// deposit-path plumbing that turns e-cash spends into tokens. The
/// TCP reactor owns one gate and drives it single-threaded; the gate
/// itself performs no I/O — the reactor sends the deposit request it
/// builds and feeds the verdict back in.
pub struct AdmissionGate {
    config: AdmissionConfig,
    /// Account the admission fees accrue to (the MA's revenue).
    revenue_account: AccountId,
    /// token → requests remaining.
    sessions: HashMap<u64, u64>,
    /// Mint order, for FIFO expulsion at `max_sessions`.
    order: VecDeque<u64>,
    /// Verdict replay cache keyed by the `Admit` frame's idempotency
    /// key. The service's dedup cache makes a retransmitted `Admit`
    /// replay the deposit verdict instead of double-depositing; this
    /// cache makes the *gate* replay the same `Admitted{token}` too —
    /// otherwise every replay of one paid admission would mint a
    /// fresh token (free requests for old coins).
    admit_verdicts: HashMap<RequestKey, GateResponse>,
    admit_order: VecDeque<RequestKey>,
    token_state: u64,
    challenges: Arc<Counter>,
    admitted: Arc<Counter>,
    denied: Arc<Counter>,
}

impl AdmissionGate {
    /// A gate accruing fees to `revenue_account`, with counters in
    /// `registry` (`gate.challenges` / `gate.admitted` / `gate.denied`).
    pub fn new(config: AdmissionConfig, revenue_account: AccountId, registry: &Registry) -> Self {
        AdmissionGate {
            config,
            revenue_account,
            sessions: HashMap::new(),
            order: VecDeque::new(),
            admit_verdicts: HashMap::new(),
            admit_order: VecDeque::new(),
            token_state: config.seed,
            challenges: registry.counter("gate.challenges"),
            admitted: registry.counter("gate.admitted"),
            denied: registry.counter("gate.denied"),
        }
    }

    /// The gate's policy knobs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The account admission fees accrue to.
    pub fn revenue_account(&self) -> AccountId {
        self.revenue_account
    }

    /// Live sessions (bounded by `max_sessions`).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The 402 answer for an unadmitted connection.
    pub fn challenge(&self) -> GateResponse {
        self.challenges.inc();
        GateResponse::Challenge {
            price: self.config.price,
            requests_per_token: self.config.requests_per_token,
        }
    }

    /// Mints a fresh session token. Public so a zero-price gate can
    /// admit on `Hello`.
    pub fn mint(&mut self) -> GateResponse {
        let token = splitmix64(&mut self.token_state);
        if self.sessions.len() >= self.config.max_sessions {
            if let Some(old) = self.order.pop_front() {
                self.sessions.remove(&old);
            }
        }
        self.sessions.insert(token, self.config.requests_per_token);
        self.order.push_back(token);
        self.admitted.inc();
        GateResponse::Admitted {
            token,
            requests: self.config.requests_per_token,
        }
    }

    /// The deposit the reactor must run for an `Admit{spends}`: the
    /// ordinary batch-deposit path, credited to the revenue account —
    /// so admission coins get the full ZK verification and
    /// double-spend check every market deposit gets.
    pub fn deposit_request(&self, spends: Vec<Spend>) -> MaRequest {
        MaRequest::DepositBatch {
            account: self.revenue_account,
            spends,
        }
    }

    /// A previously judged admission for this idempotency key, if any
    /// — checked *before* dispatching the deposit, so a retransmitted
    /// `Admit` is answered from the cache without another trip
    /// through the shard.
    pub fn cached_admission(&self, key: RequestKey) -> Option<GateResponse> {
        self.admit_verdicts.get(&key).cloned()
    }

    /// Turns the deposit verdict into the admission verdict, recorded
    /// under the `Admit` frame's idempotency key. Every presented
    /// spend must verify (a double-spent or forged admission coin
    /// denies the whole admission — no partial credit) and the
    /// accepted face value must cover the price.
    pub fn judge_deposit(
        &mut self,
        key: RequestKey,
        presented: usize,
        verdict: &MaResponse,
    ) -> GateResponse {
        let response = self.judge(presented, verdict);
        if self.admit_verdicts.len() >= self.config.max_sessions {
            if let Some(old) = self.admit_order.pop_front() {
                self.admit_verdicts.remove(&old);
            }
        }
        self.admit_verdicts.insert(key, response.clone());
        self.admit_order.push_back(key);
        response
    }

    fn judge(&mut self, presented: usize, verdict: &MaResponse) -> GateResponse {
        match verdict {
            MaResponse::BatchDeposited {
                total,
                accepted,
                rejected,
            } => {
                if *rejected > 0 || *accepted != presented {
                    self.denied.inc();
                    GateResponse::Denied {
                        reason: format!(
                            "admission coins rejected ({rejected} of {presented}): \
                             double-spent or invalid"
                        ),
                    }
                } else if *total < self.config.price {
                    self.denied.inc();
                    GateResponse::Denied {
                        reason: format!(
                            "admission underpaid: {total} < price {}",
                            self.config.price
                        ),
                    }
                } else {
                    self.mint()
                }
            }
            MaResponse::Err(e) => {
                self.denied.inc();
                GateResponse::Denied {
                    reason: format!("admission deposit failed: {e}"),
                }
            }
            other => {
                self.denied.inc();
                GateResponse::Denied {
                    reason: format!("unexpected deposit verdict: {other:?}"),
                }
            }
        }
    }

    /// Spends one request from `token`'s budget. `false` means the
    /// token is unknown or exhausted — the caller re-challenges.
    /// An exhausted token is removed (the re-challenge mints a fresh
    /// one), keeping the session map tight.
    pub fn consume(&mut self, token: u64) -> bool {
        match self.sessions.get_mut(&token) {
            Some(rem) if *rem > 0 => {
                *rem -= 1;
                if *rem == 0 {
                    self.sessions.remove(&token);
                    self.order.retain(|t| *t != token);
                }
                true
            }
            _ => false,
        }
    }

    /// Returns one request to `token`'s budget — used when the server
    /// sheds a request *after* consuming (the client paid for work the
    /// server refused to do).
    pub fn refund(&mut self, token: u64) {
        if let Some(rem) = self.sessions.get_mut(&token) {
            *rem += 1;
        } else {
            // The consume that emptied the budget removed the session;
            // restore it with the single refunded request.
            self.sessions.insert(token, 1);
            self.order.push_back(token);
        }
    }

    /// Serializes the gate's dynamic state — token stream position,
    /// live sessions (in mint order) and the admission-verdict replay
    /// cache — into an opaque blob the durable tier can checkpoint.
    /// Policy (`AdmissionConfig`) and the revenue account are *not*
    /// inside: they come from configuration and the snapshot's
    /// ledger, respectively.
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.token_state);
        w.u64(self.revenue_account.0);
        let live: Vec<(u64, u64)> = self
            .order
            .iter()
            .filter_map(|t| self.sessions.get(t).map(|rem| (*t, *rem)))
            .collect();
        put_list(&mut w, &live, |w, &(token, rem)| {
            w.u64(token);
            w.u64(rem);
        });
        let verdicts: Vec<(RequestKey, GateResponse)> = self
            .admit_order
            .iter()
            .filter_map(|k| self.admit_verdicts.get(k).map(|v| (*k, v.clone())))
            .collect();
        put_list(&mut w, &verdicts, |w, (k, v)| {
            k.party.encode(w);
            w.u64(k.request_id);
            v.encode(w);
        });
        w.finish()
    }

    /// Restores the dynamic state exported by
    /// [`AdmissionGate::export_state`]: a recovered front door keeps
    /// honoring pre-crash session tokens and replays pre-crash
    /// admission verdicts instead of minting fresh tokens for old
    /// coins.
    pub fn restore_state(&mut self, blob: &[u8]) -> Result<(), WireError> {
        let mut r = WireReader::new(blob);
        let token_state = r.u64()?;
        let revenue = AccountId(r.u64()?);
        let live = read_list(&mut r, |r| Ok((r.u64()?, r.u64()?)))?;
        let verdicts = read_list(&mut r, |r| {
            let party = crate::metrics::Party::decode(r)?;
            let request_id = r.u64()?;
            let verdict = GateResponse::decode(r)?;
            Ok((RequestKey { party, request_id }, verdict))
        })?;
        self.token_state = token_state;
        self.revenue_account = revenue;
        self.sessions = live.iter().copied().collect();
        self.order = live.iter().map(|&(t, _)| t).collect();
        self.admit_verdicts = verdicts.iter().cloned().collect();
        self.admit_order = verdicts.iter().map(|(k, _)| *k).collect();
        Ok(())
    }
}

/// Client-side helper: how many unit spends a challenge demands.
/// Admission wallets hold unit-value leaf spends, so `price` face
/// value = `price` spends.
pub fn spends_for_price(price: u64) -> usize {
    price as usize
}

/// Maps a terminal gate refusal to the client-facing error — fatal
/// (non-retryable): the gate has definitively rejected the admission
/// coins or the request itself.
pub fn denied_error(reason: &str) -> MarketError {
    MarketError::BadCoin(format!("admission denied: {reason}"))
}

/// Rendezvous between the service's checkpoint protocol and the TCP
/// front door's reactor, which owns the [`AdmissionGate`] outright
/// (no lock). At checkpoint time the dispatcher [`request`]s an
/// export; the reactor polls [`pending`] once per tick and answers
/// with [`fulfill`]; the dispatcher collects it via [`take_blob`]
/// under a bounded wait, so a stopped reactor only costs the
/// checkpoint its gate section, never wedges it.
///
/// [`request`]: GateCheckpoint::request
/// [`pending`]: GateCheckpoint::pending
/// [`fulfill`]: GateCheckpoint::fulfill
/// [`take_blob`]: GateCheckpoint::take_blob
#[derive(Debug, Default)]
pub struct GateCheckpoint {
    requested: std::sync::atomic::AtomicBool,
    blob: parking_lot::Mutex<Option<Vec<u8>>>,
}

impl GateCheckpoint {
    /// Fresh hook with no request outstanding.
    pub fn new() -> GateCheckpoint {
        GateCheckpoint::default()
    }

    /// Dispatcher side: ask the reactor for a gate export.
    pub fn request(&self) {
        self.requested
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Reactor side: is an export wanted? Clears the flag.
    pub fn pending(&self) -> bool {
        self.requested
            .swap(false, std::sync::atomic::Ordering::SeqCst)
    }

    /// Reactor side: publish the exported gate state.
    pub fn fulfill(&self, blob: Vec<u8>) {
        *self.blob.lock() = Some(blob);
    }

    /// Dispatcher side: collect the export, if the reactor answered.
    pub fn take_blob(&self) -> Option<Vec<u8>> {
        self.blob.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Party;
    use crate::wire::Envelope;

    #[test]
    fn gate_protocol_roundtrips_through_envelopes() {
        for req in [
            GateRequest::Hello,
            GateRequest::Admit { spends: vec![] },
            GateRequest::App {
                token: 77,
                request: MaRequest::FetchData { job_id: 3 },
            },
            GateRequest::Ops(OpsRequest::Health),
            GateRequest::Ops(OpsRequest::MetricsJson),
            GateRequest::Ops(OpsRequest::MetricsText),
            GateRequest::Ops(OpsRequest::SlowLog),
        ] {
            let env = Envelope {
                msg_id: 9,
                correlation_id: 0,
                trace_id: 5,
                span_id: 0,
                parent_id: 0,
                party: Party::Sp,
                payload: req.clone(),
            };
            let back = Envelope::<GateRequest>::from_bytes(&env.to_bytes()).unwrap();
            assert_eq!(back.payload.to_wire_bytes(), req.to_wire_bytes());
        }
        for resp in [
            GateResponse::Challenge {
                price: 1,
                requests_per_token: 32,
            },
            GateResponse::Admitted {
                token: 123,
                requests: 32,
            },
            GateResponse::Denied {
                reason: "no".into(),
            },
            GateResponse::App(MaResponse::Balance(7)),
            GateResponse::App(MaResponse::Busy),
            GateResponse::Busy,
            GateResponse::Ops {
                body: "{\"status\":\"ok\"}".into(),
            },
        ] {
            let env = Envelope {
                msg_id: 1,
                correlation_id: 9,
                trace_id: 5,
                span_id: 0,
                parent_id: 0,
                party: Party::Ma,
                payload: resp.clone(),
            };
            let back = Envelope::<GateResponse>::from_bytes(&env.to_bytes()).unwrap();
            assert_eq!(back.payload.to_wire_bytes(), resp.to_wire_bytes());
        }
    }

    fn gate() -> AdmissionGate {
        AdmissionGate::new(
            AdmissionConfig {
                price: 2,
                requests_per_token: 3,
                max_sessions: 2,
                seed: 42,
            },
            AccountId(900),
            &Registry::new(),
        )
    }

    #[test]
    fn token_budget_consumes_and_rechallenges() {
        let mut g = gate();
        let GateResponse::Admitted { token, requests } = g.mint() else {
            panic!("mint");
        };
        assert_eq!(requests, 3);
        assert!(g.consume(token));
        assert!(g.consume(token));
        assert!(g.consume(token));
        // Budget exhausted → unknown token → re-challenge.
        assert!(!g.consume(token));
        assert_eq!(g.session_count(), 0);
        assert!(!g.consume(0xDEAD), "never-minted token is refused");
    }

    #[test]
    fn refund_restores_a_consumed_request() {
        let mut g = gate();
        let GateResponse::Admitted { token, .. } = g.mint() else {
            panic!("mint");
        };
        assert!(g.consume(token));
        g.refund(token);
        assert!(g.consume(token));
        assert!(g.consume(token));
        assert!(g.consume(token));
        assert!(!g.consume(token));
    }

    #[test]
    fn session_cap_expels_oldest() {
        let mut g = gate();
        let GateResponse::Admitted { token: t1, .. } = g.mint() else {
            panic!()
        };
        let GateResponse::Admitted { token: t2, .. } = g.mint() else {
            panic!()
        };
        let GateResponse::Admitted { token: t3, .. } = g.mint() else {
            panic!()
        };
        assert_eq!(g.session_count(), 2);
        assert!(!g.consume(t1), "oldest session expelled at the cap");
        assert!(g.consume(t2));
        assert!(g.consume(t3));
    }

    fn key(id: u64) -> RequestKey {
        RequestKey {
            party: Party::Sp,
            request_id: id,
        }
    }

    #[test]
    fn deposit_verdicts_gate_admission() {
        let mut g = gate();
        // Clean deposit covering the price → admitted.
        let ok = g.judge_deposit(
            key(1),
            2,
            &MaResponse::BatchDeposited {
                total: 2,
                accepted: 2,
                rejected: 0,
            },
        );
        assert!(matches!(ok, GateResponse::Admitted { .. }));
        // A rejected (double-spent) coin → denied, even if the rest
        // would cover the price.
        let ds = g.judge_deposit(
            key(2),
            3,
            &MaResponse::BatchDeposited {
                total: 2,
                accepted: 2,
                rejected: 1,
            },
        );
        assert!(matches!(ds, GateResponse::Denied { .. }));
        // Underpayment → denied.
        let under = g.judge_deposit(
            key(3),
            1,
            &MaResponse::BatchDeposited {
                total: 1,
                accepted: 1,
                rejected: 0,
            },
        );
        assert!(matches!(under, GateResponse::Denied { .. }));
    }

    #[test]
    fn replayed_admit_gets_the_same_token_not_a_fresh_one() {
        let mut g = gate();
        let verdict = MaResponse::BatchDeposited {
            total: 2,
            accepted: 2,
            rejected: 0,
        };
        let GateResponse::Admitted { token, .. } = g.judge_deposit(key(7), 2, &verdict) else {
            panic!("admitted");
        };
        // A retransmit of the same Admit frame is answered from the
        // cache with the *same* token — no token farming off one coin.
        let GateResponse::Admitted {
            token: replayed, ..
        } = g.cached_admission(key(7)).expect("cached")
        else {
            panic!("cached admitted");
        };
        assert_eq!(replayed, token);
        assert_eq!(g.session_count(), 1, "only one session was minted");
        // A different key is not cached.
        assert!(g.cached_admission(key(8)).is_none());
    }

    #[test]
    fn exported_state_roundtrips_sessions_and_verdicts() {
        let mut g = gate();
        let verdict = MaResponse::BatchDeposited {
            total: 2,
            accepted: 2,
            rejected: 0,
        };
        let GateResponse::Admitted { token, .. } = g.judge_deposit(key(7), 2, &verdict) else {
            panic!("admitted");
        };
        assert!(g.consume(token));
        let blob = g.export_state();

        let mut restored = gate();
        restored.restore_state(&blob).expect("restore");
        // The pre-crash token keeps its remaining budget (3 - 1 = 2).
        assert!(restored.consume(token));
        assert!(restored.consume(token));
        assert!(!restored.consume(token), "budget carried over, not reset");
        // The admission verdict cache replays the same token.
        let GateResponse::Admitted { token: cached, .. } =
            restored.cached_admission(key(7)).expect("verdict cached")
        else {
            panic!("cached admitted");
        };
        assert_eq!(cached, token);
        // The token stream continues where it left off: the next mint
        // on both gates agrees.
        let a = match g.mint() {
            GateResponse::Admitted { token, .. } => token,
            _ => unreachable!(),
        };
        let b = match restored.mint() {
            GateResponse::Admitted { token, .. } => token,
            _ => unreachable!(),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn token_stream_is_seed_deterministic() {
        let mut a = gate();
        let mut b = gate();
        assert_eq!(
            match a.mint() {
                GateResponse::Admitted { token, .. } => token,
                _ => unreachable!(),
            },
            match b.mint() {
                GateResponse::Admitted { token, .. } => token,
                _ => unreachable!(),
            }
        );
    }
}
