//! # ppms-core
//!
//! The paper's primary contribution: two privacy-preserving market
//! mechanisms for incentive-driven mobile sensing markets.
//!
//! * [`ppmsdec`] — **PPMSdec** (paper §IV, Algorithm 1): arbitrary
//!   payments, built on divisible e-cash with cash breaking. Protects
//!   the SP's data-/job-/transaction-linkage privacy against both the
//!   job owner and the market administrator, and the JO's identity as
//!   a byproduct.
//! * [`ppmspbs`] — **PPMSpbs** (paper §V, Algorithm 4): unitary
//!   payments, built on RSA partially blind signatures. Protects the
//!   SP's privacy against the JO and its job linkage against the MA,
//!   while deliberately revealing transactions to the bank
//!   (anti-money-laundering, as the paper notes).
//!
//! Support modules: the [`bank`] (virtual currency ledger), the
//! [`bulletin`] board, [`wire`] (versioned envelope protocol — the
//! canonical byte encoding of every market message, integrity-checked
//! per frame), the stratified transport stack — [`stream`] (byte
//! streams: TCP sockets, fault-injecting decorators), [`frame`]
//! (framing/session: partial-read reassembly, bounded write queues),
//! [`transport`] (typed request/response over in-process /
//! simulated-network backends with chaos injection plus byte-level
//! traffic accounting → paper Table II), [`tcp`] (the hand-rolled
//! non-blocking TCP front door and its client transport) and [`gate`]
//! (402-style admission control priced in the market's own e-cash) —
//! [`retry`] (idempotent retransmission with backoff and a circuit
//! breaker), [`wal`] (the per-shard write-ahead journal behind crash
//! recovery), [`storage`] (the durable tier: on-disk segment WAL,
//! checkpoints, compaction and the crash-matrix fault models behind
//! cold-start recovery), [`metrics`] (operation counts → paper Table I;
//! fault-tolerance counters — both thin views over the `ppms-obs`
//! registry, which also carries per-op latency histograms, queue-depth
//! gauges and the per-shard flight recorders dumped on worker crash),
//! [`sim`] (multi-round, threaded and chaos market simulation → paper
//! Fig. 5), and [`attack`] (the denomination / linkage attack
//! evaluation behind the paper's §IV-B analysis).

pub mod attack;
pub mod bank;
pub mod bulletin;
pub mod error;
pub mod frame;
pub mod gate;
pub mod metrics;
pub mod mixnet;
pub mod ppmsdec;
pub mod ppmspbs;
pub mod retry;
pub mod service;
pub mod sim;
pub mod storage;
pub mod stream;
pub mod tcp;
pub mod transport;
pub mod wal;
pub mod wire;

pub use attack::{run_denomination_attack, AttackReport};
pub use bank::{AccountId, Bank};
pub use bulletin::{Bulletin, JobProfile};
pub use error::MarketError;
pub use frame::{FrameDecoder, FramedConn, QueueFull, WriteQueue};
pub use gate::GateCheckpoint;
pub use gate::{AdmissionConfig, AdmissionGate, GateRequest, GateResponse};
pub use metrics::{FaultMetrics, FaultSnapshot, Metrics, MetricsSnapshot, Op, Party};
pub use mixnet::{MixCascade, MixNode};
pub use ppmsdec::{DecMarket, DecRoundOutcome};
pub use ppmspbs::{PbsMarket, PbsRoundOutcome};
pub use retry::{RetryPolicy, RetryingTransport};
pub use service::{
    CrashPoint, Inbound, MaClient, MaRequest, MaResponse, MaService, RecoveryReport, RequestKey,
    ServiceConfig,
};
pub use storage::{
    DiskStorage, DurabilityConfig, DurableLog, FaultyStorage, SimStorage, SnapshotState, Storage,
    StorageError, StorageFaults, SyncPolicy,
};
pub use stream::{ByteStream, FlakyConfig, FlakyStream, TcpByteStream};
pub use tcp::{TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport};
pub use transport::{
    next_request_id, next_trace_id, FaultPlan, InProcTransport, SimNetConfig, SimNetTransport,
    TrafficLog, Transport,
};
pub use wal::{ShardWal, WalRecord};
pub use wire::{Envelope, RelayPayload, WireDecode, WireEncode, WireError};
