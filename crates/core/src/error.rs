//! Market-level errors.

use ppms_ecash::DecError;

/// Why a market interaction was rejected.
///
/// Detail payloads are owned strings so errors survive a round trip
/// through the serialized transport layer ([`crate::wire`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketError {
    /// Account does not exist.
    NoSuchAccount,
    /// Balance too low for the requested debit.
    InsufficientFunds,
    /// Authentication failed (CL signature / account key mismatch).
    BadAuthentication,
    /// A cryptographic payload failed to decrypt or verify.
    BadPayload(String),
    /// The partially blind signature or its serial was rejected.
    BadCoin(String),
    /// The serial number was already deposited (PPMSpbs freshness).
    StaleSerial,
    /// An e-cash error from the DEC layer.
    Dec(DecError),
    /// The job does not exist on the bulletin board.
    NoSuchJob,
    /// The transport layer failed: a peer hung up, a channel closed,
    /// a frame failed to decode, or the simulated network dropped the
    /// message.
    Transport(String),
    /// The retry layer's overall deadline expired before any attempt
    /// succeeded.
    Timeout,
    /// The per-destination circuit breaker is open: the destination
    /// has failed repeatedly and calls are rejected without being
    /// attempted until the cooldown elapses.
    CircuitOpen,
}

impl MarketError {
    /// Whether a retransmission of the same request could plausibly
    /// succeed — the retry layer's retryable/fatal classification.
    ///
    /// Retryable errors mean the request may never have reached the
    /// MA (or its answer was lost); with the service's idempotent
    /// request keys a retransmit is safe. Everything else is a
    /// definitive answer from the MA (authentication, funds, coin
    /// validity, …) or an explicit instruction to back off
    /// ([`MarketError::CircuitOpen`]) and must not be retried
    /// blindly.
    pub fn is_retryable(&self) -> bool {
        matches!(self, MarketError::Transport(_) | MarketError::Timeout)
    }
}

impl From<DecError> for MarketError {
    fn from(e: DecError) -> Self {
        MarketError::Dec(e)
    }
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::NoSuchAccount => write!(f, "no such account"),
            MarketError::InsufficientFunds => write!(f, "insufficient funds"),
            MarketError::BadAuthentication => write!(f, "authentication failed"),
            MarketError::BadPayload(s) => write!(f, "bad payload: {s}"),
            MarketError::BadCoin(s) => write!(f, "bad coin: {s}"),
            MarketError::StaleSerial => write!(f, "serial number already used"),
            MarketError::Dec(e) => write!(f, "e-cash error: {e}"),
            MarketError::NoSuchJob => write!(f, "no such job"),
            MarketError::Transport(s) => write!(f, "transport failure: {s}"),
            MarketError::Timeout => write!(f, "deadline expired before a successful attempt"),
            MarketError::CircuitOpen => write!(f, "circuit breaker open: destination failing"),
        }
    }
}

impl std::error::Error for MarketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_and_timeout_are_retryable() {
        assert!(MarketError::Transport("dropped".into()).is_retryable());
        assert!(MarketError::Timeout.is_retryable());
    }

    #[test]
    fn definitive_answers_are_fatal() {
        for e in [
            MarketError::NoSuchAccount,
            MarketError::InsufficientFunds,
            MarketError::BadAuthentication,
            MarketError::BadPayload("x".into()),
            MarketError::BadCoin("x".into()),
            MarketError::StaleSerial,
            MarketError::Dec(DecError::Overspend),
            MarketError::NoSuchJob,
            MarketError::CircuitOpen,
        ] {
            assert!(!e.is_retryable(), "{e}");
        }
    }
}
