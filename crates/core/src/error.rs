//! Market-level errors.

use ppms_ecash::DecError;

/// Why a market interaction was rejected.
///
/// Detail payloads are owned strings so errors survive a round trip
/// through the serialized transport layer ([`crate::wire`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketError {
    /// Account does not exist.
    NoSuchAccount,
    /// Balance too low for the requested debit.
    InsufficientFunds,
    /// Authentication failed (CL signature / account key mismatch).
    BadAuthentication,
    /// A cryptographic payload failed to decrypt or verify.
    BadPayload(String),
    /// The partially blind signature or its serial was rejected.
    BadCoin(String),
    /// The serial number was already deposited (PPMSpbs freshness).
    StaleSerial,
    /// An e-cash error from the DEC layer.
    Dec(DecError),
    /// The job does not exist on the bulletin board.
    NoSuchJob,
    /// The transport layer failed: a peer hung up, a channel closed,
    /// a frame failed to decode, or the simulated network dropped the
    /// message.
    Transport(String),
}

impl From<DecError> for MarketError {
    fn from(e: DecError) -> Self {
        MarketError::Dec(e)
    }
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::NoSuchAccount => write!(f, "no such account"),
            MarketError::InsufficientFunds => write!(f, "insufficient funds"),
            MarketError::BadAuthentication => write!(f, "authentication failed"),
            MarketError::BadPayload(s) => write!(f, "bad payload: {s}"),
            MarketError::BadCoin(s) => write!(f, "bad coin: {s}"),
            MarketError::StaleSerial => write!(f, "serial number already used"),
            MarketError::Dec(e) => write!(f, "e-cash error: {e}"),
            MarketError::NoSuchJob => write!(f, "no such job"),
            MarketError::Transport(s) => write!(f, "transport failure: {s}"),
        }
    }
}

impl std::error::Error for MarketError {}
