//! Market-level errors.

use ppms_ecash::DecError;

/// Why a market interaction was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarketError {
    /// Account does not exist.
    NoSuchAccount,
    /// Balance too low for the requested debit.
    InsufficientFunds,
    /// Authentication failed (CL signature / account key mismatch).
    BadAuthentication,
    /// A cryptographic payload failed to decrypt or verify.
    BadPayload(&'static str),
    /// The partially blind signature or its serial was rejected.
    BadCoin(&'static str),
    /// The serial number was already deposited (PPMSpbs freshness).
    StaleSerial,
    /// An e-cash error from the DEC layer.
    Dec(DecError),
    /// The job does not exist on the bulletin board.
    NoSuchJob,
}

impl From<DecError> for MarketError {
    fn from(e: DecError) -> Self {
        MarketError::Dec(e)
    }
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::NoSuchAccount => write!(f, "no such account"),
            MarketError::InsufficientFunds => write!(f, "insufficient funds"),
            MarketError::BadAuthentication => write!(f, "authentication failed"),
            MarketError::BadPayload(s) => write!(f, "bad payload: {s}"),
            MarketError::BadCoin(s) => write!(f, "bad coin: {s}"),
            MarketError::StaleSerial => write!(f, "serial number already used"),
            MarketError::Dec(e) => write!(f, "e-cash error: {e}"),
            MarketError::NoSuchJob => write!(f, "no such job"),
        }
    }
}

impl std::error::Error for MarketError {}
