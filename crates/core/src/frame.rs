//! Stratum 2 of the transport stack: the **framing/session layer**.
//!
//! This layer turns the raw byte pipe of [`crate::stream::ByteStream`]
//! into a sequence of whole protocol frames — the length-prefixed
//! Envelope v3 (+ FNV-1a trailer) bytes that [`crate::wire`] encodes
//! and decodes. It owns exactly two hard problems:
//!
//! * **Partial-read reassembly** ([`FrameDecoder`]): TCP delivers
//!   bytes, not messages. A frame may arrive one byte at a time or
//!   glued to the tail of the previous frame; `push` accumulates and
//!   `next_frame` yields complete frames in order, validating the
//!   version word and the body-length cap *before* buffering a body,
//!   so a hostile 4 GiB length prefix can never balloon memory.
//!
//! * **Write buffering with a hard cap** ([`WriteQueue`]): a slow or
//!   stalled reader must not grow the server's memory without bound.
//!   Enqueueing past the byte cap fails, and the reactor treats that
//!   failure as the eviction signal for the connection.
//!
//! [`FramedConn`] packages both for the blocking client side: send a
//! frame, then poll for the reply until a deadline. The server reactor
//! uses the decoder and queue directly, because its event loop owns
//! the scheduling.

use crate::error::MarketError;
use crate::stream::ByteStream;
use crate::wire::{FRAME_TRAILER_LEN, WIRE_VERSION, WIRE_VERSION_V2, WIRE_VERSION_V3};
use crate::WireError;
use std::io;
use std::time::Instant;

/// Frame prefix = version word (u16) + body length (u32), both
/// big-endian. Only once these 6 bytes are in hand does the decoder
/// know how many more to wait for.
pub const FRAME_PREFIX_LEN: usize = 6;

/// Default per-frame size cap (matches `wire::MAX_FIELD_LEN`): one
/// frame may not claim a body over 16 MiB, and the decoder rejects
/// the length prefix before buffering a single body byte.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 24;

/// Incremental splitter for a stream of length-prefixed envelope
/// frames. Feed arbitrary chunks in with [`push`](Self::push); pull
/// whole frames out with [`next_frame`](Self::next_frame). The byte
/// boundaries of the input chunks are invisible to the output — the
/// reassembly proptests in `core/tests/wire_props.rs` pin this.
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away once
    /// the cursor passes half the buffer, amortizing the memmove.
    start: usize,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES)
    }
}

impl FrameDecoder {
    /// A decoder that rejects frames whose declared body exceeds
    /// `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Appends raw bytes from the stream. Compaction happens here —
    /// not in `next_frame` — so yielded frames can borrow the buffer:
    /// consumed bytes are reclaimed only once the caller has released
    /// the previous frame and comes back with more input. The buffer
    /// therefore reaches a steady-state capacity and `push` +
    /// `next_frame` allocate nothing on the warmed hot path (pinned
    /// by `tests/frame_alloc.rs`).
    pub fn push(&mut self, chunk: &[u8]) {
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered and not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame (prefix + body + trailer, the
    /// exact byte slice `Envelope::from_bytes` expects) **borrowed
    /// from the reassembly buffer** — no copy — or `None` if more
    /// bytes are needed. The slice is valid until the next `push`;
    /// decode it (or copy it out) before feeding more input. Errors
    /// are sticky in practice: a `BadVersion`/`TooLong` means the
    /// stream is desynchronized and the connection should be torn
    /// down.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < FRAME_PREFIX_LEN {
            return Ok(None);
        }
        let p = &self.buf[self.start..];
        let version = u16::from_be_bytes([p[0], p[1]]);
        if version != WIRE_VERSION && version != WIRE_VERSION_V3 && version != WIRE_VERSION_V2 {
            return Err(WireError::BadVersion(version));
        }
        let body_len = u32::from_be_bytes([p[2], p[3], p[4], p[5]]) as usize;
        if body_len > self.max_frame {
            return Err(WireError::TooLong);
        }
        let total = FRAME_PREFIX_LEN + body_len + FRAME_TRAILER_LEN;
        if avail < total {
            return Ok(None);
        }
        let at = self.start;
        self.start += total;
        Ok(Some(&self.buf[at..at + total]))
    }
}

/// Error from [`WriteQueue::enqueue`]: accepting the frame would push
/// the queue past its byte cap. The caller decides policy; the TCP
/// reactor evicts the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Bytes already queued when the enqueue was refused.
    pub queued: usize,
    /// The queue's configured cap.
    pub cap: usize,
}

/// Bounded outbound buffer for one connection. Frames are copied into
/// one flat, reused byte buffer, so a flush pushes *all* queued reply
/// bytes through a single `write` call — the per-connection write
/// coalescing half of the batching pipeline (DESIGN.md §16). Short
/// writes and `WouldBlock` leave a cursor mid-buffer; the backing
/// allocation reaches a steady state and is never shrunk, so the
/// warmed enqueue/flush cycle allocates nothing.
pub struct WriteQueue {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the stream.
    start: usize,
    cap: usize,
}

impl WriteQueue {
    /// A queue that refuses to hold more than `cap` bytes.
    pub fn new(cap: usize) -> WriteQueue {
        WriteQueue {
            buf: Vec::new(),
            start: 0,
            cap,
        }
    }

    /// Bytes currently queued (the unwritten remainder).
    pub fn queued_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when nothing is waiting to drain.
    pub fn is_empty(&self) -> bool {
        self.start >= self.buf.len()
    }

    /// Accepts a whole frame for eventual transmission, or refuses if
    /// the cap would be exceeded. Refusal is the slow-client signal —
    /// the frame is *not* partially accepted.
    pub fn enqueue(&mut self, frame: &[u8]) -> Result<(), QueueFull> {
        let queued = self.queued_bytes();
        if queued + frame.len() > self.cap {
            return Err(QueueFull {
                queued,
                cap: self.cap,
            });
        }
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(frame);
        Ok(())
    }

    /// Drains as much as the stream will take right now — the whole
    /// queue in one `write` when the kernel accepts it. Returns the
    /// number of bytes written; `WouldBlock` stops the drain without
    /// error, any other io error propagates (connection is dead).
    pub fn flush<S: ByteStream + ?Sized>(&mut self, stream: &mut S) -> io::Result<usize> {
        let mut wrote = 0usize;
        while self.start < self.buf.len() {
            match stream.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    wrote += n;
                    self.start += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(wrote)
    }
}

/// A blocking framed session over a byte stream — the client half of
/// stratum 2. Owns a [`FrameDecoder`] for the inbound direction and
/// writes outbound frames synchronously (the client has nothing
/// better to do than finish its own request).
pub struct FramedConn {
    stream: Box<dyn ByteStream>,
    decoder: FrameDecoder,
}

impl FramedConn {
    /// Wraps an established stream.
    pub fn new(stream: Box<dyn ByteStream>) -> FramedConn {
        FramedConn {
            stream,
            decoder: FrameDecoder::default(),
        }
    }

    /// Writes one whole frame, looping over short writes. `WouldBlock`
    /// from a blocking-with-timeout socket is retried in place.
    pub fn send_frame(&mut self, frame: &[u8]) -> Result<(), MarketError> {
        let mut sent = 0usize;
        while sent < frame.len() {
            match self.stream.write(&frame[sent..]) {
                Ok(0) => {
                    return Err(MarketError::Transport(
                        "connection closed while writing frame".into(),
                    ));
                }
                Ok(n) => sent += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    continue;
                }
                Err(e) => {
                    return Err(MarketError::Transport(format!("write failed: {e}")));
                }
            }
        }
        Ok(())
    }

    /// Reads until one complete frame is assembled or `deadline`
    /// passes. A timeout maps to [`MarketError::Timeout`] (retryable);
    /// a closed or torn stream maps to [`MarketError::Transport`].
    pub fn recv_frame(&mut self, deadline: Instant) -> Result<Vec<u8>, MarketError> {
        let mut buf = [0u8; 4096];
        loop {
            // The client copies the frame out: its reply buffer decode
            // outlives the next read. The zero-copy discipline matters
            // on the server's per-frame path, not here.
            match self.decoder.next_frame() {
                Ok(Some(frame)) => return Ok(frame.to_vec()),
                Ok(None) => {}
                Err(e) => {
                    return Err(MarketError::Transport(format!(
                        "frame desync on client stream: {e:?}"
                    )));
                }
            }
            if Instant::now() >= deadline {
                return Err(MarketError::Timeout);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(MarketError::Transport(
                        "connection closed while awaiting reply".into(),
                    ));
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(MarketError::Transport(format!("read failed: {e}")));
                }
            }
        }
    }

    /// Tears the underlying stream down.
    pub fn shutdown(&mut self) {
        self.stream.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::MaRequest;
    use crate::wire::Envelope;

    /// A frame whose body length varies with `fill` (the pubkey bytes
    /// ride inside the envelope payload).
    fn frame(msg_id: u64, fill: &[u8]) -> Vec<u8> {
        Envelope {
            msg_id,
            correlation_id: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: crate::metrics::Party::Sp,
            payload: MaRequest::FetchPayment {
                sp_pubkey: fill.to_vec(),
            },
        }
        .to_bytes()
    }

    #[test]
    fn decoder_reassembles_one_byte_feeds() {
        let f1 = frame(1, b"alpha");
        let f2 = frame(2, b"beta");
        let mut joined = f1.clone();
        joined.extend_from_slice(&f2);

        let mut dec = FrameDecoder::default();
        let mut out = Vec::new();
        for b in &joined {
            dec.push(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f.to_vec());
            }
        }
        assert_eq!(out, vec![f1, f2]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_handles_frame_straddling_chunks() {
        let f1 = frame(7, &[0xAA; 300]);
        let f2 = frame(8, &[0xBB; 5]);
        let mut joined = f1.clone();
        joined.extend_from_slice(&f2);
        // Split in the middle of f1's body and again inside f2's prefix.
        let cuts = [0, 3, 150, f1.len() + 2, joined.len()];
        let mut dec = FrameDecoder::default();
        let mut out = Vec::new();
        for w in cuts.windows(2) {
            dec.push(&joined[w[0]..w[1]]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f.to_vec());
            }
        }
        assert_eq!(out, vec![f1, f2]);
    }

    #[test]
    fn decoder_rejects_bad_version_before_buffering_body() {
        let mut dec = FrameDecoder::default();
        dec.push(&[0x00, 0x99, 0, 0, 0, 4]);
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::BadVersion(0x0099))
        ));
    }

    #[test]
    fn decoder_rejects_oversized_length_prefix() {
        let mut dec = FrameDecoder::new(1024);
        let mut p = Vec::new();
        p.extend_from_slice(&WIRE_VERSION.to_be_bytes());
        p.extend_from_slice(&(4096u32).to_be_bytes());
        dec.push(&p);
        assert!(matches!(dec.next_frame(), Err(WireError::TooLong)));
    }

    #[test]
    fn decoder_accepts_legacy_v2_version_word() {
        // A v2 frame: the decoder only splits; envelope decode handles
        // the version semantics.
        let env = Envelope {
            msg_id: 3,
            correlation_id: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: crate::metrics::Party::Jo,
            payload: MaRequest::FetchData { job_id: 9 },
        };
        let bytes = env.to_bytes_versioned(WIRE_VERSION_V2).unwrap();
        let mut dec = FrameDecoder::default();
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap().unwrap(), bytes);
    }

    #[test]
    fn write_queue_caps_and_drains() {
        struct Trickle {
            taken: Vec<u8>,
            budget: usize,
        }
        impl ByteStream for Trickle {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(self.budget).min(3);
                self.taken.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn shutdown(&mut self) {}
        }

        let mut q = WriteQueue::new(16);
        q.enqueue(&[1; 10]).unwrap();
        // 10 queued; another 10 would exceed the 16-byte cap.
        let err = q.enqueue(&[2; 10]).unwrap_err();
        assert_eq!(
            err,
            QueueFull {
                queued: 10,
                cap: 16
            }
        );
        q.enqueue(&[3; 6]).unwrap();
        assert_eq!(q.queued_bytes(), 16);

        // Drain through a stream that takes 3 bytes at a time and
        // stalls after 7.
        let mut s = Trickle {
            taken: Vec::new(),
            budget: 7,
        };
        let wrote = q.flush(&mut s).unwrap();
        assert_eq!(wrote, 7);
        assert_eq!(q.queued_bytes(), 9);
        assert!(!q.is_empty());

        // More budget finishes the drain, preserving byte order.
        s.budget = 100;
        q.flush(&mut s).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
        let mut expect = vec![1u8; 10];
        expect.extend_from_slice(&[3; 6]);
        assert_eq!(s.taken, expect);
    }
}
