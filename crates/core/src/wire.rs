//! The market's wire protocol: a versioned, length-prefixed envelope
//! around every client↔MA message.
//!
//! The paper's Fig. 1 system model is three parties exchanging
//! *messages*, and Table II tabulates the *bytes* those messages cost.
//! This module makes that boundary real: every [`MaRequest`] /
//! [`MaResponse`] (and every party-to-party payload the MA relays,
//! [`RelayPayload`]) has a deterministic binary encoding, wrapped in
//! an [`Envelope`] frame
//!
//! ```text
//! [version: u16 BE][body_len: u32 BE]
//!     [msg_id: u64][correlation_id: u64][trace_id: u64][party: u8]
//!     [payload ...]
//! ```
//!
//! (v2 frames — the previous version, still decodable — omit the
//! `trace_id` field; they decode with `trace_id = 0`.)
//!
//! so the transport layer ([`crate::transport::SimNetTransport`]) can
//! ship actual bytes and the traffic log can account actual sizes.
//! The codec extends the length-prefixed style of `ppms_ecash::wire`
//! (the in-ciphertext payment-bundle encoding) to the whole protocol
//! surface. Decoding rejects truncated buffers, trailing garbage and
//! version mismatches.
//!
//! All payload types additionally derive `serde::Serialize` /
//! `serde::Deserialize`, so a generic serde backend can carry them;
//! the hand-rolled encoding here stays the canonical one because it
//! is deterministic and self-delimiting (Table II must not depend on
//! a serializer's formatting choices).

use crate::bank::AccountId;
use crate::error::MarketError;
use crate::metrics::Party;
use crate::service::{MaRequest, MaResponse};
use ppms_bigint::BigUint;
use ppms_crypto::cl::{ClPublicKey, ClSignature};
use ppms_crypto::pairing::Point;
use ppms_ecash::{DecError, Spend};

/// Protocol version carried by every frame. Version 2 added the
/// FNV-1a integrity trailer (see [`FRAME_TRAILER_LEN`]) so a frame
/// corrupted in flight is rejected instead of silently mis-decoding
/// into a different request — which would defeat the service's
/// idempotent request keys. Version 3 added the `trace_id` header
/// field (trace-context propagation). Version 4 widened the trace
/// context to the full causal triple — `trace_id`, `span_id`,
/// `parent_id` — so a server can parent its own spans to the
/// client-side span that sent the frame. Both prior versions still
/// decode: v3 frames read with `span_id = parent_id = 0`, v2 frames
/// additionally with `trace_id = 0`.
pub const WIRE_VERSION: u16 = 4;

/// The previous protocol version (trace id only, no span context),
/// still accepted on decode so peers mid-upgrade interoperate.
pub const WIRE_VERSION_V3: u16 = 3;

/// The oldest still-decodable protocol version. Its frames carry no
/// trace context at all.
pub const WIRE_VERSION_V2: u16 = 2;

/// Fixed per-frame overhead: version + body length + msg id +
/// correlation id + trace id + span id + parent id + party tag.
pub const FRAME_HEADER_LEN: usize = 2 + 4 + 8 + 8 + 8 + 8 + 8 + 1;

/// Integrity trailer: FNV-1a-64 over the frame body, appended after
/// the payload. Not cryptographic — transport integrity against bit
/// rot / truncation mid-path; authenticity lives in the protocol's
/// signatures.
pub const FRAME_TRAILER_LEN: usize = 8;

/// FNV-1a-64 — the frame checksum and the service's stable routing
/// hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Upper bound on any single length prefix (16 MiB) — a sanity cap so
/// a corrupt length field cannot trigger a huge allocation.
const MAX_FIELD_LEN: usize = 1 << 24;

/// Upper bound on list element counts.
const MAX_LIST_LEN: usize = 1 << 16;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the field completed.
    Truncated,
    /// Bytes left over after the final field.
    Trailing,
    /// Frame version differs from [`WIRE_VERSION`].
    BadVersion(u16),
    /// An enum discriminant was out of range.
    BadTag(&'static str, u8),
    /// A length prefix exceeded the sanity bounds.
    TooLong,
    /// An embedded structure failed to parse.
    Malformed(&'static str),
    /// The frame's integrity trailer did not match its body.
    Corrupt,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::Trailing => write!(f, "trailing bytes after frame"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(what, tag) => write!(f, "bad {what} tag {tag}"),
            WireError::TooLong => write!(f, "length prefix exceeds sanity bound"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
            WireError::Corrupt => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for MarketError {
    fn from(e: WireError) -> Self {
        MarketError::Transport(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writer / reader primitives
// ---------------------------------------------------------------------------

/// Append-only encoder for the length-prefixed wire format.
#[derive(Debug, Default)]
pub struct WireWriter {
    out: Vec<u8>,
}

impl WireWriter {
    /// Fresh, empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// A writer that appends to an existing buffer — callers reusing
    /// one scratch allocation across frames start from this.
    pub fn appending(out: Vec<u8>) -> WireWriter {
        WireWriter { out }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Writes a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Writes a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a bool as one byte (0 / 1).
    pub fn bool(&mut self, v: bool) {
        self.out.push(v as u8);
    }

    /// Writes a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.out.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes a big integer as a length-prefixed big-endian byte
    /// string.
    pub fn int(&mut self, v: &BigUint) {
        self.bytes(&v.to_bytes_be());
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// Cursor over an encoded buffer; every accessor checks bounds.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a bool; any byte other than 0/1 is rejected.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadTag("bool", b)),
        }
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(WireError::TooLong);
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| WireError::Malformed("utf-8 string"))
    }

    /// Reads a length-prefixed big-endian integer.
    pub fn int(&mut self) -> Result<BigUint, WireError> {
        Ok(BigUint::from_bytes_be(self.bytes()?))
    }

    /// Whether the buffer is fully consumed.
    pub fn is_done(&self) -> bool {
        self.buf.is_empty()
    }

    /// Fails unless the buffer is fully consumed.
    pub fn expect_done(&self) -> Result<(), WireError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

/// Writes a `u32` count followed by each element.
pub fn put_list<T>(w: &mut WireWriter, items: &[T], mut f: impl FnMut(&mut WireWriter, &T)) {
    w.u32(items.len() as u32);
    for item in items {
        f(w, item);
    }
}

/// Reads a `u32` count followed by each element.
pub fn read_list<T>(
    r: &mut WireReader<'_>,
    mut f: impl FnMut(&mut WireReader<'_>) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let n = r.u32()? as usize;
    if n > MAX_LIST_LEN {
        return Err(WireError::TooLong);
    }
    (0..n).map(|_| f(r)).collect()
}

// ---------------------------------------------------------------------------
// Encode / decode traits
// ---------------------------------------------------------------------------

/// Types with a canonical wire encoding.
pub trait WireEncode {
    /// Appends this value to the writer.
    fn encode(&self, w: &mut WireWriter);

    /// Encodes this value alone into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// Types decodable from the wire encoding.
pub trait WireDecode: Sized {
    /// Reads one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Decodes a buffer that must contain exactly one value.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_done()?;
        Ok(v)
    }
}

impl WireEncode for Party {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            Party::Jo => 0,
            Party::Sp => 1,
            Party::Ma => 2,
        });
    }
}

impl WireDecode for Party {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Party::Jo),
            1 => Ok(Party::Sp),
            2 => Ok(Party::Ma),
            t => Err(WireError::BadTag("party", t)),
        }
    }
}

impl WireEncode for AccountId {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
}

impl WireDecode for AccountId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AccountId(r.u64()?))
    }
}

impl WireEncode for Point {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Point::Infinity => w.u8(0),
            Point::Affine { x, y } => {
                w.u8(1);
                w.int(x);
                w.int(y);
            }
        }
    }
}

impl WireDecode for Point {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Point::Infinity),
            1 => Ok(Point::Affine {
                x: r.int()?,
                y: r.int()?,
            }),
            t => Err(WireError::BadTag("point", t)),
        }
    }
}

impl WireEncode for ClPublicKey {
    fn encode(&self, w: &mut WireWriter) {
        self.x_pub.encode(w);
        self.y_pub.encode(w);
    }
}

impl WireDecode for ClPublicKey {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ClPublicKey {
            x_pub: Point::decode(r)?,
            y_pub: Point::decode(r)?,
        })
    }
}

impl WireEncode for ClSignature {
    fn encode(&self, w: &mut WireWriter) {
        self.a.encode(w);
        self.b.encode(w);
        self.c.encode(w);
    }
}

impl WireDecode for ClSignature {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ClSignature {
            a: Point::decode(r)?,
            b: Point::decode(r)?,
            c: Point::decode(r)?,
        })
    }
}

impl WireEncode for Spend {
    fn encode(&self, w: &mut WireWriter) {
        // Delegate to the e-cash layer's own encoding (the same bytes
        // that travel inside payment ciphertexts), nested as one
        // length-prefixed field.
        w.bytes(&self.to_bytes());
    }
}

impl WireDecode for Spend {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Spend::from_bytes(r.bytes()?).map_err(|_| WireError::Malformed("spend"))
    }
}

impl WireEncode for DecError {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DecError::BadBankSignature => w.u8(0),
            DecError::BadProof(s) => {
                w.u8(1);
                w.str(s);
            }
            DecError::BadGroupElement => w.u8(2),
            DecError::BadDepth => w.u8(3),
            DecError::DoubleSpend(s) => {
                w.u8(4);
                w.str(s);
            }
            DecError::Overspend => w.u8(5),
            DecError::FakeCoin => w.u8(6),
            DecError::BadAmount => w.u8(7),
        }
    }
}

impl WireDecode for DecError {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => DecError::BadBankSignature,
            1 => DecError::BadProof(r.str()?),
            2 => DecError::BadGroupElement,
            3 => DecError::BadDepth,
            4 => DecError::DoubleSpend(r.str()?),
            5 => DecError::Overspend,
            6 => DecError::FakeCoin,
            7 => DecError::BadAmount,
            t => return Err(WireError::BadTag("dec-error", t)),
        })
    }
}

impl WireEncode for MarketError {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            MarketError::NoSuchAccount => w.u8(0),
            MarketError::InsufficientFunds => w.u8(1),
            MarketError::BadAuthentication => w.u8(2),
            MarketError::BadPayload(s) => {
                w.u8(3);
                w.str(s);
            }
            MarketError::BadCoin(s) => {
                w.u8(4);
                w.str(s);
            }
            MarketError::StaleSerial => w.u8(5),
            MarketError::Dec(e) => {
                w.u8(6);
                e.encode(w);
            }
            MarketError::NoSuchJob => w.u8(7),
            MarketError::Transport(s) => {
                w.u8(8);
                w.str(s);
            }
            MarketError::Timeout => w.u8(9),
            MarketError::CircuitOpen => w.u8(10),
        }
    }
}

impl WireDecode for MarketError {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => MarketError::NoSuchAccount,
            1 => MarketError::InsufficientFunds,
            2 => MarketError::BadAuthentication,
            3 => MarketError::BadPayload(r.str()?),
            4 => MarketError::BadCoin(r.str()?),
            5 => MarketError::StaleSerial,
            6 => MarketError::Dec(DecError::decode(r)?),
            7 => MarketError::NoSuchJob,
            8 => MarketError::Transport(r.str()?),
            9 => MarketError::Timeout,
            10 => MarketError::CircuitOpen,
            t => return Err(WireError::BadTag("market-error", t)),
        })
    }
}

impl WireEncode for MaRequest {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            MaRequest::RegisterJoAccount { funds, clpk } => {
                w.u8(0);
                w.u64(*funds);
                clpk.encode(w);
            }
            MaRequest::RegisterSpAccount => w.u8(1),
            MaRequest::PublishJob {
                description,
                payment,
                pseudonym,
            } => {
                w.u8(2);
                w.str(description);
                w.u64(*payment);
                w.bytes(pseudonym);
            }
            MaRequest::Withdraw {
                account,
                nonce,
                auth,
                blinded,
            } => {
                w.u8(3);
                account.encode(w);
                w.u64(*nonce);
                auth.encode(w);
                w.int(blinded);
            }
            MaRequest::LaborRegister { job_id, sp_pubkey } => {
                w.u8(4);
                w.u64(*job_id);
                w.bytes(sp_pubkey);
            }
            MaRequest::FetchLabor { job_id } => {
                w.u8(5);
                w.u64(*job_id);
            }
            MaRequest::SubmitPayment {
                sp_pubkey,
                ciphertext,
            } => {
                w.u8(6);
                w.bytes(sp_pubkey);
                w.bytes(ciphertext);
            }
            MaRequest::SubmitData {
                job_id,
                sp_pubkey,
                data,
            } => {
                w.u8(7);
                w.u64(*job_id);
                w.bytes(sp_pubkey);
                w.bytes(data);
            }
            MaRequest::FetchPayment { sp_pubkey } => {
                w.u8(8);
                w.bytes(sp_pubkey);
            }
            MaRequest::FetchData { job_id } => {
                w.u8(9);
                w.u64(*job_id);
            }
            MaRequest::DepositBatch { account, spends } => {
                w.u8(10);
                account.encode(w);
                put_list(w, spends, |w, s| s.encode(w));
            }
            MaRequest::Balance { account } => {
                w.u8(11);
                account.encode(w);
            }
            MaRequest::Shutdown => w.u8(12),
        }
    }
}

impl WireDecode for MaRequest {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => MaRequest::RegisterJoAccount {
                funds: r.u64()?,
                clpk: ClPublicKey::decode(r)?,
            },
            1 => MaRequest::RegisterSpAccount,
            2 => MaRequest::PublishJob {
                description: r.str()?,
                payment: r.u64()?,
                pseudonym: r.bytes()?.to_vec(),
            },
            3 => MaRequest::Withdraw {
                account: AccountId::decode(r)?,
                nonce: r.u64()?,
                auth: ClSignature::decode(r)?,
                blinded: r.int()?,
            },
            4 => MaRequest::LaborRegister {
                job_id: r.u64()?,
                sp_pubkey: r.bytes()?.to_vec(),
            },
            5 => MaRequest::FetchLabor { job_id: r.u64()? },
            6 => MaRequest::SubmitPayment {
                sp_pubkey: r.bytes()?.to_vec(),
                ciphertext: r.bytes()?.to_vec(),
            },
            7 => MaRequest::SubmitData {
                job_id: r.u64()?,
                sp_pubkey: r.bytes()?.to_vec(),
                data: r.bytes()?.to_vec(),
            },
            8 => MaRequest::FetchPayment {
                sp_pubkey: r.bytes()?.to_vec(),
            },
            9 => MaRequest::FetchData { job_id: r.u64()? },
            10 => MaRequest::DepositBatch {
                account: AccountId::decode(r)?,
                spends: read_list(r, Spend::decode)?,
            },
            11 => MaRequest::Balance {
                account: AccountId::decode(r)?,
            },
            12 => MaRequest::Shutdown,
            t => return Err(WireError::BadTag("ma-request", t)),
        })
    }
}

impl WireEncode for MaResponse {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            MaResponse::Account(id) => {
                w.u8(0);
                id.encode(w);
            }
            MaResponse::JobId(id) => {
                w.u8(1);
                w.u64(*id);
            }
            MaResponse::BlindSignature(sig) => {
                w.u8(2);
                w.int(sig);
            }
            MaResponse::Ok => w.u8(3),
            MaResponse::Labor(keys) => {
                w.u8(4);
                put_list(w, keys, |w, k| w.bytes(k));
            }
            MaResponse::Payment(ct) => {
                w.u8(5);
                match ct {
                    Some(ct) => {
                        w.bool(true);
                        w.bytes(ct);
                    }
                    None => w.bool(false),
                }
            }
            MaResponse::Data(reports) => {
                w.u8(6);
                put_list(w, reports, |w, d| w.bytes(d));
            }
            MaResponse::BatchDeposited {
                total,
                accepted,
                rejected,
            } => {
                w.u8(7);
                w.u64(*total);
                w.u64(*accepted as u64);
                w.u64(*rejected as u64);
            }
            MaResponse::Balance(v) => {
                w.u8(8);
                w.u64(*v);
            }
            MaResponse::Err(e) => {
                w.u8(9);
                e.encode(w);
            }
            MaResponse::Drained {
                undelivered_payments,
            } => {
                w.u8(10);
                w.u64(*undelivered_payments as u64);
            }
            MaResponse::Busy => {
                w.u8(11);
            }
        }
    }
}

impl WireDecode for MaResponse {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => MaResponse::Account(AccountId::decode(r)?),
            1 => MaResponse::JobId(r.u64()?),
            2 => MaResponse::BlindSignature(r.int()?),
            3 => MaResponse::Ok,
            4 => MaResponse::Labor(read_list(r, |r| Ok(r.bytes()?.to_vec()))?),
            5 => MaResponse::Payment(if r.bool()? {
                Some(r.bytes()?.to_vec())
            } else {
                None
            }),
            6 => MaResponse::Data(read_list(r, |r| Ok(r.bytes()?.to_vec()))?),
            7 => MaResponse::BatchDeposited {
                total: r.u64()?,
                accepted: r.u64()? as usize,
                rejected: r.u64()? as usize,
            },
            8 => MaResponse::Balance(r.u64()?),
            9 => MaResponse::Err(MarketError::decode(r)?),
            10 => MaResponse::Drained {
                undelivered_payments: r.u64()? as usize,
            },
            11 => MaResponse::Busy,
            t => return Err(WireError::BadTag("ma-response", t)),
        })
    }
}

/// Party-to-party payloads the MA relays without interpreting —
/// PPMSpbs's encrypted labor registration, designation, partially
/// blind signature round trip and deposit tuple, plus the forwarded
/// data/payment deliveries both mechanisms share. The single-threaded
/// drivers size these with real envelope encodings for Table II.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum RelayPayload {
    /// A data report on its way `SP → MA` (PPMSpbs; PPMSdec uses
    /// [`MaRequest::SubmitData`]).
    DataReport {
        /// The sensing data.
        data: Vec<u8>,
    },
    /// A data report forwarded `MA → JO`.
    DataDelivery {
        /// The sensing data.
        data: Vec<u8>,
    },
    /// PPMSpbs labor registration `SP → MA → JO`:
    /// `ENC_rpkjo(rpk_sp, s)` (paper eq. (14)).
    PbsLaborRegister {
        /// The RSA ciphertext.
        ciphertext: Vec<u8>,
    },
    /// PPMSpbs designation reply `JO → MA`: the receiver's one-time
    /// key plus `ENC_rpksp(rpk_JO, sig)` (paper eqs. (16)–(18)).
    PbsDesignation {
        /// The receiving SP's one-time key bytes (routing).
        receiver: Vec<u8>,
        /// The RSA ciphertext.
        ciphertext: Vec<u8>,
    },
    /// PPMSpbs designation forward `MA → SP`.
    PbsDesignationForward {
        /// The RSA ciphertext.
        ciphertext: Vec<u8>,
    },
    /// PPMSpbs blind-signature request `SP → MA → JO`: blinded
    /// message plus the serial as common info (paper eq. (22)).
    PbsBlindRequest {
        /// The blinded message `alpha`.
        alpha: BigUint,
        /// The serial `s` (common info).
        serial: Vec<u8>,
    },
    /// PPMSpbs blind-signature response `JO → MA → SP` (paper
    /// eq. (23)).
    PbsBlindResponse {
        /// The blind signature `beta`.
        beta: BigUint,
    },
    /// PPMSpbs deposit tuple `SP → MA`: `(sig, rpk_SP, rpk_JO, s)`
    /// (paper eq. (26)).
    PbsDeposit {
        /// The unblinded signature.
        sig: BigUint,
        /// The SP's account key bytes.
        sp_key: Vec<u8>,
        /// The JO's account key bytes.
        jo_key: Vec<u8>,
        /// The serial.
        serial: Vec<u8>,
    },
}

impl WireEncode for RelayPayload {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            RelayPayload::DataReport { data } => {
                w.u8(0);
                w.bytes(data);
            }
            RelayPayload::DataDelivery { data } => {
                w.u8(1);
                w.bytes(data);
            }
            RelayPayload::PbsLaborRegister { ciphertext } => {
                w.u8(2);
                w.bytes(ciphertext);
            }
            RelayPayload::PbsDesignation {
                receiver,
                ciphertext,
            } => {
                w.u8(3);
                w.bytes(receiver);
                w.bytes(ciphertext);
            }
            RelayPayload::PbsDesignationForward { ciphertext } => {
                w.u8(4);
                w.bytes(ciphertext);
            }
            RelayPayload::PbsBlindRequest { alpha, serial } => {
                w.u8(5);
                w.int(alpha);
                w.bytes(serial);
            }
            RelayPayload::PbsBlindResponse { beta } => {
                w.u8(6);
                w.int(beta);
            }
            RelayPayload::PbsDeposit {
                sig,
                sp_key,
                jo_key,
                serial,
            } => {
                w.u8(7);
                w.int(sig);
                w.bytes(sp_key);
                w.bytes(jo_key);
                w.bytes(serial);
            }
        }
    }
}

impl WireDecode for RelayPayload {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => RelayPayload::DataReport {
                data: r.bytes()?.to_vec(),
            },
            1 => RelayPayload::DataDelivery {
                data: r.bytes()?.to_vec(),
            },
            2 => RelayPayload::PbsLaborRegister {
                ciphertext: r.bytes()?.to_vec(),
            },
            3 => RelayPayload::PbsDesignation {
                receiver: r.bytes()?.to_vec(),
                ciphertext: r.bytes()?.to_vec(),
            },
            4 => RelayPayload::PbsDesignationForward {
                ciphertext: r.bytes()?.to_vec(),
            },
            5 => RelayPayload::PbsBlindRequest {
                alpha: r.int()?,
                serial: r.bytes()?.to_vec(),
            },
            6 => RelayPayload::PbsBlindResponse { beta: r.int()? },
            7 => RelayPayload::PbsDeposit {
                sig: r.int()?,
                sp_key: r.bytes()?.to_vec(),
                jo_key: r.bytes()?.to_vec(),
                serial: r.bytes()?.to_vec(),
            },
            t => return Err(WireError::BadTag("relay-payload", t)),
        })
    }
}

// ---------------------------------------------------------------------------
// The envelope frame
// ---------------------------------------------------------------------------

/// A versioned, length-prefixed frame around one protocol payload.
#[derive(Debug, Clone)]
pub struct Envelope<T> {
    /// Sender-assigned message id (unique per connection).
    pub msg_id: u64,
    /// For responses: the `msg_id` of the request being answered
    /// (0 for unsolicited messages).
    pub correlation_id: u64,
    /// Trace context: minted once at the originating client and
    /// preserved verbatim across retransmits, shard hops and the
    /// response leg, so one market interaction is one correlated
    /// event stream. 0 means "no trace context" (v2 frames).
    pub trace_id: u64,
    /// The sender-side causal span that emitted this frame — what the
    /// receiver parents its own spans to. 0 on v3/v2 frames ("no span
    /// context": receiver spans root at the trace).
    pub span_id: u64,
    /// The parent of `span_id` on the sender's side (0 = root there).
    pub parent_id: u64,
    /// The originating party.
    pub party: Party,
    /// The payload.
    pub payload: T,
}

impl<T> Envelope<T> {
    /// The frame's causal span context as one value.
    pub fn span_ctx(&self) -> ppms_obs::SpanContext {
        ppms_obs::SpanContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
        }
    }
}

impl<T: WireEncode> Envelope<T> {
    /// Encodes the full frame (header + payload) at [`WIRE_VERSION`].
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_versioned(WIRE_VERSION)
            .expect("current version always encodes")
    }

    /// Appends the full current-version frame to `out` with no
    /// intermediate buffers: the length prefix is patched in place
    /// after the body is written, so a hot reply path can reuse one
    /// scratch `Vec` across frames and stay allocation-free at steady
    /// state.
    pub fn encode_append(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let mut w = WireWriter::appending(std::mem::take(out));
        w.u16(WIRE_VERSION);
        w.u32(0); // body length, patched below
        w.u64(self.msg_id);
        w.u64(self.correlation_id);
        w.u64(self.trace_id);
        w.u64(self.span_id);
        w.u64(self.parent_id);
        self.party.encode(&mut w);
        self.payload.encode(&mut w);
        let mut buf = w.finish();
        // 6 = u16 version + u32 body length, the frame prefix.
        let body_len = (buf.len() - start - 6) as u32;
        buf[start + 2..start + 6].copy_from_slice(&body_len.to_be_bytes());
        let sum = fnv1a(&buf[start + 6..]).to_be_bytes();
        buf.extend_from_slice(&sum);
        *out = buf;
    }

    /// Encodes the frame at an explicit protocol version — the
    /// downgrade path for talking to (and testing against) v3/v2
    /// peers, whose frames carry a bare trace id / no trace context.
    pub fn to_bytes_versioned(&self, version: u16) -> Result<Vec<u8>, WireError> {
        let mut body = WireWriter::new();
        body.u64(self.msg_id);
        body.u64(self.correlation_id);
        match version {
            WIRE_VERSION => {
                body.u64(self.trace_id);
                body.u64(self.span_id);
                body.u64(self.parent_id);
            }
            WIRE_VERSION_V3 => body.u64(self.trace_id),
            WIRE_VERSION_V2 => {}
            v => return Err(WireError::BadVersion(v)),
        }
        self.party.encode(&mut body);
        self.payload.encode(&mut body);
        let body = body.finish();

        let mut w = WireWriter::new();
        w.u16(version);
        w.u32(body.len() as u32);
        let mut out = w.finish();
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a(&body).to_be_bytes());
        Ok(out)
    }
}

impl<T: WireDecode> Envelope<T> {
    /// Decodes a frame, rejecting foreign versions, truncation and
    /// trailing bytes. Accepts the current version,
    /// [`WIRE_VERSION_V3`] (decodes with `span_id = parent_id = 0`)
    /// and [`WIRE_VERSION_V2`] (additionally `trace_id = 0`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Envelope<T>, WireError> {
        let mut r = WireReader::new(bytes);
        let version = r.u16()?;
        if version != WIRE_VERSION && version != WIRE_VERSION_V3 && version != WIRE_VERSION_V2 {
            return Err(WireError::BadVersion(version));
        }
        let body_len = r.u32()? as usize;
        let framed = 2 + 4 + body_len + FRAME_TRAILER_LEN;
        if bytes.len() != framed {
            return Err(if bytes.len() < framed {
                WireError::Truncated
            } else {
                WireError::Trailing
            });
        }
        let body = &bytes[2 + 4..2 + 4 + body_len];
        let trailer = &bytes[2 + 4 + body_len..];
        if fnv1a(body).to_be_bytes() != trailer {
            return Err(WireError::Corrupt);
        }
        let mut r = WireReader::new(body);
        let env = Envelope {
            msg_id: r.u64()?,
            correlation_id: r.u64()?,
            trace_id: if version >= WIRE_VERSION_V3 {
                r.u64()?
            } else {
                0
            },
            span_id: if version >= WIRE_VERSION { r.u64()? } else { 0 },
            parent_id: if version >= WIRE_VERSION { r.u64()? } else { 0 },
            party: Party::decode(&mut r)?,
            payload: T::decode(&mut r)?,
        };
        r.expect_done()?;
        Ok(env)
    }
}

/// Encoded size of `payload` framed in an envelope from `party` —
/// what the message would cost on a real wire. Sizes are independent
/// of the ids (fixed-width fields), so the drivers use 0.
pub fn framed_len<T: WireEncode>(party: Party, payload: &T) -> usize {
    Envelope {
        msg_id: 0,
        correlation_id: 0,
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
        party,
        payload,
    }
    .to_bytes()
    .len()
}

impl<T: WireEncode> WireEncode for &T {
    fn encode(&self, w: &mut WireWriter) {
        (*self).encode(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &MaRequest) {
        let env = Envelope {
            msg_id: 7,
            correlation_id: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: Party::Jo,
            payload: req,
        };
        let bytes = env.to_bytes();
        let back: Envelope<MaRequest> = Envelope::from_bytes(&bytes).expect("decode");
        assert_eq!(back.msg_id, 7);
        assert_eq!(back.party, Party::Jo);
        // Canonical encoding: re-encoding the decoded value is
        // byte-identical.
        let bytes2 = Envelope {
            msg_id: 7,
            correlation_id: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: back.party,
            payload: &back.payload,
        }
        .to_bytes();
        assert_eq!(bytes, bytes2);
    }

    #[test]
    fn simple_requests_roundtrip() {
        roundtrip_request(&MaRequest::RegisterSpAccount);
        roundtrip_request(&MaRequest::PublishJob {
            description: "air quality".into(),
            payment: 3,
            pseudonym: vec![1, 2, 3],
        });
        roundtrip_request(&MaRequest::FetchLabor { job_id: 42 });
        roundtrip_request(&MaRequest::Balance {
            account: AccountId(9),
        });
        roundtrip_request(&MaRequest::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            MaResponse::Account(AccountId(3)),
            MaResponse::JobId(11),
            MaResponse::BlindSignature(BigUint::from(0xDEADBEEFu64)),
            MaResponse::Ok,
            MaResponse::Labor(vec![vec![1], vec![2, 3]]),
            MaResponse::Payment(None),
            MaResponse::Payment(Some(vec![9; 40])),
            MaResponse::Data(vec![]),
            MaResponse::BatchDeposited {
                total: 5,
                accepted: 3,
                rejected: 2,
            },
            MaResponse::Balance(77),
            MaResponse::Err(MarketError::Dec(DecError::DoubleSpend("node".into()))),
            MaResponse::Err(MarketError::Transport("peer gone".into())),
            MaResponse::Drained {
                undelivered_payments: 4,
            },
            MaResponse::Busy,
        ] {
            let bytes = resp.to_wire_bytes();
            let back = MaResponse::from_wire_bytes(&bytes).expect("decode");
            assert_eq!(bytes, back.to_wire_bytes());
        }
    }

    #[test]
    fn bad_version_rejected() {
        let env = Envelope {
            msg_id: 1,
            correlation_id: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: Party::Sp,
            payload: MaRequest::RegisterSpAccount,
        };
        let mut bytes = env.to_bytes();
        bytes[0] = 0xFF;
        assert!(matches!(
            Envelope::<MaRequest>::from_bytes(&bytes),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn truncated_and_trailing_rejected() {
        let env = Envelope {
            msg_id: 1,
            correlation_id: 2,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: Party::Ma,
            payload: MaResponse::Balance(5),
        };
        let bytes = env.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Envelope::<MaResponse>::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            Envelope::<MaResponse>::from_bytes(&extended),
            Err(WireError::Trailing)
        ));
    }

    #[test]
    fn frame_header_len_is_accurate() {
        let env = Envelope {
            msg_id: 0,
            correlation_id: 0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: Party::Ma,
            payload: MaResponse::Ok,
        };
        // MaResponse::Ok is a single tag byte.
        assert_eq!(
            env.to_bytes().len(),
            FRAME_HEADER_LEN + 1 + FRAME_TRAILER_LEN
        );
    }

    #[test]
    fn corrupted_body_rejected_by_trailer() {
        let env = Envelope {
            msg_id: 3,
            correlation_id: 0,
            trace_id: 9,
            span_id: 0,
            parent_id: 0,
            party: Party::Sp,
            payload: MaRequest::FetchLabor { job_id: 42 },
        };
        let bytes = env.to_bytes();
        // Flip every body byte in turn: the checksum must catch each
        // single-byte corruption (the version/length prefix fails its
        // own checks instead).
        for i in 2 + 4..bytes.len() - FRAME_TRAILER_LEN {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    Envelope::<MaRequest>::from_bytes(&bad),
                    Err(WireError::Corrupt)
                ),
                "flip at {i} must be caught"
            );
        }
    }

    #[test]
    fn bool_rejects_junk() {
        let mut r = WireReader::new(&[2]);
        assert!(matches!(r.bool(), Err(WireError::BadTag("bool", 2))));
    }
}
