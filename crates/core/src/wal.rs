//! Per-shard write-ahead journal: the crash-recovery half of the MA's
//! fault-tolerance story.
//!
//! Every shard worker appends a framed [`WalRecord::Begin`] *before*
//! executing a request and a [`WalRecord::Commit`] carrying the
//! response right after. The journal outlives the worker thread (the
//! supervisor owns it through an `Arc`), so when a shard panics or is
//! crash-injected, the respawned incarnation replays the journal to
//! rebuild exactly the state the dead worker held privately:
//!
//! * withdrawal-nonce high-water marks,
//! * labor registrations and data reports keyed to this shard,
//! * the idempotency (dedup) cache of `(party, request_id) →
//!   response`, so retransmits of already-executed requests still
//!   replay their original answer after a crash.
//!
//! Replay applies only *committed* records. A `Begin` without a
//! matching `Commit` marks the request that was in flight when the
//! shard died: it was never applied (the shard journals, then
//! executes, then commits), so replay discards it and the client's
//! retry re-executes it from scratch.
//!
//! Shared state (ledger, bulletin, DEC double-spend set, held
//! payments) lives outside the shards behind `Arc`s and survives a
//! worker crash on its own; journaling it again here would
//! double-apply it on replay. The journal therefore records the full
//! request/response pair (self-describing, useful for audit) but
//! replays only the per-shard projection.
//!
//! Records are framed as real bytes — the same length-prefixed wire
//! codec the transport speaks (the repo's `serde` is a marker-only
//! stand-in, so `crate::wire` is the serialization layer), each frame
//! carrying an FNV-1a integrity trailer like a wire envelope.

use crate::metrics::Party;
use crate::service::{MaRequest, MaResponse, RequestKey};
use crate::wire::{fnv1a, WireDecode, WireEncode, WireError, WireReader, WireWriter};
use parking_lot::Mutex;

/// One journal entry.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// Appended before a request executes. `key` is `None` only for
    /// requests that arrived without an idempotency key (a raw
    /// `Inbound` constructed by hand).
    Begin {
        /// The idempotency key the request arrived under.
        key: Option<RequestKey>,
        /// The request about to execute.
        request: MaRequest,
    },
    /// Appended after a request executed, carrying its response.
    Commit {
        /// The idempotency key the request arrived under.
        key: Option<RequestKey>,
        /// The response that was sent (and cached for retransmits).
        response: MaResponse,
    },
}

fn put_key(w: &mut WireWriter, key: &Option<RequestKey>) {
    match key {
        None => w.bool(false),
        Some(k) => {
            w.bool(true);
            k.party.encode(w);
            w.u64(k.request_id);
        }
    }
}

fn read_key(r: &mut WireReader<'_>) -> Result<Option<RequestKey>, WireError> {
    Ok(if r.bool()? {
        Some(RequestKey {
            party: Party::decode(r)?,
            request_id: r.u64()?,
        })
    } else {
        None
    })
}

impl WireEncode for WalRecord {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            WalRecord::Begin { key, request } => {
                w.u8(0);
                put_key(w, key);
                request.encode(w);
            }
            WalRecord::Commit { key, response } => {
                w.u8(1);
                put_key(w, key);
                response.encode(w);
            }
        }
    }
}

impl WireDecode for WalRecord {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => WalRecord::Begin {
                key: read_key(r)?,
                request: MaRequest::decode(r)?,
            },
            1 => WalRecord::Commit {
                key: read_key(r)?,
                response: MaResponse::decode(r)?,
            },
            t => return Err(WireError::BadTag("wal-record", t)),
        })
    }
}

/// A committed request: what replay applies, in journal order.
#[derive(Debug, Clone)]
pub struct CommittedEntry {
    /// The idempotency key, if the request carried one.
    pub key: Option<RequestKey>,
    /// The request that executed.
    pub request: MaRequest,
    /// The response it produced.
    pub response: MaResponse,
}

/// The replayable content of a journal.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Committed entries in execution order.
    pub committed: Vec<CommittedEntry>,
    /// `Begin` records with no `Commit` — in flight at the crash,
    /// discarded (the client's retry re-executes them).
    pub discarded: u64,
}

/// An append-only, thread-shared journal of framed [`WalRecord`]s.
///
/// In-memory by design: the journal models durability *across worker
/// crashes*, not process restarts (there is no disk in the simulated
/// market). Frames are `[len: u32 BE][record bytes][fnv1a(record): u64
/// BE]`; [`ShardWal::replay`] verifies every frame's checksum, so a
/// corrupted journal fails loudly instead of replaying garbage.
#[derive(Debug, Default)]
pub struct ShardWal {
    frames: Mutex<Vec<u8>>,
}

impl ShardWal {
    /// Fresh, empty journal.
    pub fn new() -> ShardWal {
        ShardWal::default()
    }

    /// Appends one record, framed and checksummed.
    pub fn append(&self, record: &WalRecord) {
        let body = record.to_wire_bytes();
        let mut frames = self.frames.lock();
        frames.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frames.extend_from_slice(&body);
        frames.extend_from_slice(&fnv1a(&body).to_be_bytes());
    }

    /// Total journal size in bytes (frames included).
    pub fn len_bytes(&self) -> usize {
        self.frames.lock().len()
    }

    /// Decodes every frame back into records, verifying checksums.
    pub fn records(&self) -> Result<Vec<WalRecord>, WireError> {
        let frames = self.frames.lock();
        let mut out = Vec::new();
        let mut buf = &frames[..];
        while !buf.is_empty() {
            if buf.len() < 4 {
                return Err(WireError::Truncated);
            }
            let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if buf.len() < 4 + len + 8 {
                return Err(WireError::Truncated);
            }
            let body = &buf[4..4 + len];
            let sum = &buf[4 + len..4 + len + 8];
            if fnv1a(body).to_be_bytes() != sum {
                return Err(WireError::Corrupt);
            }
            out.push(WalRecord::from_wire_bytes(body)?);
            buf = &buf[4 + len + 8..];
        }
        Ok(out)
    }

    /// Pairs every `Begin` with its `Commit` (execution on a shard is
    /// sequential, so records strictly alternate; only a crash tail
    /// can leave a `Begin` unmatched) and returns the committed
    /// entries in order plus the discarded in-flight count.
    pub fn replay(&self) -> Result<WalReplay, WireError> {
        let mut replay = WalReplay::default();
        let mut pending: Option<(Option<RequestKey>, MaRequest)> = None;
        for record in self.records()? {
            match record {
                WalRecord::Begin { key, request } => {
                    if pending.is_some() {
                        // A Begin over a live Begin means the worker
                        // died mid-request earlier: the older one was
                        // never applied.
                        replay.discarded += 1;
                    }
                    pending = Some((key, request));
                }
                WalRecord::Commit { key, response } => {
                    let Some((bkey, request)) = pending.take() else {
                        return Err(WireError::Malformed("wal commit without begin"));
                    };
                    debug_assert_eq!(bkey, key, "commit must answer its begin");
                    replay.committed.push(CommittedEntry {
                        key,
                        request,
                        response,
                    });
                }
            }
        }
        if pending.is_some() {
            replay.discarded += 1;
        }
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::AccountId;

    fn key(id: u64) -> Option<RequestKey> {
        Some(RequestKey {
            party: Party::Sp,
            request_id: id,
        })
    }

    #[test]
    fn committed_records_replay_in_order() {
        let wal = ShardWal::new();
        for i in 0..4u64 {
            wal.append(&WalRecord::Begin {
                key: key(i),
                request: MaRequest::FetchLabor { job_id: i },
            });
            wal.append(&WalRecord::Commit {
                key: key(i),
                response: MaResponse::Labor(vec![]),
            });
        }
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.committed.len(), 4);
        assert_eq!(replay.discarded, 0);
        for (i, entry) in replay.committed.iter().enumerate() {
            assert_eq!(entry.key, key(i as u64));
            assert!(matches!(
                entry.request,
                MaRequest::FetchLabor { job_id } if job_id == i as u64
            ));
        }
    }

    #[test]
    fn inflight_begin_is_discarded() {
        let wal = ShardWal::new();
        wal.append(&WalRecord::Begin {
            key: key(1),
            request: MaRequest::RegisterSpAccount,
        });
        wal.append(&WalRecord::Commit {
            key: key(1),
            response: MaResponse::Account(AccountId(7)),
        });
        // Crash mid-request: Begin with no Commit.
        wal.append(&WalRecord::Begin {
            key: key(2),
            request: MaRequest::Balance {
                account: AccountId(7),
            },
        });
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.committed.len(), 1);
        assert_eq!(replay.discarded, 1);
    }

    #[test]
    fn corrupted_journal_fails_loudly() {
        let wal = ShardWal::new();
        wal.append(&WalRecord::Begin {
            key: None,
            request: MaRequest::RegisterSpAccount,
        });
        // Flip a byte inside the record body.
        wal.frames.lock()[5] ^= 0x10;
        assert!(matches!(wal.replay(), Err(WireError::Corrupt)));
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let wal = ShardWal::new();
        let rec = WalRecord::Commit {
            key: key(9),
            response: MaResponse::BatchDeposited {
                total: 3,
                accepted: 2,
                rejected: 1,
            },
        };
        wal.append(&rec);
        let back = wal.records().expect("decode");
        assert_eq!(back.len(), 1);
        assert!(matches!(
            &back[0],
            WalRecord::Commit {
                key: Some(k),
                response: MaResponse::BatchDeposited {
                    total: 3,
                    accepted: 2,
                    rejected: 1
                }
            } if k.request_id == 9
        ));
    }
}
