//! Per-shard write-ahead journal: the crash-recovery half of the MA's
//! fault-tolerance story.
//!
//! Every shard worker appends a framed [`WalRecord::Begin`] *before*
//! executing a request and a [`WalRecord::Commit`] carrying the
//! response right after. The journal outlives the worker thread (the
//! supervisor owns it through an `Arc`), so when a shard panics or is
//! crash-injected, the respawned incarnation replays the journal to
//! rebuild exactly the state the dead worker held privately:
//!
//! * withdrawal-nonce high-water marks,
//! * labor registrations and data reports keyed to this shard,
//! * the idempotency (dedup) cache of `(party, request_id) →
//!   response`, so retransmits of already-executed requests still
//!   replay their original answer after a crash.
//!
//! Replay applies only *committed* records. A `Begin` without a
//! matching `Commit` marks the request that was in flight when the
//! shard died: it was never applied (the shard journals, then
//! executes, then commits), so replay discards it and the client's
//! retry re-executes it from scratch. The same rule extends one level
//! down, to the *bytes*: a partial final frame (a torn tail, the
//! signature of a crash mid-append) is tolerated and its length
//! reported, while a checksum mismatch on any *complete* frame is a
//! hard error — corruption before the tail means the medium lied, and
//! replaying past it would rebuild a ledger nobody agreed to.
//!
//! Shared state (ledger, bulletin, DEC double-spend set, held
//! payments) lives outside the shards behind `Arc`s and survives a
//! worker crash on its own; the in-memory journal therefore replays
//! only the per-shard projection. The **durable** tier
//! ([`crate::storage`]) reuses these records and this exact framing
//! for its on-disk segments, where a process restart *does* lose the
//! shared state — there, replay applies the full recorded effects
//! (which is why a `Commit` carries the deposit effects explicitly:
//! re-running ZK verification on recovery is neither possible — the
//! verdicts depend on bank-private state order — nor meaningful).
//!
//! Records are framed as real bytes — the same length-prefixed wire
//! codec the transport speaks (the repo's `serde` is a marker-only
//! stand-in, so `crate::wire` is the serialization layer), each frame
//! carrying an FNV-1a integrity trailer like a wire envelope.

use crate::metrics::Party;
use crate::service::{MaRequest, MaResponse, RequestKey};
use crate::wire::{fnv1a, WireDecode, WireEncode, WireError, WireReader, WireWriter};
use parking_lot::Mutex;
use ppms_obs::SpanContext;

/// One journal entry.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// Appended before a request executes. `key` is `None` only for
    /// requests that arrived without an idempotency key (a raw
    /// `Inbound` constructed by hand).
    Begin {
        /// The idempotency key the request arrived under.
        key: Option<RequestKey>,
        /// The span context the request executed under, persisted so
        /// a respawned worker's replay re-attributes each applied
        /// entry to the trace that originally caused it instead of
        /// trace 0. `SpanContext::NONE` for untraced internal sends.
        span: SpanContext,
        /// The request about to execute.
        request: MaRequest,
    },
    /// Appended after a request executed, carrying its response.
    Commit {
        /// The idempotency key the request arrived under.
        key: Option<RequestKey>,
        /// The response that was sent (and cached for retransmits).
        response: MaResponse,
        /// For a `DepositBatch`: the `(index, value)` pairs of the
        /// spends that passed verification and were recorded in the
        /// double-spend set. Cold-start recovery re-inserts exactly
        /// these — the response alone carries only counts, and
        /// re-verifying on replay would wrongly admit spends whose
        /// ZK proofs never passed. Empty for every other request.
        effects: Vec<(u32, u64)>,
    },
}

fn put_key(w: &mut WireWriter, key: &Option<RequestKey>) {
    match key {
        None => w.bool(false),
        Some(k) => {
            w.bool(true);
            k.party.encode(w);
            w.u64(k.request_id);
        }
    }
}

fn read_key(r: &mut WireReader<'_>) -> Result<Option<RequestKey>, WireError> {
    Ok(if r.bool()? {
        Some(RequestKey {
            party: Party::decode(r)?,
            request_id: r.u64()?,
        })
    } else {
        None
    })
}

fn put_span(w: &mut WireWriter, span: &SpanContext) {
    w.u64(span.trace_id);
    w.u64(span.span_id);
    w.u64(span.parent_id);
}

fn read_span(r: &mut WireReader<'_>) -> Result<SpanContext, WireError> {
    Ok(SpanContext {
        trace_id: r.u64()?,
        span_id: r.u64()?,
        parent_id: r.u64()?,
    })
}

impl WireEncode for WalRecord {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            WalRecord::Begin { key, span, request } => {
                w.u8(0);
                put_key(w, key);
                put_span(w, span);
                request.encode(w);
            }
            WalRecord::Commit {
                key,
                response,
                effects,
            } => {
                w.u8(1);
                put_key(w, key);
                response.encode(w);
                crate::wire::put_list(w, effects, |w, &(idx, value)| {
                    w.u32(idx);
                    w.u64(value);
                });
            }
        }
    }
}

impl WireDecode for WalRecord {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => WalRecord::Begin {
                key: read_key(r)?,
                span: read_span(r)?,
                request: MaRequest::decode(r)?,
            },
            1 => WalRecord::Commit {
                key: read_key(r)?,
                response: MaResponse::decode(r)?,
                effects: crate::wire::read_list(r, |r| Ok((r.u32()?, r.u64()?)))?,
            },
            t => return Err(WireError::BadTag("wal-record", t)),
        })
    }
}

/// A committed request: what replay applies, in journal order.
#[derive(Debug, Clone)]
pub struct CommittedEntry {
    /// The idempotency key, if the request carried one.
    pub key: Option<RequestKey>,
    /// The span context the request executed under (from its `Begin`
    /// record) — what replay re-attribution reports.
    pub span: SpanContext,
    /// The request that executed.
    pub request: MaRequest,
    /// The response it produced.
    pub response: MaResponse,
    /// Accepted `(index, value)` pairs of a batch deposit (see
    /// [`WalRecord::Commit::effects`]); empty otherwise.
    pub effects: Vec<(u32, u64)>,
}

/// The replayable content of a journal.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Committed entries in execution order.
    pub committed: Vec<CommittedEntry>,
    /// `Begin` records with no `Commit` — in flight at the crash,
    /// discarded (the client's retry re-executes them).
    pub discarded: u64,
    /// Bytes of a partial final frame (a torn tail): the append that
    /// was in flight when the writer died. Tolerated exactly like an
    /// orphan `Begin` — never applied, reported so the recovery path
    /// can log the loss.
    pub torn_bytes: usize,
}

/// One frame scan failure, positioned for a precise report: `offset`
/// is the byte offset of the offending frame inside the scanned
/// buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameFault {
    /// Byte offset of the frame that failed.
    pub offset: usize,
    /// What was wrong with it.
    pub error: WireError,
}

/// The outcome of scanning a frame buffer: the complete, checksummed
/// frame bodies (with their byte offsets) plus the length of a
/// tolerated torn tail.
#[derive(Debug, Default)]
pub struct FrameScan<'a> {
    /// `(offset, body)` for every complete frame, in order.
    pub frames: Vec<(usize, &'a [u8])>,
    /// Trailing bytes that do not form a complete frame (torn final
    /// write). 0 when the buffer ends exactly on a frame boundary.
    pub torn_bytes: usize,
}

/// Scans a buffer of `[len: u32 BE][body][fnv1a(body): u64 BE]`
/// frames — the framing shared by the in-memory journal and the
/// on-disk segment files.
///
/// * An **incomplete final frame** (not enough bytes left for the
///   header, the announced body, or the trailer) is a torn tail:
///   tolerated, reported via [`FrameScan::torn_bytes`].
/// * A **checksum mismatch on a complete frame** is corruption in the
///   middle of the log: refused with the offending offset.
pub fn scan_frames(buf: &[u8]) -> Result<FrameScan<'_>, FrameFault> {
    let mut scan = FrameScan::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        let rest = &buf[pos..];
        if rest.len() < 4 {
            scan.torn_bytes = rest.len();
            break;
        }
        let len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if rest.len() < 4 + len + 8 {
            scan.torn_bytes = rest.len();
            break;
        }
        let body = &rest[4..4 + len];
        let sum = &rest[4 + len..4 + len + 8];
        if fnv1a(body).to_be_bytes() != sum {
            return Err(FrameFault {
                offset: pos,
                error: WireError::Corrupt,
            });
        }
        scan.frames.push((pos, body));
        pos += 4 + len + 8;
    }
    Ok(scan)
}

/// Appends one framed, checksummed record to a byte buffer — the
/// inverse of [`scan_frames`], shared with the durable segment
/// writer.
pub fn append_frame(buf: &mut Vec<u8>, body: &[u8]) {
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(body);
    buf.extend_from_slice(&fnv1a(body).to_be_bytes());
}

/// An append-only, thread-shared journal of framed [`WalRecord`]s.
///
/// In-memory by design: the journal models durability *across worker
/// crashes*, not process restarts (the durable tier in
/// [`crate::storage`] covers those). Frames are `[len: u32 BE][record
/// bytes][fnv1a(record): u64 BE]`; [`ShardWal::replay`] verifies
/// every frame's checksum, so a corrupted journal fails loudly
/// instead of replaying garbage — while a torn tail (partial final
/// frame) is discarded like the orphan `Begin` it is.
#[derive(Debug, Default)]
pub struct ShardWal {
    frames: Mutex<Vec<u8>>,
}

impl ShardWal {
    /// Fresh, empty journal.
    pub fn new() -> ShardWal {
        ShardWal::default()
    }

    /// Appends one record, framed and checksummed.
    pub fn append(&self, record: &WalRecord) {
        let body = record.to_wire_bytes();
        let mut frames = self.frames.lock();
        append_frame(&mut frames, &body);
    }

    /// Total journal size in bytes (frames included).
    pub fn len_bytes(&self) -> usize {
        self.frames.lock().len()
    }

    /// Decodes every complete frame back into records, verifying
    /// checksums. A torn tail is skipped (see [`scan_frames`]); a
    /// mid-journal checksum mismatch is an error.
    pub fn records(&self) -> Result<Vec<WalRecord>, WireError> {
        let frames = self.frames.lock();
        let scan = scan_frames(&frames).map_err(|fault| fault.error)?;
        scan.frames
            .iter()
            .map(|&(_, body)| WalRecord::from_wire_bytes(body))
            .collect()
    }

    /// Pairs every `Begin` with its `Commit` (execution on a shard is
    /// sequential, so records strictly alternate; only a crash tail
    /// can leave a `Begin` unmatched) and returns the committed
    /// entries in order plus the discarded in-flight count and torn
    /// tail length.
    pub fn replay(&self) -> Result<WalReplay, WireError> {
        let frames = self.frames.lock();
        let scan = scan_frames(&frames).map_err(|fault| fault.error)?;
        let mut records = Vec::with_capacity(scan.frames.len());
        for &(_, body) in &scan.frames {
            records.push(WalRecord::from_wire_bytes(body)?);
        }
        let mut replay = replay_records(records.into_iter())?;
        replay.torn_bytes = scan.torn_bytes;
        Ok(replay)
    }

    /// Truncates the journal to its first `len` bytes — test support
    /// for simulating a writer that died mid-append.
    pub fn truncate_for_test(&self, len: usize) {
        self.frames.lock().truncate(len);
    }
}

/// Pairs `Begin`/`Commit` records into committed entries — the replay
/// state machine, shared by the in-memory journal and the durable
/// log's per-shard recovery.
pub fn replay_records(records: impl Iterator<Item = WalRecord>) -> Result<WalReplay, WireError> {
    let mut replay = WalReplay::default();
    let mut pending: Option<(Option<RequestKey>, SpanContext, MaRequest)> = None;
    for record in records {
        match record {
            WalRecord::Begin { key, span, request } => {
                if pending.is_some() {
                    // A Begin over a live Begin means the worker
                    // died mid-request earlier: the older one was
                    // never applied.
                    replay.discarded += 1;
                }
                pending = Some((key, span, request));
            }
            WalRecord::Commit {
                key,
                response,
                effects,
            } => {
                let Some((bkey, span, request)) = pending.take() else {
                    return Err(WireError::Malformed("wal commit without begin"));
                };
                debug_assert_eq!(bkey, key, "commit must answer its begin");
                replay.committed.push(CommittedEntry {
                    key,
                    span,
                    request,
                    response,
                    effects,
                });
            }
        }
    }
    if pending.is_some() {
        replay.discarded += 1;
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::AccountId;

    fn key(id: u64) -> Option<RequestKey> {
        Some(RequestKey {
            party: Party::Sp,
            request_id: id,
        })
    }

    #[test]
    fn committed_records_replay_in_order() {
        let wal = ShardWal::new();
        for i in 0..4u64 {
            wal.append(&WalRecord::Begin {
                key: key(i),
                span: SpanContext::from_trace(0x1000 + i),
                request: MaRequest::FetchLabor { job_id: i },
            });
            wal.append(&WalRecord::Commit {
                key: key(i),
                response: MaResponse::Labor(vec![]),
                effects: vec![],
            });
        }
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.committed.len(), 4);
        assert_eq!(replay.discarded, 0);
        assert_eq!(replay.torn_bytes, 0);
        for (i, entry) in replay.committed.iter().enumerate() {
            assert_eq!(entry.key, key(i as u64));
            assert_eq!(
                entry.span.trace_id,
                0x1000 + i as u64,
                "replay re-attributes each entry to its Begin's trace"
            );
            assert!(matches!(
                entry.request,
                MaRequest::FetchLabor { job_id } if job_id == i as u64
            ));
        }
    }

    #[test]
    fn inflight_begin_is_discarded() {
        let wal = ShardWal::new();
        wal.append(&WalRecord::Begin {
            key: key(1),
            span: SpanContext::NONE,
            request: MaRequest::RegisterSpAccount,
        });
        wal.append(&WalRecord::Commit {
            key: key(1),
            response: MaResponse::Account(AccountId(7)),
            effects: vec![],
        });
        // Crash mid-request: Begin with no Commit.
        wal.append(&WalRecord::Begin {
            key: key(2),
            span: SpanContext::NONE,
            request: MaRequest::Balance {
                account: AccountId(7),
            },
        });
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.committed.len(), 1);
        assert_eq!(replay.discarded, 1);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        // Regression: a partial final frame (the writer died
        // mid-append) used to surface WireError::Truncated and sink
        // the whole replay. It must behave like an orphan Begin:
        // everything before it replays, the tail's length is reported.
        let wal = ShardWal::new();
        wal.append(&WalRecord::Begin {
            key: key(1),
            span: SpanContext::NONE,
            request: MaRequest::RegisterSpAccount,
        });
        wal.append(&WalRecord::Commit {
            key: key(1),
            response: MaResponse::Account(AccountId(3)),
            effects: vec![],
        });
        wal.append(&WalRecord::Begin {
            key: key(2),
            span: SpanContext::NONE,
            request: MaRequest::RegisterSpAccount,
        });
        let whole = wal.len_bytes();
        for torn_len in [whole - 1, whole - 9, whole - (whole / 3)] {
            let torn = ShardWal::new();
            let bytes = wal.frames.lock().clone();
            torn.frames.lock().extend_from_slice(&bytes[..torn_len]);
            let replay = torn.replay().expect("torn tail must not be fatal");
            assert!(replay.torn_bytes > 0, "tail length must be reported");
            assert!(
                replay.committed.len() <= 1,
                "nothing past the tear may replay"
            );
        }
        // Tearing into the *header* of the final frame (fewer than 4
        // bytes left) is also just a torn tail.
        let torn = ShardWal::new();
        {
            let bytes = wal.frames.lock().clone();
            // Keep the two complete frames plus 2 stray bytes.
            let two_frames = {
                let frames = scan_frames(&bytes).expect("scan");
                let (off, body) = frames.frames[1];
                off + 4 + body.len() + 8
            };
            torn.frames
                .lock()
                .extend_from_slice(&bytes[..two_frames + 2]);
        }
        let replay = torn.replay().expect("2-byte tail tolerated");
        assert_eq!(replay.committed.len(), 1);
        assert_eq!(replay.torn_bytes, 2);
    }

    #[test]
    fn corruption_before_the_tail_stays_fatal() {
        // Regression twin of torn_tail_is_discarded_not_fatal: a
        // checksum mismatch on a frame *before* the end is not a torn
        // tail — it means the medium corrupted history, and replay
        // must refuse rather than rebuild a diverged ledger.
        let wal = ShardWal::new();
        wal.append(&WalRecord::Begin {
            key: key(1),
            span: SpanContext::NONE,
            request: MaRequest::RegisterSpAccount,
        });
        wal.append(&WalRecord::Commit {
            key: key(1),
            response: MaResponse::Account(AccountId(3)),
            effects: vec![],
        });
        // Flip a bit inside the *first* record's body.
        wal.frames.lock()[5] ^= 0x10;
        assert!(matches!(wal.replay(), Err(WireError::Corrupt)));
        assert!(matches!(wal.records(), Err(WireError::Corrupt)));
    }

    #[test]
    fn corrupted_journal_fails_loudly() {
        let wal = ShardWal::new();
        wal.append(&WalRecord::Begin {
            key: None,
            span: SpanContext::NONE,
            request: MaRequest::RegisterSpAccount,
        });
        wal.append(&WalRecord::Commit {
            key: None,
            response: MaResponse::Ok,
            effects: vec![],
        });
        // Flip a byte inside the first record body.
        wal.frames.lock()[5] ^= 0x10;
        assert!(matches!(wal.replay(), Err(WireError::Corrupt)));
    }

    #[test]
    fn scan_reports_precise_corruption_offset() {
        let wal = ShardWal::new();
        wal.append(&WalRecord::Begin {
            key: key(1),
            span: SpanContext::NONE,
            request: MaRequest::RegisterSpAccount,
        });
        let first_len = wal.len_bytes();
        wal.append(&WalRecord::Commit {
            key: key(1),
            response: MaResponse::Ok,
            effects: vec![],
        });
        // Corrupt the *second* frame's body.
        wal.frames.lock()[first_len + 5] ^= 0x01;
        let frames = wal.frames.lock().clone();
        let fault = scan_frames(&frames).expect_err("must refuse");
        assert_eq!(fault.offset, first_len, "offset names the bad frame");
        assert_eq!(fault.error, WireError::Corrupt);
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let wal = ShardWal::new();
        let rec = WalRecord::Commit {
            key: key(9),
            response: MaResponse::BatchDeposited {
                total: 3,
                accepted: 2,
                rejected: 1,
            },
            effects: vec![(0, 2), (2, 1)],
        };
        wal.append(&rec);
        let back = wal.records().expect("decode");
        assert_eq!(back.len(), 1);
        assert!(matches!(
            &back[0],
            WalRecord::Commit {
                key: Some(k),
                response: MaResponse::BatchDeposited {
                    total: 3,
                    accepted: 2,
                    rejected: 1
                },
                effects,
            } if k.request_id == 9 && effects == &vec![(0u32, 2u64), (2, 1)]
        ));
    }
}
