//! Checkpoint snapshots: a single checksummed frame serializing the
//! whole market state a cold start needs — the shared tier (ledger,
//! bulletin, CL bindings, DEC double-spend set, held payments) plus
//! every shard's private projection (nonce high-water marks, labor
//! registrations, data reports, dedup cache in insertion order) and
//! the TCP front door's admission-gate blob.
//!
//! A snapshot file `snap-<covered:016x>.snap` is published with
//! [`Storage::write_atomic`]; `covered` is the LSN *after* the last
//! record the snapshot reflects, so recovery replays exactly the log
//! records with `lsn >= covered`. [`load_latest`] walks snapshots
//! newest-first and skips any whose checksum or decode fails — a
//! checkpoint torn by a crash falls back to its predecessor (which is
//! why compaction only runs after a snapshot reports durable, and why
//! [`save_snapshot`] keeps the previous generation around).

use super::backend::{Storage, StorageError};
use crate::bank::BankSnapshot;
use crate::bulletin::JobProfile;
use crate::metrics::Party;
use crate::service::{MaResponse, RequestKey};
use crate::wal;
use crate::wire::{put_list, read_list, WireDecode, WireEncode, WireError, WireReader, WireWriter};
use ppms_crypto::cl::ClPublicKey;
use ppms_ecash::DecBankState;
use std::sync::Arc;

/// Snapshot body magic: `PPSN`.
const SNAPSHOT_MAGIC: u32 = 0x5050_534e;

/// Snapshot format version.
const SNAPSHOT_VERSION: u16 = 1;

/// One shard's private projection — what its respawn replay would
/// otherwise rebuild from the full log.
#[derive(Debug, Clone, Default)]
pub struct ShardSection {
    /// Withdrawal-nonce high-water marks: `(account, nonce)`.
    pub nonces: Vec<(u64, u64)>,
    /// Labor registrations: `(job_id, pseudonyms)`.
    pub labor: Vec<(u64, Vec<Vec<u8>>)>,
    /// Data reports: `(job_id, reports)`.
    pub reports: Vec<(u64, Vec<Vec<u8>>)>,
    /// Dedup cache in insertion (eviction) order.
    pub dedup: Vec<(RequestKey, MaResponse)>,
}

/// Everything a cold [`crate::service::MaService`] restores before
/// replaying the log tail.
#[derive(Debug, Clone, Default)]
pub struct SnapshotState {
    /// First LSN *not* reflected here: replay resumes at `covered`.
    pub covered: u64,
    /// The ledger.
    pub bank: BankSnapshot,
    /// Published job profiles in id order.
    pub jobs: Vec<JobProfile>,
    /// `account id → CL public key` bindings, sorted by id.
    pub cl_bindings: Vec<(u64, ClPublicKey)>,
    /// DEC bank double-spend state.
    pub dec: DecBankState,
    /// Held payments not yet fetched: `(sp_pubkey, bundle)`.
    pub pending_payments: Vec<(Vec<u8>, Vec<u8>)>,
    /// SP pubkeys whose data report arrived.
    pub received_reports: Vec<Vec<u8>>,
    /// Per-shard projections, indexed by shard id (the length pins
    /// the shard count the snapshot was taken under).
    pub shards: Vec<ShardSection>,
    /// Opaque admission-gate state (`AdmissionGate::export_state`),
    /// absent when no front door was running.
    pub gate: Option<Vec<u8>>,
}

fn put_bytes_list(w: &mut WireWriter, items: &[Vec<u8>]) {
    put_list(w, items, |w, b| w.bytes(b));
}

fn read_bytes_list(r: &mut WireReader<'_>) -> Result<Vec<Vec<u8>>, WireError> {
    read_list(r, |r| Ok(r.bytes()?.to_vec()))
}

fn put_hash_list(w: &mut WireWriter, items: &[[u8; 32]]) {
    put_list(w, items, |w, h| w.bytes(h));
}

fn read_hash_list(r: &mut WireReader<'_>) -> Result<Vec<[u8; 32]>, WireError> {
    read_list(r, |r| {
        let b = r.bytes()?;
        b.try_into()
            .map_err(|_| WireError::Malformed("32-byte hash"))
    })
}

impl WireEncode for ShardSection {
    fn encode(&self, w: &mut WireWriter) {
        put_list(w, &self.nonces, |w, &(account, nonce)| {
            w.u64(account);
            w.u64(nonce);
        });
        put_list(w, &self.labor, |w, (job, pseudonyms)| {
            w.u64(*job);
            put_bytes_list(w, pseudonyms);
        });
        put_list(w, &self.reports, |w, (job, reports)| {
            w.u64(*job);
            put_bytes_list(w, reports);
        });
        put_list(w, &self.dedup, |w, (key, response)| {
            key.party.encode(w);
            w.u64(key.request_id);
            response.encode(w);
        });
    }
}

impl WireDecode for ShardSection {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ShardSection {
            nonces: read_list(r, |r| Ok((r.u64()?, r.u64()?)))?,
            labor: read_list(r, |r| Ok((r.u64()?, read_bytes_list(r)?)))?,
            reports: read_list(r, |r| Ok((r.u64()?, read_bytes_list(r)?)))?,
            dedup: read_list(r, |r| {
                Ok((
                    RequestKey {
                        party: Party::decode(r)?,
                        request_id: r.u64()?,
                    },
                    MaResponse::decode(r)?,
                ))
            })?,
        })
    }
}

impl WireEncode for SnapshotState {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.u64(self.covered);
        w.u64(self.bank.next_id);
        put_list(w, &self.bank.accounts, |w, &(id, bal)| {
            w.u64(id);
            w.u64(bal);
        });
        put_list(w, &self.jobs, |w, job| {
            w.u64(job.job_id);
            w.str(&job.description);
            w.u64(job.payment);
            w.bytes(&job.pseudonym);
        });
        put_list(w, &self.cl_bindings, |w, (id, clpk)| {
            w.u64(*id);
            clpk.encode(w);
        });
        put_hash_list(w, &self.dec.spent);
        put_hash_list(w, &self.dec.ancestors);
        put_list(w, &self.dec.coin_totals, |w, (root, total)| {
            w.bytes(root);
            w.u64(*total);
        });
        put_list(w, &self.pending_payments, |w, (pk, bundle)| {
            w.bytes(pk);
            w.bytes(bundle);
        });
        put_bytes_list(w, &self.received_reports);
        put_list(w, &self.shards, |w, section| section.encode(w));
        match &self.gate {
            None => w.bool(false),
            Some(blob) => {
                w.bool(true);
                w.bytes(blob);
            }
        }
    }
}

impl WireDecode for SnapshotState {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        if r.u32()? != SNAPSHOT_MAGIC {
            return Err(WireError::Malformed("snapshot magic"));
        }
        if r.u16()? != SNAPSHOT_VERSION {
            return Err(WireError::Malformed("snapshot version"));
        }
        Ok(SnapshotState {
            covered: r.u64()?,
            bank: BankSnapshot {
                next_id: r.u64()?,
                accounts: read_list(r, |r| Ok((r.u64()?, r.u64()?)))?,
            },
            jobs: read_list(r, |r| {
                Ok(JobProfile {
                    job_id: r.u64()?,
                    description: r.str()?,
                    payment: r.u64()?,
                    pseudonym: r.bytes()?.to_vec(),
                })
            })?,
            cl_bindings: read_list(r, |r| Ok((r.u64()?, ClPublicKey::decode(r)?)))?,
            dec: DecBankState {
                spent: read_hash_list(r)?,
                ancestors: read_hash_list(r)?,
                coin_totals: read_list(r, |r| {
                    let root: [u8; 32] = r
                        .bytes()?
                        .try_into()
                        .map_err(|_| WireError::Malformed("32-byte root tag"))?;
                    Ok((root, r.u64()?))
                })?,
            },
            pending_payments: read_list(r, |r| Ok((r.bytes()?.to_vec(), r.bytes()?.to_vec())))?,
            received_reports: read_bytes_list(r)?,
            shards: read_list(r, ShardSection::decode)?,
            gate: if r.bool()? {
                Some(r.bytes()?.to_vec())
            } else {
                None
            },
        })
    }
}

fn snapshot_name(covered: u64) -> String {
    format!("snap-{covered:016x}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Publishes `state` atomically and durably, then prunes old
/// generations down to `keep` (the new one included — `keep >= 2`
/// retains a fallback for the next torn checkpoint). Returns the file
/// name written.
pub fn save_snapshot(
    storage: &Arc<dyn Storage>,
    state: &SnapshotState,
    keep: usize,
) -> Result<String, StorageError> {
    let body = state.to_wire_bytes();
    let mut framed = Vec::with_capacity(body.len() + 12);
    wal::append_frame(&mut framed, &body);
    let name = snapshot_name(state.covered);
    storage.write_atomic(&name, &framed)?;
    let mut existing: Vec<u64> = storage
        .list()?
        .iter()
        .filter_map(|n| parse_snapshot_name(n))
        .collect();
    existing.sort_unstable_by(|a, b| b.cmp(a)); // newest first
    for &old in existing.iter().skip(keep.max(1)) {
        storage.remove(&snapshot_name(old))?;
    }
    Ok(name)
}

/// The result of hunting for a usable snapshot.
#[derive(Debug, Default)]
pub struct SnapshotLoad {
    /// The newest snapshot that passed its checksum and decoded, if
    /// any.
    pub state: Option<SnapshotState>,
    /// Its file name.
    pub name: Option<String>,
    /// Newer snapshot files that were skipped as unreadable (torn
    /// checkpoint publications) — surfaced so recovery can report the
    /// fallback.
    pub skipped: Vec<String>,
}

/// Walks snapshots newest-first and returns the first readable one.
/// A snapshot that fails its frame checksum or decode is *skipped*,
/// not fatal: it is the torn remnant of a checkpoint that never
/// finished publishing, and its predecessor (still on the medium —
/// compaction only runs after a successful publish) is authoritative.
pub fn load_latest(storage: &Arc<dyn Storage>) -> Result<SnapshotLoad, StorageError> {
    let mut names: Vec<(u64, String)> = storage
        .list()?
        .into_iter()
        .filter_map(|n| parse_snapshot_name(&n).map(|covered| (covered, n)))
        .collect();
    names.sort_unstable_by(|a, b| b.cmp(a)); // newest first
    let mut load = SnapshotLoad::default();
    for (_, name) in names {
        let data = storage.read(&name)?;
        let usable = wal::scan_frames(&data).ok().and_then(|scan| {
            if scan.frames.len() == 1 && scan.torn_bytes == 0 {
                SnapshotState::from_wire_bytes(scan.frames[0].1).ok()
            } else {
                None
            }
        });
        match usable {
            Some(state) => {
                load.state = Some(state);
                load.name = Some(name);
                return Ok(load);
            }
            None => load.skipped.push(name),
        }
    }
    Ok(load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;

    fn sample(covered: u64) -> SnapshotState {
        SnapshotState {
            covered,
            bank: BankSnapshot {
                next_id: 3,
                accounts: vec![(0, 100), (1, 7), (2, 0)],
            },
            jobs: vec![JobProfile {
                job_id: 0,
                description: "noise mapping".into(),
                payment: 8,
                pseudonym: vec![1, 2, 3],
            }],
            cl_bindings: vec![],
            dec: DecBankState {
                spent: vec![[0xAB; 32]],
                ancestors: vec![[0x01; 32], [0x02; 32]],
                coin_totals: vec![([0xCD; 32], 5)],
            },
            pending_payments: vec![(vec![9, 9], vec![1, 2, 3, 4])],
            received_reports: vec![vec![9, 9]],
            shards: vec![
                ShardSection {
                    nonces: vec![(0, 4)],
                    labor: vec![(0, vec![vec![7]])],
                    reports: vec![],
                    dedup: vec![(
                        RequestKey {
                            party: Party::Jo,
                            request_id: 11,
                        },
                        MaResponse::Ok,
                    )],
                },
                ShardSection::default(),
            ],
            gate: Some(vec![0xFE, 0xED]),
        }
    }

    fn storage() -> Arc<dyn Storage> {
        Arc::new(SimStorage::new())
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let state = sample(42);
        let bytes = state.to_wire_bytes();
        let back = SnapshotState::from_wire_bytes(&bytes).expect("decode");
        assert_eq!(back.to_wire_bytes(), bytes);
        assert_eq!(back.covered, 42);
        assert_eq!(back.bank, state.bank);
        assert_eq!(back.dec, state.dec);
        assert_eq!(back.shards.len(), 2);
        assert_eq!(back.gate.as_deref(), Some(&[0xFE, 0xED][..]));
    }

    #[test]
    fn save_load_and_prune() {
        let s = storage();
        for covered in [10u64, 20, 30] {
            save_snapshot(&s, &sample(covered), 2).expect("save");
        }
        let mut files = s.list().unwrap();
        files.sort();
        assert_eq!(
            files,
            vec![snapshot_name(20), snapshot_name(30)],
            "keep=2 prunes the oldest"
        );
        let load = load_latest(&s).expect("load");
        assert_eq!(load.state.expect("state").covered, 30);
        assert_eq!(load.name.as_deref(), Some(snapshot_name(30).as_str()));
        assert!(load.skipped.is_empty());
    }

    #[test]
    fn torn_newest_snapshot_falls_back_to_predecessor() {
        let s = storage();
        save_snapshot(&s, &sample(10), 2).unwrap();
        save_snapshot(&s, &sample(20), 2).unwrap();
        // Tear the newest: keep only half its bytes (a checkpoint
        // publication the crash interrupted).
        let newest = snapshot_name(20);
        let bytes = s.read(&newest).unwrap();
        s.write_atomic(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let load = load_latest(&s).expect("load");
        assert_eq!(load.state.expect("state").covered, 10, "fell back");
        assert_eq!(load.skipped, vec![newest]);
    }

    #[test]
    fn flipped_bit_in_snapshot_is_skipped_not_trusted() {
        let s = storage();
        save_snapshot(&s, &sample(10), 2).unwrap();
        save_snapshot(&s, &sample(20), 2).unwrap();
        let newest = snapshot_name(20);
        let mut bytes = s.read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        s.write_atomic(&newest, &bytes).unwrap();
        let load = load_latest(&s).expect("load");
        assert_eq!(load.state.expect("state").covered, 10);
        assert_eq!(load.skipped, vec![newest]);
    }

    #[test]
    fn no_snapshot_is_a_clean_cold_start() {
        let load = load_latest(&storage()).expect("load");
        assert!(load.state.is_none());
        assert!(load.skipped.is_empty());
    }
}
