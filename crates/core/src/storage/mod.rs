//! The durable storage tier (DESIGN.md §14): an on-disk write-ahead
//! log with checkpoints, log compaction and cold-start recovery.
//!
//! The in-memory shard journal ([`crate::wal`]) already gives the MA
//! exactly-once semantics across *worker* crashes; this tier extends
//! the same records, framing and replay discipline to *process*
//! crashes, layered as:
//!
//! * [`backend`] — the byte-level [`Storage`] contract plus disk,
//!   simulated-with-durability-watermark and fault-injecting
//!   implementations;
//! * [`log`] — [`DurableLog`], segment files of framed
//!   `[shard][WalRecord]` entries with group commit and compaction;
//! * [`snapshot`] — checksummed whole-market checkpoints published
//!   atomically, the base state recovery replays the log tail onto.
//!
//! The recovery entry point itself lives in `service.rs`
//! (`MaService::recover`): it owns the request semantics replay
//! needs. This module stays policy-free byte plumbing.

pub mod backend;
pub mod log;
pub mod snapshot;

pub use backend::{DiskStorage, FaultyStorage, SimStorage, Storage, StorageError, StorageFaults};
pub use log::{DurableLog, LogRecovery};
pub use snapshot::{load_latest, save_snapshot, ShardSection, SnapshotLoad, SnapshotState};

use std::fmt;
use std::sync::Arc;

/// When appended log records reach durable media.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append: a positive response implies the
    /// request is durable. The safest and slowest setting.
    #[default]
    Always,
    /// Group commit: fsync once per `every` appends (plus rotation,
    /// checkpoint and shutdown). Responses inside the window may
    /// precede durability — after a crash the client's retry
    /// re-executes, which the crash-matrix convergence tests cover.
    Batch {
        /// Appends per fsync.
        every: u64,
    },
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::Batch { every } => write!(f, "batch-{every}"),
        }
    }
}

/// Configuration of the durable tier for one `MaService` instance.
#[derive(Clone)]
pub struct DurabilityConfig {
    /// Where segments and snapshots live.
    pub storage: Arc<dyn Storage>,
    /// fsync discipline for the log.
    pub sync: SyncPolicy,
    /// Rotate the live segment past this size (bytes).
    pub segment_bytes: usize,
    /// Take a checkpoint automatically once this many records
    /// accumulate past the last snapshot; `0` = manual checkpoints
    /// only ([`crate::service::MaService::checkpoint`]).
    pub checkpoint_every: u64,
    /// Snapshot generations to retain (`>= 2` keeps a fallback for a
    /// torn checkpoint publication).
    pub keep_snapshots: usize,
}

impl DurabilityConfig {
    /// Defaults: fsync-always, 64 KiB segments, manual checkpoints,
    /// two snapshot generations.
    pub fn new(storage: Arc<dyn Storage>) -> DurabilityConfig {
        DurabilityConfig {
            storage,
            sync: SyncPolicy::default(),
            segment_bytes: 64 * 1024,
            checkpoint_every: 0,
            keep_snapshots: 2,
        }
    }
}

impl fmt::Debug for DurabilityConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityConfig")
            .field("sync", &self.sync)
            .field("segment_bytes", &self.segment_bytes)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("keep_snapshots", &self.keep_snapshots)
            .finish_non_exhaustive()
    }
}
