//! Storage backends for the durable tier: a minimal byte-oriented
//! [`Storage`] trait with three implementations —
//!
//! * [`DiskStorage`] over `std::fs`, the production backend;
//! * [`SimStorage`], an in-memory filesystem with an explicit
//!   *durability watermark* per file (bytes past the last `sync` are
//!   volatile), whose [`SimStorage::crash_image`] produces the
//!   post-crash view — durable prefix plus a seeded torn tail of the
//!   unsynced suffix — the crash-matrix harness recovers from;
//! * [`FaultyStorage`], a seeded fault-injection wrapper mirroring the
//!   transport's `FlakyByteStream` (fsync lies, torn atomic writes,
//!   short reads, read-side bit flips).
//!
//! The trait is deliberately tiny — append, sync, read, truncate,
//! list, remove, atomic whole-file replace — exactly what a
//! segment-file WAL plus checkpoint snapshots need, and nothing a
//! crash simulation cannot model faithfully.

use crate::wire::WireError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a durable-tier operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The backend I/O failed (message carries the OS detail).
    Io(String),
    /// A named file does not exist.
    Missing(String),
    /// On-medium corruption detected before the log tail: the named
    /// file has a bad frame/header at `offset`. Recovery refuses to
    /// replay past this — corrupted history must not rebuild a ledger
    /// nobody agreed to.
    Corrupt {
        /// File the corruption was found in.
        file: String,
        /// Byte offset of the offending frame or header.
        offset: usize,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// A record or snapshot failed to decode after its checksum
    /// passed (a version skew or a logic bug, not bit rot).
    Wire(WireError),
    /// The snapshot was taken under a different shard count than the
    /// recovering configuration — per-shard projections cannot be
    /// re-dealt (resharding is out of scope), so recovery refuses.
    ShardMismatch {
        /// Shard count recorded in the snapshot.
        snapshot: usize,
        /// Shard count of the recovering service config.
        config: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage i/o: {msg}"),
            StorageError::Missing(name) => write!(f, "no such storage file: {name}"),
            StorageError::Corrupt {
                file,
                offset,
                detail,
            } => {
                write!(f, "corrupt storage file {file} at byte {offset}: {detail}")
            }
            StorageError::Wire(e) => write!(f, "storage decode: {e}"),
            StorageError::ShardMismatch { snapshot, config } => write!(
                f,
                "snapshot taken with {snapshot} shards, config has {config}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<WireError> for StorageError {
    fn from(e: WireError) -> Self {
        StorageError::Wire(e)
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// A flat namespace of append-only files with explicit durability.
///
/// Contract (what the crash model simulates and recovery relies on):
///
/// * `append` makes bytes *visible* to `read` immediately but durable
///   only after `sync(name)` returns.
/// * `write_atomic` replaces a file all-or-nothing **and** durably
///   (temp file + fsync + rename) — the checkpoint publication
///   primitive.
/// * `truncate` discards a torn tail found during recovery so later
///   appends never interleave with dead bytes.
pub trait Storage: Send + Sync + fmt::Debug {
    /// Appends bytes to `name`, creating it if absent. Visible at
    /// once, durable after [`Storage::sync`].
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;

    /// Forces previously appended bytes of `name` to durable media.
    fn sync(&self, name: &str) -> Result<(), StorageError>;

    /// Reads the whole current (volatile) content of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError>;

    /// Truncates `name` to its first `len` bytes, durably.
    fn truncate(&self, name: &str, len: u64) -> Result<(), StorageError>;

    /// All file names, unordered.
    fn list(&self) -> Result<Vec<String>, StorageError>;

    /// Deletes `name` (idempotent — deleting an absent file is `Ok`,
    /// so a compaction retry after a crash converges).
    fn remove(&self, name: &str) -> Result<(), StorageError>;

    /// Replaces `name` with `bytes`, atomically and durably: after
    /// `Ok`, readers see exactly `bytes`; after a crash, readers see
    /// either the old content or the new — never a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
}

// ---------------------------------------------------------------------------
// Disk
// ---------------------------------------------------------------------------

/// Prefix for in-flight atomic-write temporaries; never listed.
const TMP_PREFIX: &str = "tmp-";

/// `std::fs`-backed storage rooted at one directory.
#[derive(Debug, Clone)]
pub struct DiskStorage {
    dir: PathBuf,
}

impl DiskStorage {
    /// Opens (creating if needed) a storage directory. Leftover
    /// atomic-write temporaries from a previous crash are deleted —
    /// they were never renamed, so they were never published.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskStorage, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().starts_with(TMP_PREFIX) {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(DiskStorage { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// fsync the directory itself so renames/unlinks are durable.
    /// Best-effort: opening a directory for fsync works on Linux;
    /// elsewhere the rename is still atomic, just not yet durable.
    fn sync_dir(&self) {
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl Storage for DiskStorage {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)?;
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<(), StorageError> {
        match fs::File::open(self.path(name)) {
            Ok(f) => Ok(f.sync_data()?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::Missing(name.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::Missing(name.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), StorageError> {
        let f = fs::OpenOptions::new().write(true).open(self.path(name))?;
        f.set_len(len)?;
        f.sync_data()?;
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with(TMP_PREFIX) {
                names.push(name);
            }
        }
        Ok(names)
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => {
                self.sync_dir();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = self.path(&format!("{TMP_PREFIX}{name}"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.path(name))?;
        self.sync_dir();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Simulated storage with a durability watermark
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct SimFile {
    bytes: Vec<u8>,
    /// Bytes `[0, synced)` survive a crash; the rest is page cache.
    synced: usize,
}

/// In-memory storage with per-file durability watermarks. Clones
/// share state (the live process sees its own unsynced writes);
/// [`SimStorage::crash_image`] derives the view a *restarted* process
/// would read from the medium.
#[derive(Debug, Clone, Default)]
pub struct SimStorage {
    files: Arc<Mutex<HashMap<String, SimFile>>>,
}

impl SimStorage {
    /// Fresh empty storage.
    pub fn new() -> SimStorage {
        SimStorage::default()
    }

    /// The post-crash view of this storage: every file keeps its
    /// durable prefix plus a seeded-length *torn tail* of the unsynced
    /// suffix — writeback may have persisted any prefix of the bytes
    /// the process never fsynced. Deterministic in `seed` (and
    /// per-file, so the tear does not depend on map iteration order).
    pub fn crash_image(&self, seed: u64) -> SimStorage {
        let files = self.files.lock();
        let mut crashed = HashMap::with_capacity(files.len());
        for (name, file) in files.iter() {
            let unsynced = file.bytes.len() - file.synced;
            let torn = if unsynced == 0 {
                0
            } else {
                (splitmix64(seed ^ crate::wire::fnv1a(name.as_bytes())) % (unsynced as u64 + 1))
                    as usize
            };
            let keep = file.synced + torn;
            crashed.insert(
                name.clone(),
                SimFile {
                    bytes: file.bytes[..keep].to_vec(),
                    synced: keep,
                },
            );
        }
        SimStorage {
            files: Arc::new(Mutex::new(crashed)),
        }
    }

    /// Flips bit `mask` of byte `offset` in `name` — medium bit rot
    /// for corruption-detection tests.
    pub fn flip_bit(&self, name: &str, offset: usize, mask: u8) {
        let mut files = self.files.lock();
        let file = files.get_mut(name).expect("flip_bit: no such file");
        file.bytes[offset] ^= mask;
    }

    /// Current (volatile) length of `name`, 0 if absent.
    pub fn len(&self, name: &str) -> usize {
        self.files.lock().get(name).map_or(0, |f| f.bytes.len())
    }

    /// Durable length of `name`, 0 if absent.
    pub fn synced_len(&self, name: &str) -> usize {
        self.files.lock().get(name).map_or(0, |f| f.synced)
    }
}

/// The scramble behind every seeded choice in this module (same
/// generator family the chaos tests use).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Storage for SimStorage {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.files
            .lock()
            .entry(name.to_string())
            .or_default()
            .bytes
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<(), StorageError> {
        let mut files = self.files.lock();
        let file = files
            .get_mut(name)
            .ok_or_else(|| StorageError::Missing(name.to_string()))?;
        file.synced = file.bytes.len();
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.files
            .lock()
            .get(name)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| StorageError::Missing(name.to_string()))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), StorageError> {
        let mut files = self.files.lock();
        let file = files
            .get_mut(name)
            .ok_or_else(|| StorageError::Missing(name.to_string()))?;
        file.bytes.truncate(len as usize);
        file.synced = file.synced.min(file.bytes.len());
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.files.lock().keys().cloned().collect())
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        self.files.lock().remove(name);
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.files.lock().insert(
            name.to_string(),
            SimFile {
                bytes: bytes.to_vec(),
                synced: bytes.len(),
            },
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Seeded fault rates for [`FaultyStorage`] — the durable tier's
/// sibling of the transport's `FlakyConfig`. All rates are
/// probabilities in `[0, 1]`; the default injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageFaults {
    /// `sync()` returns `Ok` without persisting anything — an fsync
    /// lie (drive write-cache, lying hypervisor). The data stays
    /// volatile and vanishes from the next crash image.
    pub sync_lie: f64,
    /// `write_atomic` publishes a *truncated prefix* and then fails —
    /// a kill during checkpoint publication on a medium without
    /// honest rename atomicity. Recovery must detect the bad checksum
    /// and fall back to the previous snapshot.
    pub torn_atomic: f64,
    /// `read()` returns a truncated copy — a short read.
    pub short_read: f64,
    /// `read()` returns a copy with one bit flipped — medium rot
    /// surfacing at read time.
    pub read_flip: f64,
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
}

/// Wraps any [`Storage`] and injects seeded faults per
/// [`StorageFaults`]. Deterministic: the same seed and operation
/// sequence produce the same faults.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    faults: StorageFaults,
    state: Mutex<u64>,
}

impl FaultyStorage {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: Arc<dyn Storage>, faults: StorageFaults) -> FaultyStorage {
        FaultyStorage {
            inner,
            faults,
            state: Mutex::new(splitmix64(faults.seed ^ 0x0073_746f_7261_6765)), // "storage"
        }
    }

    fn roll(&self) -> u64 {
        let mut state = self.state.lock();
        *state = splitmix64(*state);
        *state
    }

    /// Seeded Bernoulli trial.
    fn chance(&self, p: f64) -> bool {
        p > 0.0 && ((self.roll() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl Storage for FaultyStorage {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner.append(name, bytes)
    }

    fn sync(&self, name: &str) -> Result<(), StorageError> {
        if self.chance(self.faults.sync_lie) {
            return Ok(()); // the lie: claims durability, persists nothing
        }
        self.inner.sync(name)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        let mut bytes = self.inner.read(name)?;
        if !bytes.is_empty() && self.chance(self.faults.short_read) {
            let keep = (self.roll() % bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        if !bytes.is_empty() && self.chance(self.faults.read_flip) {
            let at = (self.roll() % bytes.len() as u64) as usize;
            bytes[at] ^= 1 << (self.roll() % 8);
        }
        Ok(bytes)
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), StorageError> {
        self.inner.truncate(name, len)
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.inner.list()
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        self.inner.remove(name)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        if !bytes.is_empty() && self.chance(self.faults.torn_atomic) {
            let keep = (self.roll() % bytes.len() as u64) as usize;
            self.inner.write_atomic(name, &bytes[..keep])?;
            return Err(StorageError::Io("injected: torn atomic write".into()));
        }
        self.inner.write_atomic(name, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique on-disk scratch dir per test invocation (no clocks —
    /// the suite must stay deterministic).
    fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ppms-storage-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn sim_watermark_semantics() {
        let s = SimStorage::new();
        s.append("a", b"hello ").unwrap();
        s.append("a", b"world").unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello world");
        assert_eq!(s.synced_len("a"), 0, "nothing durable before sync");
        s.sync("a").unwrap();
        assert_eq!(s.synced_len("a"), 11);
        s.append("a", b"!!!").unwrap();
        // A crash image keeps the durable prefix plus at most the
        // unsynced suffix.
        for seed in 0..16u64 {
            let img = s.crash_image(seed);
            let bytes = img.read("a").unwrap();
            assert!(bytes.len() >= 11 && bytes.len() <= 14);
            assert_eq!(&bytes[..11], b"hello world");
        }
        // Deterministic in the seed.
        assert_eq!(
            s.crash_image(7).read("a").unwrap(),
            s.crash_image(7).read("a").unwrap()
        );
        // Some seed actually tears (the suffix is not always kept).
        assert!(
            (0..64u64).any(|seed| s.crash_image(seed).read("a").unwrap().len() < 14),
            "tearing must be reachable"
        );
    }

    #[test]
    fn sim_write_atomic_is_durable() {
        let s = SimStorage::new();
        s.write_atomic("snap", b"abc").unwrap();
        assert_eq!(s.crash_image(1).read("snap").unwrap(), b"abc");
        // Replacement fully supersedes.
        s.write_atomic("snap", b"xy").unwrap();
        assert_eq!(s.crash_image(2).read("snap").unwrap(), b"xy");
    }

    #[test]
    fn sim_truncate_and_flip() {
        let s = SimStorage::new();
        s.append("f", &[0u8; 8]).unwrap();
        s.sync("f").unwrap();
        s.flip_bit("f", 3, 0x10);
        assert_eq!(s.read("f").unwrap()[3], 0x10);
        s.truncate("f", 2).unwrap();
        assert_eq!(s.len("f"), 2);
        assert_eq!(s.synced_len("f"), 2, "watermark clamps to new length");
    }

    #[test]
    fn disk_storage_roundtrip() {
        let dir = scratch_dir("roundtrip");
        let s = DiskStorage::open(&dir).unwrap();
        s.append("seg", b"abc").unwrap();
        s.append("seg", b"def").unwrap();
        s.sync("seg").unwrap();
        assert_eq!(s.read("seg").unwrap(), b"abcdef");
        s.truncate("seg", 4).unwrap();
        assert_eq!(s.read("seg").unwrap(), b"abcd");
        s.write_atomic("snap", b"state").unwrap();
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["seg".to_string(), "snap".to_string()]);
        s.remove("seg").unwrap();
        s.remove("seg").unwrap(); // idempotent
        assert!(matches!(s.read("seg"), Err(StorageError::Missing(_))));
        // Reopen cleans stray temporaries.
        fs::write(dir.join("tmp-snap"), b"torn").unwrap();
        let s2 = DiskStorage::open(&dir).unwrap();
        assert_eq!(s2.list().unwrap(), vec!["snap".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_lie_loses_data_at_crash() {
        let sim = SimStorage::new();
        let faulty = FaultyStorage::new(
            Arc::new(sim.clone()),
            StorageFaults {
                sync_lie: 1.0,
                seed: 9,
                ..StorageFaults::default()
            },
        );
        faulty.append("f", b"doomed").unwrap();
        faulty.sync("f").unwrap(); // lies
        assert_eq!(sim.synced_len("f"), 0);
        // Worst-case crash image (seed chosen so the tear keeps 0
        // bytes of the unsynced suffix) loses everything.
        assert!(
            (0..64u64).any(|seed| sim.crash_image(seed).read("f").unwrap().is_empty()),
            "an fsync lie must be able to lose the whole write"
        );
    }

    #[test]
    fn torn_atomic_write_publishes_prefix_and_errors() {
        let sim = SimStorage::new();
        let faulty = FaultyStorage::new(
            Arc::new(sim.clone()),
            StorageFaults {
                torn_atomic: 1.0,
                seed: 3,
                ..StorageFaults::default()
            },
        );
        let err = faulty
            .write_atomic("snap", b"full snapshot bytes")
            .unwrap_err();
        assert!(matches!(err, StorageError::Io(_)));
        let published = sim.read("snap").unwrap();
        assert!(published.len() < b"full snapshot bytes".len());
    }

    #[test]
    fn short_reads_and_flips_are_seeded() {
        let sim = SimStorage::new();
        sim.append("f", &[0xAA; 64]).unwrap();
        let make = |seed| {
            FaultyStorage::new(
                Arc::new(sim.clone()),
                StorageFaults {
                    short_read: 0.5,
                    read_flip: 0.5,
                    seed,
                    ..StorageFaults::default()
                },
            )
        };
        let a: Vec<_> = (0..8).map(|_| make(1).read("f").unwrap()).collect();
        let b: Vec<_> = (0..8).map(|_| make(1).read("f").unwrap()).collect();
        assert_eq!(a, b, "same seed, same faults");
        assert!(
            (0..32).any(|i| make(i).read("f").unwrap() != sim.read("f").unwrap()),
            "faults must actually fire"
        );
    }
}
