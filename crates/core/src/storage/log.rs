//! The on-disk WAL: an append-only sequence of segment files over a
//! [`Storage`] backend, reusing the exact record framing of the
//! in-memory shard journal (`crate::wal`).
//!
//! Layout. Records carry a global, strictly increasing LSN. Each
//! segment file `wal-<start_lsn:016x>.seg` begins with a 16-byte
//! header and then standard `[len][body][fnv1a]` frames, where every
//! body is `[shard: u32][WalRecord]` — one shared log, records tagged
//! with the shard that wrote them (commit order across shards *is*
//! the append order, which recovery replays).
//!
//! Durability. [`SyncPolicy::Always`] fsyncs after every append;
//! [`SyncPolicy::Batch`] group-commits, fsyncing every `every`
//! appends (and at rotation, checkpoint and shutdown via
//! [`DurableLog::flush`]). fsync latency lands in the `wal.fsync_ns`
//! histogram.
//!
//! Recovery semantics, mirroring `wal::scan_frames`: a torn tail is
//! tolerated **only in the final segment** (the one append that can
//! die mid-write) and is truncated away on open; a checksum mismatch
//! on any complete frame, a short non-final segment, an LSN gap or a
//! bad header are refused with a [`StorageError::Corrupt`] naming the
//! file and byte offset.
//!
//! Compaction. [`DurableLog::compact`] seals the live segment and
//! deletes every segment fully covered by the last durable snapshot,
//! so replay-after-checkpoint reads only post-snapshot records.

use super::backend::{Storage, StorageError};
use super::SyncPolicy;
use crate::wal::{self, WalRecord, WalReplay};
use crate::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use parking_lot::Mutex;
use ppms_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Instant;

/// Segment header magic: `PPWS` ("privacy-preserving WAL segment").
const SEGMENT_MAGIC: u32 = 0x5050_5753;

/// Segment format version. v2: `WalRecord::Begin` carries the span
/// context of the request it journals (trace/span/parent ids), so
/// recovery replay can re-attribute entries to their originating
/// trace. v1 segments are refused rather than misdecoded.
const SEGMENT_VERSION: u16 = 2;

/// Header bytes: magic u32, version u16, reserved u16, start LSN u64.
const SEGMENT_HEADER_LEN: usize = 16;

fn segment_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.seg")
}

fn segment_header(start_lsn: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..4].copy_from_slice(&SEGMENT_MAGIC.to_be_bytes());
    h[4..6].copy_from_slice(&SEGMENT_VERSION.to_be_bytes());
    h[8..16].copy_from_slice(&start_lsn.to_be_bytes());
    h
}

#[derive(Debug, Clone)]
struct SegmentMeta {
    start_lsn: u64,
    name: String,
    bytes: usize,
}

#[derive(Debug)]
struct LogInner {
    /// Sorted by `start_lsn`; the last entry is the live segment.
    segments: Vec<SegmentMeta>,
    /// LSN the next append receives.
    next_lsn: u64,
    /// Appends since the last fsync (group-commit window).
    unsynced: u64,
    /// Total frame+header bytes across all live segments.
    total_bytes: usize,
}

/// What [`DurableLog::open`] found on the medium.
#[derive(Debug, Default)]
pub struct LogRecovery {
    /// Every committed-or-not record in LSN order, tagged with the
    /// shard that wrote it: `(lsn, shard, record)`.
    pub records: Vec<(u64, u32, WalRecord)>,
    /// First LSN still present (records below it live only in a
    /// snapshot) — the compaction-bound assertion reads this.
    pub start_lsn: u64,
    /// Bytes of the torn tail truncated from the final segment.
    pub torn_bytes: usize,
    /// Segment files read.
    pub segments_read: usize,
}

/// The instance-wide durable write-ahead log.
#[derive(Debug)]
pub struct DurableLog {
    storage: Arc<dyn Storage>,
    policy: SyncPolicy,
    segment_bytes: usize,
    inner: Mutex<LogInner>,
    fsync_ns: Arc<Histogram>,
    fsyncs: Arc<Counter>,
    compactions: Arc<Counter>,
    segments_compacted: Arc<Counter>,
    torn_bytes_total: Arc<Counter>,
    disk_bytes: Arc<Gauge>,
    segments_gauge: Arc<Gauge>,
    records_gauge: Arc<Gauge>,
}

impl DurableLog {
    /// Opens (or creates) the log on `storage`, replaying whatever
    /// the medium holds. Torn tails are truncated; corruption before
    /// the tail refuses to open.
    pub fn open(
        storage: Arc<dyn Storage>,
        policy: SyncPolicy,
        segment_bytes: usize,
        obs: &Registry,
    ) -> Result<(DurableLog, LogRecovery), StorageError> {
        let mut names: Vec<(u64, String)> = Vec::new();
        for name in storage.list()? {
            if let Some(start) = parse_segment_name(&name) {
                names.push((start, name));
            }
        }
        names.sort_unstable();

        let mut recovery = LogRecovery::default();
        let mut segments = Vec::with_capacity(names.len().max(1));
        let mut next_lsn = names.first().map_or(0, |&(start, _)| start);
        recovery.start_lsn = next_lsn;
        let last_idx = names.len().wrapping_sub(1);
        for (i, (start, name)) in names.iter().enumerate() {
            let is_last = i == last_idx;
            if *start != next_lsn {
                return Err(StorageError::Corrupt {
                    file: name.clone(),
                    offset: 0,
                    detail: format!("segment starts at lsn {start}, expected {next_lsn}"),
                });
            }
            let data = storage.read(name)?;
            if data.len() < SEGMENT_HEADER_LEN {
                if is_last {
                    // The rotation died mid-header: the segment holds
                    // no records. Rewrite it whole.
                    recovery.torn_bytes += data.len();
                    storage.truncate(name, 0)?;
                    storage.append(name, &segment_header(*start))?;
                    storage.sync(name)?;
                    segments.push(SegmentMeta {
                        start_lsn: *start,
                        name: name.clone(),
                        bytes: SEGMENT_HEADER_LEN,
                    });
                    recovery.segments_read += 1;
                    continue;
                }
                return Err(StorageError::Corrupt {
                    file: name.clone(),
                    offset: 0,
                    detail: "short non-final segment (no header)".into(),
                });
            }
            check_header(name, &data, *start)?;
            let scan = wal::scan_frames(&data[SEGMENT_HEADER_LEN..]).map_err(|fault| {
                StorageError::Corrupt {
                    file: name.clone(),
                    offset: SEGMENT_HEADER_LEN + fault.offset,
                    detail: fault.error.to_string(),
                }
            })?;
            if scan.torn_bytes > 0 {
                if !is_last {
                    return Err(StorageError::Corrupt {
                        file: name.clone(),
                        offset: data.len() - scan.torn_bytes,
                        detail: "truncated non-final segment".into(),
                    });
                }
                // The one legitimate tear: the final append died
                // mid-write. Discard it so new appends never
                // interleave with dead bytes.
                recovery.torn_bytes += scan.torn_bytes;
                storage.truncate(name, (data.len() - scan.torn_bytes) as u64)?;
            }
            let mut seg_bytes = SEGMENT_HEADER_LEN;
            for &(_, body) in &scan.frames {
                let mut r = WireReader::new(body);
                let shard = r.u32()?;
                let record = WalRecord::decode(&mut r)?;
                r.expect_done()?;
                recovery.records.push((next_lsn, shard, record));
                next_lsn += 1;
                seg_bytes += 4 + body.len() + 8;
            }
            segments.push(SegmentMeta {
                start_lsn: *start,
                name: name.clone(),
                bytes: seg_bytes,
            });
            recovery.segments_read += 1;
        }

        if segments.is_empty() {
            let name = segment_name(next_lsn);
            storage.append(&name, &segment_header(next_lsn))?;
            storage.sync(&name)?;
            segments.push(SegmentMeta {
                start_lsn: next_lsn,
                name,
                bytes: SEGMENT_HEADER_LEN,
            });
        }

        let total_bytes = segments.iter().map(|s| s.bytes).sum();
        let log = DurableLog {
            storage,
            policy,
            segment_bytes: segment_bytes.max(SEGMENT_HEADER_LEN + 1),
            inner: Mutex::new(LogInner {
                segments,
                next_lsn,
                unsynced: 0,
                total_bytes,
            }),
            fsync_ns: obs.histogram("wal.fsync_ns"),
            fsyncs: obs.counter("wal.fsyncs"),
            compactions: obs.counter("wal.compactions"),
            segments_compacted: obs.counter("wal.segments_compacted"),
            torn_bytes_total: obs.counter("wal.torn_bytes"),
            disk_bytes: obs.gauge("wal.disk_bytes"),
            segments_gauge: obs.gauge("wal.segments"),
            records_gauge: obs.gauge("wal.records"),
        };
        log.torn_bytes_total.add(recovery.torn_bytes as u64);
        {
            let inner = log.inner.lock();
            log.publish_gauges(&inner);
        }
        Ok((log, recovery))
    }

    fn publish_gauges(&self, inner: &LogInner) {
        self.disk_bytes.set(inner.total_bytes as i64);
        self.segments_gauge.set(inner.segments.len() as i64);
        self.records_gauge.set(inner.next_lsn as i64);
    }

    fn sync_live(&self, inner: &mut LogInner) -> Result<(), StorageError> {
        if inner.unsynced == 0 {
            return Ok(());
        }
        let name = inner.segments.last().expect("live segment").name.clone();
        let t0 = Instant::now();
        self.storage.sync(&name)?;
        self.fsync_ns.record(t0.elapsed().as_nanos() as u64);
        self.fsyncs.inc();
        inner.unsynced = 0;
        Ok(())
    }

    fn start_segment(&self, inner: &mut LogInner) -> Result<(), StorageError> {
        let name = segment_name(inner.next_lsn);
        self.storage
            .append(&name, &segment_header(inner.next_lsn))?;
        inner.segments.push(SegmentMeta {
            start_lsn: inner.next_lsn,
            name,
            bytes: SEGMENT_HEADER_LEN,
        });
        inner.total_bytes += SEGMENT_HEADER_LEN;
        Ok(())
    }

    /// Appends one record for `shard`, returning its LSN. Honors the
    /// sync policy; rotates to a new segment when the live one is
    /// full (sealing the old one durably first).
    pub fn append(&self, shard: u32, record: &WalRecord) -> Result<u64, StorageError> {
        self.append_spanned(shard, record, ppms_obs::SpanContext::NONE)
    }

    /// Like [`DurableLog::append`], additionally parenting any fsync
    /// this append triggers (per the sync policy) to `ctx` as a
    /// `storage.fsync` span — the deepest rung of a request's causal
    /// trace. `SpanContext::NONE` records no span.
    pub fn append_spanned(
        &self,
        shard: u32,
        record: &WalRecord,
        ctx: ppms_obs::SpanContext,
    ) -> Result<u64, StorageError> {
        let mut w = WireWriter::new();
        w.u32(shard);
        record.encode(&mut w);
        let body = w.finish();
        let mut frame = Vec::with_capacity(body.len() + 12);
        wal::append_frame(&mut frame, &body);

        let mut inner = self.inner.lock();
        if inner.segments.last().expect("live segment").bytes >= self.segment_bytes {
            // Seal the full segment durably before opening the next:
            // only the *final* segment may ever hold a torn tail.
            self.sync_live(&mut inner)?;
            self.start_segment(&mut inner)?;
        }
        let name = inner.segments.last().expect("live segment").name.clone();
        self.storage.append(&name, &frame)?;
        inner.segments.last_mut().expect("live segment").bytes += frame.len();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.unsynced += 1;
        inner.total_bytes += frame.len();
        let will_sync = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::Batch { every } => inner.unsynced >= every.max(1),
        };
        if will_sync {
            let _fsync_span = (!ctx.is_none()).then(|| ppms_obs::Span::child("storage.fsync", ctx));
            self.sync_live(&mut inner)?;
        }
        self.publish_gauges(&inner);
        Ok(lsn)
    }

    /// Forces any group-committed tail to durable media (checkpoint
    /// and shutdown call this; `Always` policy makes it a no-op).
    pub fn flush(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        self.sync_live(&mut inner)
    }

    /// LSN the next append will receive (== records ever appended
    /// when the log has never been compacted).
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    /// First LSN still present on the medium.
    pub fn start_lsn(&self) -> u64 {
        self.inner.lock().segments[0].start_lsn
    }

    /// Live segment count.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Total bytes across live segments.
    pub fn disk_bytes(&self) -> usize {
        self.inner.lock().total_bytes
    }

    /// Drops every segment fully covered by a snapshot that reflects
    /// all records with `lsn < covered`. The live segment is sealed
    /// (synced + rotated) first if it holds covered records, so the
    /// surviving tail contains exactly the records `>= covered`.
    /// Returns the number of segments deleted.
    pub fn compact(&self, covered: u64) -> Result<usize, StorageError> {
        let mut inner = self.inner.lock();
        let live_has_records =
            inner.segments.last().expect("live segment").start_lsn < inner.next_lsn;
        if live_has_records && covered >= inner.next_lsn {
            self.sync_live(&mut inner)?;
            self.start_segment(&mut inner)?;
        }
        let mut removed = 0usize;
        // A segment is covered iff its successor starts at or below
        // `covered` (its own records all have lsn < covered). The
        // live segment never qualifies.
        while inner.segments.len() > 1 && inner.segments[1].start_lsn <= covered {
            let seg = inner.segments.remove(0);
            self.storage.remove(&seg.name)?;
            inner.total_bytes -= seg.bytes;
            removed += 1;
        }
        if removed > 0 {
            self.compactions.inc();
            self.segments_compacted.add(removed as u64);
        }
        self.publish_gauges(&inner);
        Ok(removed)
    }

    /// Replays the per-shard projection for a respawning worker:
    /// every record tagged `shard` still present in the log, paired
    /// Begin/Commit. Holds the append lock for the duration so the
    /// scan never races a concurrent writer mid-frame.
    pub fn replay_shard(&self, shard: u32) -> Result<WalReplay, StorageError> {
        let inner = self.inner.lock();
        let mut records = Vec::new();
        let last = inner.segments.len() - 1;
        for (i, seg) in inner.segments.iter().enumerate() {
            let data = self.storage.read(&seg.name)?;
            if data.len() < SEGMENT_HEADER_LEN {
                return Err(StorageError::Corrupt {
                    file: seg.name.clone(),
                    offset: 0,
                    detail: "short segment (no header)".into(),
                });
            }
            check_header(&seg.name, &data, seg.start_lsn)?;
            let scan = wal::scan_frames(&data[SEGMENT_HEADER_LEN..]).map_err(|fault| {
                StorageError::Corrupt {
                    file: seg.name.clone(),
                    offset: SEGMENT_HEADER_LEN + fault.offset,
                    detail: fault.error.to_string(),
                }
            })?;
            if scan.torn_bytes > 0 && i != last {
                return Err(StorageError::Corrupt {
                    file: seg.name.clone(),
                    offset: data.len() - scan.torn_bytes,
                    detail: "truncated non-final segment".into(),
                });
            }
            for &(_, body) in &scan.frames {
                let mut r = WireReader::new(body);
                let tag = r.u32()?;
                if tag == shard {
                    records.push(WalRecord::decode(&mut r)?);
                }
            }
        }
        Ok(wal::replay_records(records.into_iter())?)
    }
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn check_header(name: &str, data: &[u8], expected_start: u64) -> Result<(), StorageError> {
    let magic = u32::from_be_bytes(data[..4].try_into().expect("4 bytes"));
    let version = u16::from_be_bytes(data[4..6].try_into().expect("2 bytes"));
    let start = u64::from_be_bytes(data[8..16].try_into().expect("8 bytes"));
    if magic != SEGMENT_MAGIC {
        return Err(StorageError::Corrupt {
            file: name.to_string(),
            offset: 0,
            detail: format!("bad segment magic {magic:#010x}"),
        });
    }
    if version != SEGMENT_VERSION {
        return Err(StorageError::Corrupt {
            file: name.to_string(),
            offset: 4,
            detail: format!("unsupported segment version {version}"),
        });
    }
    if start != expected_start {
        return Err(StorageError::Corrupt {
            file: name.to_string(),
            offset: 8,
            detail: format!("header lsn {start} disagrees with name ({expected_start})"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Party;
    use crate::service::{MaRequest, MaResponse, RequestKey};
    use crate::storage::SimStorage;

    fn rec(i: u64) -> WalRecord {
        WalRecord::Begin {
            key: Some(RequestKey {
                party: Party::Sp,
                request_id: i,
            }),
            span: ppms_obs::SpanContext::from_trace(i),
            request: MaRequest::FetchLabor { job_id: i },
        }
    }

    fn commit(i: u64) -> WalRecord {
        WalRecord::Commit {
            key: Some(RequestKey {
                party: Party::Sp,
                request_id: i,
            }),
            response: MaResponse::Labor(vec![]),
            effects: vec![],
        }
    }

    fn open(
        storage: &SimStorage,
        policy: SyncPolicy,
        segment_bytes: usize,
    ) -> (DurableLog, LogRecovery) {
        DurableLog::open(
            Arc::new(storage.clone()) as Arc<dyn Storage>,
            policy,
            segment_bytes,
            &Registry::new(),
        )
        .expect("open")
    }

    #[test]
    fn append_reopen_roundtrip_preserves_lsns_and_shards() {
        let sim = SimStorage::new();
        {
            let (log, rec0) = open(&sim, SyncPolicy::Always, 1 << 16);
            assert!(rec0.records.is_empty());
            for i in 0..6u64 {
                let lsn = log.append((i % 3) as u32, &rec(i)).unwrap();
                assert_eq!(lsn, i);
            }
        }
        let (log, recovered) = open(&sim, SyncPolicy::Always, 1 << 16);
        assert_eq!(recovered.records.len(), 6);
        assert_eq!(recovered.torn_bytes, 0);
        assert_eq!(recovered.start_lsn, 0);
        for (i, (lsn, shard, record)) in recovered.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(*shard, (i % 3) as u32);
            assert!(matches!(
                record,
                WalRecord::Begin { request: MaRequest::FetchLabor { job_id }, .. }
                    if *job_id == i as u64
            ));
        }
        assert_eq!(log.next_lsn(), 6);
    }

    #[test]
    fn rotation_seals_segments_and_replays_across_them() {
        let sim = SimStorage::new();
        let (log, _) = open(&sim, SyncPolicy::Always, 64); // tiny segments
        for i in 0..10u64 {
            log.append(0, &rec(i)).unwrap();
            log.append(0, &commit(i)).unwrap();
        }
        assert!(log.segment_count() > 2, "tiny cap must force rotation");
        let replay = log.replay_shard(0).unwrap();
        assert_eq!(replay.committed.len(), 10);
        // Every non-final segment must be fully durable (sealed).
        let (_, recovered) = open(&sim, SyncPolicy::Always, 64);
        assert_eq!(recovered.records.len(), 20);
    }

    #[test]
    fn batch_policy_defers_fsync_and_flush_forces_it() {
        let sim = SimStorage::new();
        let (log, _) = open(&sim, SyncPolicy::Batch { every: 100 }, 1 << 16);
        for i in 0..5u64 {
            log.append(0, &rec(i)).unwrap();
        }
        // Nothing synced yet: a zero-tear crash image loses all five.
        let lost = (0..64u64).any(|seed| {
            let (_, r) = open(&sim.crash_image(seed), SyncPolicy::Always, 1 << 16);
            r.records.is_empty()
        });
        assert!(lost, "batch policy must leave a durability window");
        log.flush().unwrap();
        let (_, r) = open(&sim.crash_image(0), SyncPolicy::Always, 1 << 16);
        assert_eq!(r.records.len(), 5, "flush closes the window");
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let sim = SimStorage::new();
        let (log, _) = open(&sim, SyncPolicy::Always, 1 << 16);
        log.append(0, &rec(1)).unwrap();
        log.append(0, &rec(2)).unwrap();
        let name = segment_name(0);
        let whole = sim.len(&name);
        // Tear 5 bytes off the final frame.
        let sim2 = sim.crash_image(0); // all synced: identical copy
        sim2.truncate(&name, (whole - 5) as u64).unwrap();
        let (log2, recovered) = open(&sim2, SyncPolicy::Always, 1 << 16);
        assert_eq!(recovered.records.len(), 1);
        assert!(recovered.torn_bytes > 0);
        // The tail was truncated away: appending now yields a clean log.
        log2.append(7, &rec(9)).unwrap();
        let (_, r3) = open(&sim2, SyncPolicy::Always, 1 << 16);
        assert_eq!(r3.records.len(), 2);
        assert_eq!(r3.records[1].1, 7);
        assert_eq!(r3.records[1].0, 1, "lsn restarts after the tear");
    }

    #[test]
    fn bit_flip_mid_log_is_refused_with_position() {
        let sim = SimStorage::new();
        let (log, _) = open(&sim, SyncPolicy::Always, 1 << 16);
        log.append(0, &rec(1)).unwrap();
        log.append(0, &rec(2)).unwrap();
        let name = segment_name(0);
        // Flip a bit inside the *first* frame's body.
        sim.flip_bit(&name, SEGMENT_HEADER_LEN + 6, 0x40);
        let err = DurableLog::open(
            Arc::new(sim.clone()) as Arc<dyn Storage>,
            SyncPolicy::Always,
            1 << 16,
            &Registry::new(),
        )
        .expect_err("must refuse");
        match err {
            StorageError::Corrupt { file, offset, .. } => {
                assert_eq!(file, name);
                assert_eq!(offset, SEGMENT_HEADER_LEN, "offset names the bad frame");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn compaction_drops_covered_segments_only() {
        let sim = SimStorage::new();
        let (log, _) = open(&sim, SyncPolicy::Always, 64);
        for i in 0..8u64 {
            log.append(0, &rec(i)).unwrap();
        }
        let covered = log.next_lsn();
        let removed = log.compact(covered).unwrap();
        assert!(removed > 0);
        assert_eq!(log.segment_count(), 1, "only the fresh live segment");
        assert_eq!(log.start_lsn(), covered);
        // Appends continue with unbroken lsns…
        log.append(0, &rec(100)).unwrap();
        // …and a reopen sees only the post-compaction tail.
        let (_, recovered) = open(&sim, SyncPolicy::Always, 64);
        assert_eq!(recovered.start_lsn, covered);
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.records[0].0, covered);
    }

    #[test]
    fn partial_coverage_keeps_uncovered_segments() {
        let sim = SimStorage::new();
        let (log, _) = open(&sim, SyncPolicy::Always, 64);
        for i in 0..8u64 {
            log.append(0, &rec(i)).unwrap();
        }
        let segs_before = log.segment_count();
        // A snapshot covering only lsn 0 cannot drop anything beyond
        // segments whose every record is below 1.
        log.compact(1).unwrap();
        assert!(log.segment_count() >= segs_before - 1);
        let (_, recovered) = open(&sim, SyncPolicy::Always, 64);
        let first = recovered.records.first().map(|&(lsn, _, _)| lsn).unwrap();
        assert!(first <= 1, "records >= covered must survive");
        assert_eq!(recovered.records.last().unwrap().0, 7);
    }

    #[test]
    fn lsn_gap_between_segments_is_refused() {
        let sim = SimStorage::new();
        let (log, _) = open(&sim, SyncPolicy::Always, 64);
        for i in 0..8u64 {
            log.append(0, &rec(i)).unwrap();
        }
        assert!(log.segment_count() >= 3);
        // Delete a middle segment wholesale (a short_read-style loss).
        let victims: Vec<String> = sim
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| parse_segment_name(n).is_some_and(|s| s > 0))
            .collect();
        let mut starts: Vec<u64> = victims
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .collect();
        starts.sort_unstable();
        sim.remove(&segment_name(starts[0])).unwrap();
        let err = DurableLog::open(
            Arc::new(sim) as Arc<dyn Storage>,
            SyncPolicy::Always,
            64,
            &Registry::new(),
        )
        .expect_err("gap must refuse");
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }
}
