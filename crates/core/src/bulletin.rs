//! The bulletin board `BB` (paper §IV-A2): the MA publishes job
//! profiles where every market resident can read them. Crucially for
//! the denomination attack, the per-SP payment `w` of each PPMSdec job
//! is **public** here — that is the side channel the cash-break
//! algorithms defeat.

use parking_lot::RwLock;
use std::sync::Arc;

/// A published job profile (paper eq. (1)/(2)): description, payment
/// per SP and the job's pseudonymous identity key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProfile {
    /// Sequential job id assigned by the board.
    pub job_id: u64,
    /// Job description `jd`.
    pub description: String,
    /// Payment per sensing participant `w` (0 ⇒ unitary market).
    pub payment: u64,
    /// The JO's one-time public key bytes (`rpk_jo`) — NOT its identity.
    pub pseudonym: Vec<u8>,
}

/// The shared bulletin board.
#[derive(Debug, Clone, Default)]
pub struct Bulletin {
    jobs: Arc<RwLock<Vec<JobProfile>>>,
}

impl Bulletin {
    /// Fresh empty board.
    pub fn new() -> Bulletin {
        Bulletin::default()
    }

    /// Publishes a profile, assigning and returning its job id.
    pub fn publish(&self, description: String, payment: u64, pseudonym: Vec<u8>) -> u64 {
        let mut jobs = self.jobs.write();
        let job_id = jobs.len() as u64;
        jobs.push(JobProfile {
            job_id,
            description,
            payment,
            pseudonym,
        });
        job_id
    }

    /// Restores a profile at its recorded id — the cold-start
    /// recovery path replaying a committed publication. Ids are dense
    /// (the board assigns `len()`), so replay in commit order lands
    /// each job at its recorded slot; a same-id restore overwrites
    /// (idempotent re-application of the same committed record).
    pub fn restore_job(&self, profile: JobProfile) {
        let mut jobs = self.jobs.write();
        let idx = profile.job_id as usize;
        if idx < jobs.len() {
            jobs[idx] = profile;
            return;
        }
        // Fill any gap with placeholders (only reachable if a later
        // publication committed durably while an earlier one was
        // lost; the lost one's retry re-publishes into the gap).
        while jobs.len() < idx {
            let job_id = jobs.len() as u64;
            jobs.push(JobProfile {
                job_id,
                description: String::new(),
                payment: 0,
                pseudonym: Vec::new(),
            });
        }
        jobs.push(profile);
    }

    /// Reads one profile.
    pub fn get(&self, job_id: u64) -> Option<JobProfile> {
        self.jobs.read().get(job_id as usize).cloned()
    }

    /// All published profiles (what any resident — or adversary — sees).
    pub fn list(&self) -> Vec<JobProfile> {
        self.jobs.read().clone()
    }

    /// Number of published jobs.
    pub fn len(&self) -> usize {
        self.jobs.read().len()
    }

    /// `true` iff no jobs are published.
    pub fn is_empty(&self) -> bool {
        self.jobs.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_read() {
        let bb = Bulletin::new();
        assert!(bb.is_empty());
        let id0 = bb.publish("noise mapping".into(), 8, vec![1, 2, 3]);
        let id1 = bb.publish("transit tracking".into(), 5, vec![4]);
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(bb.len(), 2);
        let job = bb.get(0).unwrap();
        assert_eq!(job.payment, 8);
        assert_eq!(job.pseudonym, vec![1, 2, 3]);
        assert!(bb.get(7).is_none());
    }

    #[test]
    fn list_is_public_view() {
        let bb = Bulletin::new();
        bb.publish("a".into(), 1, vec![]);
        let view = bb.list();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].description, "a");
    }

    #[test]
    fn shared_between_clones() {
        let bb = Bulletin::new();
        let bb2 = bb.clone();
        bb2.publish("x".into(), 2, vec![]);
        assert_eq!(bb.len(), 1);
    }
}
