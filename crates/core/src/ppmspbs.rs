//! **PPMSpbs** (paper §V, Algorithm 4): the light-weight mechanism for
//! markets of unitary payments, built on RSA partially blind
//! signatures — "JO's signature as the digital coin".
//!
//! One round walks the paper's phases:
//!
//! 1. *Job registration* — `JO → MA: jd, rpk_jo` (fresh pseudonymous
//!    key); MA publishes (eqs. (12)–(13)).
//! 2. *Labor registration* — SP draws a one-time key `rpk_sp` and a
//!    random serial `s`, encrypts both under `rpk_jo` (eq. (14));
//!    JO answers with its **account** key `rpk_JO` and a designation
//!    signature, encrypted under `rpk_sp` (eqs. (16)–(18)); SP
//!    verifies (eqs. (20)–(21)).
//! 3. *Payment submission* — SP blinds `(rpk_SP, s)` under `rpk_JO`
//!    with common info `s`; JO signs blind (eq. (22)).
//! 4. *Payment delivery* — after the data report arrives, MA forwards
//!    the partially blind signature (eq. (23)).
//! 5. *Money deposit* — SP unblinds and verifies (eqs. (24)–(25)),
//!    then deposits `(sig, rpk_SP, rpk_JO, s)`; the MA checks the
//!    signature and the **freshness of the serial**, then moves one
//!    credit from JO's account to SP's (eq. (26)).
//!
//! The bank deliberately learns which JO paid which SP (the paper:
//! transaction-linkage against the bank is removed to thwart money
//! laundering) — but never which *job* the transaction belongs to,
//! because jobs are published under pseudonyms.

use crate::bank::{AccountId, Bank};
use crate::bulletin::Bulletin;
use crate::error::MarketError;
use crate::metrics::{Metrics, Op, Party};
use crate::service::MaRequest;
use crate::transport::TrafficLog;
use crate::wire::{self, RelayPayload};
use parking_lot::Mutex;
use ppms_bigint::BigUint;
use ppms_crypto::rsa::{self, RsaPrivateKey, RsaPublicKey};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Serial number length in bytes.
const SERIAL_LEN: usize = 16;

/// The market administrator's PPMSpbs state.
pub struct PbsMarket {
    /// The virtual-currency ledger.
    pub bank: Bank,
    /// The public bulletin board.
    pub bulletin: Bulletin,
    /// Operation counters (Table I).
    pub metrics: Metrics,
    /// Message log (Table II).
    pub traffic: TrafficLog,
    /// Account-key bindings (`rpk_JO`/`rpk_SP` → account), paper §V-A1.
    account_keys: HashMap<Vec<u8>, AccountId>,
    /// Deposited serials (freshness check).
    used_serials: Mutex<HashSet<Vec<u8>>>,
}

/// A job owner in the unitary market.
pub struct PbsJobOwner {
    /// Bank account.
    pub account: AccountId,
    /// Account-bound RSA key (`rpk_JO` — the coin-signing key).
    pub account_key: RsaPrivateKey,
    /// Per-job pseudonymous key (`rpk_jo`).
    pub job_key: RsaPrivateKey,
}

/// A sensing participant in the unitary market.
pub struct PbsParticipant {
    /// Bank account.
    pub account: AccountId,
    /// Account-bound RSA key (`rpk_SP`).
    pub account_key: RsaPrivateKey,
    /// Per-job one-time key (`rpk_sp`).
    pub one_time: RsaPrivateKey,
    /// Pre-agreed serial for this job.
    pub serial: Vec<u8>,
}

/// What a completed round produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbsRoundOutcome {
    /// Bulletin-board job id.
    pub job_id: u64,
    /// Credits moved (always 1 in the unitary market).
    pub credited: u64,
}

impl Default for PbsMarket {
    fn default() -> Self {
        Self::new()
    }
}

impl PbsMarket {
    /// Fresh market state.
    pub fn new() -> PbsMarket {
        PbsMarket {
            bank: Bank::new(),
            bulletin: Bulletin::new(),
            metrics: Metrics::new(),
            traffic: TrafficLog::new(),
            account_keys: HashMap::new(),
            used_serials: Mutex::new(HashSet::new()),
        }
    }

    /// Registers a JO: opens a funded account and binds its RSA
    /// account key.
    pub fn register_jo<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        initial_funds: u64,
        rsa_bits: usize,
    ) -> PbsJobOwner {
        let account = self.bank.open_account(initial_funds);
        let account_key = rsa::keygen(rng, rsa_bits);
        self.account_keys
            .insert(account_key.public.to_bytes(), account);
        PbsJobOwner {
            account,
            account_key,
            job_key: rsa::keygen(rng, rsa_bits),
        }
    }

    /// Registers an SP: opens an account, binds its account key, and
    /// draws the per-job one-time key + serial.
    pub fn register_sp<R: Rng + ?Sized>(&mut self, rng: &mut R, rsa_bits: usize) -> PbsParticipant {
        let account = self.bank.open_account(0);
        let account_key = rsa::keygen(rng, rsa_bits);
        self.account_keys
            .insert(account_key.public.to_bytes(), account);
        let mut serial = vec![0u8; SERIAL_LEN];
        rng.fill_bytes(&mut serial);
        PbsParticipant {
            account,
            account_key,
            one_time: rsa::keygen(rng, rsa_bits),
            serial,
        }
    }

    /// Phase 1 — job registration (eqs. (12)–(13)).
    pub fn register_job(&self, jo: &PbsJobOwner, description: &str) -> u64 {
        let pseudonym = jo.job_key.public.to_bytes();
        self.traffic.record(
            Party::Jo,
            Party::Ma,
            "job-registration",
            wire::framed_len(
                Party::Jo,
                &MaRequest::PublishJob {
                    description: description.to_string(),
                    payment: 1,
                    pseudonym: pseudonym.clone(),
                },
            ),
        );
        self.bulletin.publish(description.to_string(), 1, pseudonym)
    }

    /// Phase 2 — labor registration (eqs. (14)–(21)). Returns `true`
    /// if the SP accepted the JO's designation signature.
    pub fn labor_registration<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        jo: &PbsJobOwner,
        sp: &PbsParticipant,
    ) -> Result<(), MarketError> {
        // SP → MA → JO: ENC_rpkjo(rpk_sp, s)
        let mut msg = sp.one_time.public.to_bytes();
        msg.extend_from_slice(&sp.serial);
        let c = rsa::encrypt(rng, &jo.job_key.public, &msg);
        self.metrics.count(Party::Sp, Op::Enc);
        let reg_len = wire::framed_len(
            Party::Sp,
            &RelayPayload::PbsLaborRegister {
                ciphertext: c.clone(),
            },
        );
        self.traffic
            .record(Party::Sp, Party::Ma, "labor-registration", reg_len);
        self.traffic
            .record(Party::Ma, Party::Jo, "labor-forward", reg_len);

        // JO decrypts, signs (rpk_sp, s), replies under rpk_sp.
        let opened = rsa::decrypt(&jo.job_key, &c)
            .map_err(|_| MarketError::BadPayload("labor reg".into()))?;
        self.metrics.count(Party::Jo, Op::Dec);
        if opened != msg {
            return Err(MarketError::BadPayload("labor reg roundtrip".into()));
        }
        let sig = rsa::sign(&jo.account_key, &opened);
        self.metrics.count(Party::Jo, Op::Enc);
        self.metrics.count(Party::Jo, Op::Hash);

        let mut reply = jo.account_key.public.to_bytes();
        let sig_bytes = sig.to_bytes_be();
        reply.extend_from_slice(&(sig_bytes.len() as u32).to_be_bytes());
        reply.extend_from_slice(&sig_bytes);
        let c2 = rsa::encrypt(rng, &sp.one_time.public, &reply);
        self.metrics.count(Party::Jo, Op::Enc);
        self.traffic.record(
            Party::Jo,
            Party::Ma,
            "designation",
            wire::framed_len(
                Party::Jo,
                &RelayPayload::PbsDesignation {
                    receiver: sp.one_time.public.to_bytes(),
                    ciphertext: c2.clone(),
                },
            ),
        );
        self.traffic.record(
            Party::Ma,
            Party::Sp,
            "designation-forward",
            wire::framed_len(
                Party::Ma,
                &RelayPayload::PbsDesignationForward {
                    ciphertext: c2.clone(),
                },
            ),
        );

        // SP decrypts and verifies the signature under rpk_JO.
        let opened2 = rsa::decrypt(&sp.one_time, &c2)
            .map_err(|_| MarketError::BadPayload("designation".into()))?;
        self.metrics.count(Party::Sp, Op::Dec);
        let jo_account_pk_bytes = jo.account_key.public.to_bytes();
        if opened2.len() < jo_account_pk_bytes.len() + 4 {
            return Err(MarketError::BadPayload("designation framing".into()));
        }
        let (pk_part, rest) = opened2.split_at(jo_account_pk_bytes.len());
        let jo_pk =
            RsaPublicKey::from_bytes(pk_part).ok_or(MarketError::BadPayload("jo key".into()))?;
        let sig_len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if rest.len() != 4 + sig_len {
            return Err(MarketError::BadPayload("designation framing".into()));
        }
        let sig_rx = BigUint::from_bytes_be(&rest[4..]);
        if !rsa::verify(&jo_pk, &msg, &sig_rx) {
            return Err(MarketError::BadPayload("designation signature".into()));
        }
        self.metrics.count(Party::Sp, Op::Dec);
        self.metrics.count(Party::Sp, Op::Hash);
        Ok(())
    }

    /// Phases 3–5 — coin issuance and deposit (eqs. (22)–(26)).
    pub fn pay_and_deposit<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        jo: &PbsJobOwner,
        sp: &PbsParticipant,
        data: &[u8],
    ) -> Result<u64, MarketError> {
        // The signed message is the SP's ACCOUNT key (which the JO
        // never sees in the clear) plus the serial as common info.
        let msg = sp.account_key.public.to_bytes();

        // SP blinds under the JO's account key.
        let (alpha, blinding) = rsa::pbs_blind(rng, &jo.account_key.public, &sp.serial, &msg);
        self.metrics.count(Party::Sp, Op::Enc);
        self.metrics.count(Party::Sp, Op::Hash);
        let request_len = wire::framed_len(
            Party::Sp,
            &RelayPayload::PbsBlindRequest {
                alpha: alpha.clone(),
                serial: sp.serial.clone(),
            },
        );
        self.traffic
            .record(Party::Sp, Party::Ma, "pbs-request", request_len);
        self.traffic
            .record(Party::Ma, Party::Jo, "pbs-forward", request_len);

        // JO signs blind (sees the serial, not the message).
        let beta = rsa::pbs_sign(&jo.account_key, &sp.serial, &alpha)
            .map_err(|_| MarketError::BadCoin("info exponent".into()))?;
        self.metrics.count(Party::Jo, Op::Enc);
        let beta_len = wire::framed_len(
            Party::Jo,
            &RelayPayload::PbsBlindResponse { beta: beta.clone() },
        );
        self.traffic
            .record(Party::Jo, Party::Ma, "pbs-response", beta_len);

        // Data report flows before payment delivery (paper eq. (23)).
        self.traffic.record(
            Party::Sp,
            Party::Ma,
            "data-report",
            wire::framed_len(
                Party::Sp,
                &RelayPayload::DataReport {
                    data: data.to_vec(),
                },
            ),
        );
        self.traffic
            .record(Party::Ma, Party::Sp, "payment-delivery", beta_len);
        self.traffic.record(
            Party::Ma,
            Party::Jo,
            "data-delivery",
            wire::framed_len(
                Party::Ma,
                &RelayPayload::DataDelivery {
                    data: data.to_vec(),
                },
            ),
        );

        // SP unblinds and verifies (eqs. (24)–(25)).
        let sig = rsa::pbs_unblind(&jo.account_key.public, &beta, &blinding);
        if !rsa::pbs_verify(&jo.account_key.public, &sp.serial, &msg, &sig) {
            return Err(MarketError::BadCoin("pbs verification".into()));
        }
        self.metrics.count(Party::Sp, Op::Dec);
        self.metrics.count(Party::Sp, Op::Hash);

        // Deposit: (sig, rpk_SP, rpk_JO, s) → MA (eq. (26)).
        let deposit_len = wire::framed_len(
            Party::Sp,
            &RelayPayload::PbsDeposit {
                sig: sig.clone(),
                sp_key: msg.clone(),
                jo_key: jo.account_key.public.to_bytes(),
                serial: sp.serial.clone(),
            },
        );
        self.traffic
            .record(Party::Sp, Party::Ma, "deposit", deposit_len);
        self.deposit(
            &jo.account_key.public,
            &sp.account_key.public,
            &sp.serial,
            &sig,
        )
    }

    /// Bank-side deposit verification (signature + serial freshness)
    /// and the one-credit transfer.
    pub fn deposit(
        &self,
        jo_pk: &RsaPublicKey,
        sp_pk: &RsaPublicKey,
        serial: &[u8],
        sig: &BigUint,
    ) -> Result<u64, MarketError> {
        if !rsa::pbs_verify(jo_pk, serial, &sp_pk.to_bytes(), sig) {
            return Err(MarketError::BadCoin("deposit signature".into()));
        }
        self.metrics.count(Party::Ma, Op::Dec);
        self.metrics.add(Party::Ma, Op::Hash, 2); // info + message hashes

        // Serial freshness — the double-deposit guard.
        if !self.used_serials.lock().insert(serial.to_vec()) {
            return Err(MarketError::StaleSerial);
        }

        let jo_account = *self
            .account_keys
            .get(&jo_pk.to_bytes())
            .ok_or(MarketError::NoSuchAccount)?;
        let sp_account = *self
            .account_keys
            .get(&sp_pk.to_bytes())
            .ok_or(MarketError::NoSuchAccount)?;
        self.bank.transfer(jo_account, sp_account, 1)?;
        Ok(1)
    }

    /// Runs one complete PPMSpbs round (paper Algorithm 4).
    pub fn run_round<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        jo: &PbsJobOwner,
        sp: &PbsParticipant,
        description: &str,
        data: &[u8],
    ) -> Result<PbsRoundOutcome, MarketError> {
        let job_id = self.register_job(jo, description);
        self.labor_registration(rng, jo, sp)?;
        let credited = self.pay_and_deposit(rng, jo, sp, data)?;
        Ok(PbsRoundOutcome { job_id, credited })
    }
}
