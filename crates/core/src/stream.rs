//! Stratum 1 of the transport stack: the **byte-stream layer**.
//!
//! Everything above this layer ([`crate::frame`] and the typed
//! [`crate::transport::Transport`] backends) moves whole protocol
//! frames; everything below it just moves bytes. [`ByteStream`] is
//! that boundary: read some bytes, write some bytes, shut the pipe
//! down. Implementations may be blocking (a client-side
//! `std::net::TcpStream` with a read timeout) or non-blocking (the
//! server reactor's accepted sockets) — both surface the partial
//! reads and short writes that the framing layer's reassembly and
//! write buffering exist to absorb.
//!
//! The [`FlakyStream`] decorator injects seeded connection faults
//! *underneath* the framing layer, which is exactly where a real
//! network fails: a connection reset tears the stream mid-frame, and
//! the layers above must re-dial, re-admit and retransmit under the
//! same idempotency key.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// A bidirectional byte pipe — the lowest stratum of the transport
/// stack. `read`/`write` follow `std::io` semantics: `Ok(0)` from
/// `read` means the peer closed; `ErrorKind::WouldBlock` (or
/// `TimedOut`, for blocking sockets with a read timeout) means "no
/// bytes right now, try again".
pub trait ByteStream: Send {
    /// Reads up to `buf.len()` bytes. `Ok(0)` = end of stream.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes a prefix of `buf`, returning how many bytes were taken.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Tears the stream down in both directions. Idempotent;
    /// best-effort (a peer that already vanished is not an error).
    fn shutdown(&mut self);
}

/// A TCP socket as a byte stream. Works for both the blocking client
/// side (dial + `set_read_timeout`) and the reactor's non-blocking
/// accepted sockets (`set_nonblocking(true)`), because [`ByteStream`]
/// deliberately keeps `WouldBlock` visible.
pub struct TcpByteStream(pub TcpStream);

impl ByteStream for TcpByteStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn shutdown(&mut self) {
        let _ = self.0.shutdown(std::net::Shutdown::Both);
    }
}

/// Seeded fault rates for a [`FlakyStream`].
#[derive(Debug, Clone, Copy)]
pub struct FlakyConfig {
    /// Probability in `[0, 1]` that any single `read` call tears the
    /// connection (`ConnectionReset`).
    pub read_fail: f64,
    /// Probability in `[0, 1]` that any single `write` call tears the
    /// connection (`BrokenPipe`).
    pub write_fail: f64,
    /// Seed for the fault schedule (deterministic runs).
    pub seed: u64,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig {
            read_fail: 0.0,
            write_fail: 0.0,
            seed: 0,
        }
    }
}

/// A byte stream that randomly tears itself — the loopback stand-in
/// for flaky last-mile connectivity. Once torn, every subsequent call
/// fails too (a reset TCP connection stays reset); recovery means
/// dialing a fresh stream, which is precisely the client behavior the
/// retry layer must exercise.
pub struct FlakyStream<S: ByteStream> {
    inner: S,
    rng: StdRng,
    config: FlakyConfig,
    torn: bool,
}

impl<S: ByteStream> FlakyStream<S> {
    /// Wraps `inner` with the seeded fault schedule of `config`.
    pub fn new(inner: S, config: FlakyConfig) -> FlakyStream<S> {
        FlakyStream {
            inner,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            torn: false,
        }
    }

    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.random_bool(rate)
    }

    fn torn_err(kind: io::ErrorKind) -> io::Error {
        io::Error::new(kind, "injected connection tear")
    }
}

impl<S: ByteStream> ByteStream for FlakyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.torn {
            return Err(Self::torn_err(io::ErrorKind::ConnectionReset));
        }
        if self.roll(self.config.read_fail) {
            self.torn = true;
            self.inner.shutdown();
            return Err(Self::torn_err(io::ErrorKind::ConnectionReset));
        }
        self.inner.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.torn {
            return Err(Self::torn_err(io::ErrorKind::BrokenPipe));
        }
        if self.roll(self.config.write_fail) {
            self.torn = true;
            self.inner.shutdown();
            return Err(Self::torn_err(io::ErrorKind::BrokenPipe));
        }
        self.inner.write(buf)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory byte stream for unit tests: reads from a script,
    /// writes into a sink.
    struct ScriptStream {
        input: Vec<u8>,
        pos: usize,
        written: Vec<u8>,
    }

    impl ByteStream for ScriptStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.input.len() - self.pos);
            buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }

        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn shutdown(&mut self) {}
    }

    #[test]
    fn flaky_stream_stays_torn_after_first_tear() {
        let inner = ScriptStream {
            input: vec![1; 1024],
            pos: 0,
            written: Vec::new(),
        };
        let mut flaky = FlakyStream::new(
            inner,
            FlakyConfig {
                read_fail: 0.5,
                write_fail: 0.0,
                seed: 42,
            },
        );
        let mut buf = [0u8; 16];
        let mut tore = false;
        for _ in 0..64 {
            if flaky.read(&mut buf).is_err() {
                tore = true;
                break;
            }
        }
        assert!(tore, "a 50% fault rate must tear within 64 reads");
        // Torn is terminal: both directions now fail, every time.
        assert!(flaky.read(&mut buf).is_err());
        assert!(flaky.write(&buf).is_err());
    }

    #[test]
    fn fault_free_flaky_stream_is_transparent() {
        let inner = ScriptStream {
            input: vec![7, 8, 9],
            pos: 0,
            written: Vec::new(),
        };
        let mut flaky = FlakyStream::new(inner, FlakyConfig::default());
        let mut buf = [0u8; 8];
        assert_eq!(flaky.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], &[7, 8, 9]);
        assert_eq!(flaky.write(&[1, 2]).unwrap(), 2);
    }

    #[test]
    fn identical_seeds_tear_at_the_same_call() {
        let schedule = |seed: u64| {
            let inner = ScriptStream {
                input: vec![0; 4096],
                pos: 0,
                written: Vec::new(),
            };
            let mut flaky = FlakyStream::new(
                inner,
                FlakyConfig {
                    read_fail: 0.05,
                    write_fail: 0.0,
                    seed,
                },
            );
            let mut buf = [0u8; 4];
            let mut calls = 0u32;
            for _ in 0..1024 {
                calls += 1;
                if flaky.read(&mut buf).is_err() {
                    return Some(calls);
                }
            }
            None
        };
        assert_eq!(schedule(9), schedule(9));
        assert_ne!(schedule(9), schedule(10));
    }
}
