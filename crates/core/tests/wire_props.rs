//! Property-based coverage of the wire protocol: encode∘decode is the
//! identity (witnessed by canonical re-encoding) for every
//! [`MaRequest`] / [`MaResponse`] / [`RelayPayload`] variant and for
//! the e-cash layer's own wire types, truncated buffers never decode,
//! and foreign versions are rejected.

use ppms_bigint::BigUint;
use ppms_core::service::{MaRequest, MaResponse};
use ppms_core::wire::{framed_len, Envelope, RelayPayload, WireDecode, WireEncode, WireError};
use ppms_core::{AccountId, MarketError, Party};
use ppms_crypto::cl::{ClPublicKey, ClSignature};
use ppms_crypto::pairing::Point;
use ppms_ecash::{DecBank, DecError, DecParams, NodePath, Spend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// A real verified spend (keygen is expensive; shared across cases).
fn fixture_spend() -> &'static Spend {
    static F: OnceLock<Spend> = OnceLock::new();
    F.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x31BE);
        let params = DecParams::fixture(2, 6);
        let bank = DecBank::new(&mut rng, params.clone(), 512);
        let coin = bank.withdraw_coin(&mut rng);
        coin.spend(&mut rng, &params, &NodePath::from_index(2, 1), b"")
    })
}

fn party(p: u64) -> Party {
    [Party::Jo, Party::Sp, Party::Ma][(p % 3) as usize]
}

fn point(x: u64, y: u64) -> Point {
    if x == 0 {
        Point::Infinity
    } else {
        Point::Affine {
            x: BigUint::from(x),
            y: BigUint::from(y),
        }
    }
}

fn clpk(a: u64, b: u64) -> ClPublicKey {
    ClPublicKey {
        x_pub: point(a, b),
        y_pub: point(b, a),
    }
}

fn clsig(a: u64, b: u64) -> ClSignature {
    ClSignature {
        a: point(a, b),
        b: point(b, a.wrapping_add(1)),
        c: point(a ^ b, b.wrapping_mul(3)),
    }
}

fn dec_error(k: u64, text: &str) -> DecError {
    match k % 8 {
        0 => DecError::BadBankSignature,
        1 => DecError::BadProof(text.to_string()),
        2 => DecError::BadGroupElement,
        3 => DecError::BadDepth,
        4 => DecError::DoubleSpend(text.to_string()),
        5 => DecError::Overspend,
        6 => DecError::FakeCoin,
        _ => DecError::BadAmount,
    }
}

fn market_error(k: u64, text: &str) -> MarketError {
    match k % 9 {
        0 => MarketError::NoSuchAccount,
        1 => MarketError::InsufficientFunds,
        2 => MarketError::BadAuthentication,
        3 => MarketError::BadPayload(text.to_string()),
        4 => MarketError::BadCoin(text.to_string()),
        5 => MarketError::StaleSerial,
        6 => MarketError::Dec(dec_error(k / 9, text)),
        7 => MarketError::NoSuchJob,
        _ => MarketError::Transport(text.to_string()),
    }
}

/// Deterministically builds each of the 13 request variants from raw
/// generator material (the proptest stub has no `prop_oneof!`).
fn build_request(variant: u64, a: u64, b: u64, blob: &[u8], text: &str) -> MaRequest {
    match variant % 13 {
        0 => MaRequest::RegisterJoAccount {
            funds: a,
            clpk: clpk(a, b),
        },
        1 => MaRequest::RegisterSpAccount,
        2 => MaRequest::PublishJob {
            description: text.to_string(),
            payment: a,
            pseudonym: blob.to_vec(),
        },
        3 => MaRequest::Withdraw {
            account: AccountId(a),
            nonce: b,
            auth: clsig(a, b),
            blinded: BigUint::from(b | 1),
        },
        4 => MaRequest::LaborRegister {
            job_id: a,
            sp_pubkey: blob.to_vec(),
        },
        5 => MaRequest::FetchLabor { job_id: a },
        6 => MaRequest::SubmitPayment {
            sp_pubkey: blob.to_vec(),
            ciphertext: vec![b as u8; (a % 33) as usize],
        },
        7 => MaRequest::SubmitData {
            job_id: a,
            sp_pubkey: blob.to_vec(),
            data: text.as_bytes().to_vec(),
        },
        8 => MaRequest::FetchPayment {
            sp_pubkey: blob.to_vec(),
        },
        9 => MaRequest::FetchData { job_id: a },
        10 => MaRequest::DepositBatch {
            account: AccountId(a),
            spends: vec![fixture_spend().clone(); (b % 3) as usize],
        },
        11 => MaRequest::Balance {
            account: AccountId(a),
        },
        _ => MaRequest::Shutdown,
    }
}

/// Deterministically builds each of the 12 response variants.
fn build_response(variant: u64, a: u64, b: u64, blob: &[u8], text: &str) -> MaResponse {
    match variant % 12 {
        0 => MaResponse::Account(AccountId(a)),
        1 => MaResponse::JobId(a),
        2 => MaResponse::BlindSignature(BigUint::from(a | 1)),
        3 => MaResponse::Ok,
        4 => MaResponse::Labor(vec![blob.to_vec(), vec![], vec![b as u8]]),
        5 => MaResponse::Payment(if b.is_multiple_of(2) {
            None
        } else {
            Some(blob.to_vec())
        }),
        6 => MaResponse::Data(vec![text.as_bytes().to_vec()]),
        7 => MaResponse::BatchDeposited {
            total: a,
            accepted: (b % 100) as usize,
            rejected: (a % 100) as usize,
        },
        8 => MaResponse::Balance(a),
        9 => MaResponse::Err(market_error(b, text)),
        10 => MaResponse::Drained {
            undelivered_payments: (a % 1000) as usize,
        },
        _ => MaResponse::Busy,
    }
}

/// Deterministically builds each of the 8 relay payload variants.
fn build_relay(variant: u64, a: u64, blob: &[u8]) -> RelayPayload {
    match variant % 8 {
        0 => RelayPayload::DataReport {
            data: blob.to_vec(),
        },
        1 => RelayPayload::DataDelivery {
            data: blob.to_vec(),
        },
        2 => RelayPayload::PbsLaborRegister {
            ciphertext: blob.to_vec(),
        },
        3 => RelayPayload::PbsDesignation {
            receiver: vec![a as u8; (a % 9) as usize],
            ciphertext: blob.to_vec(),
        },
        4 => RelayPayload::PbsDesignationForward {
            ciphertext: blob.to_vec(),
        },
        5 => RelayPayload::PbsBlindRequest {
            alpha: BigUint::from(a | 1),
            serial: blob.to_vec(),
        },
        6 => RelayPayload::PbsBlindResponse {
            beta: BigUint::from(a | 1),
        },
        _ => RelayPayload::PbsDeposit {
            sig: BigUint::from(a | 1),
            sp_key: blob.to_vec(),
            jo_key: vec![a as u8; (a % 7) as usize],
            serial: vec![1, 2, 3],
        },
    }
}

/// encode∘decode = id, witnessed by canonical re-encoding (the codec
/// is deterministic, so equal bytes ⇔ equal values).
fn assert_envelope_roundtrip<T: WireEncode + WireDecode>(
    msg_id: u64,
    correlation_id: u64,
    from: Party,
    payload: T,
) -> Result<(), TestCaseError> {
    let trace_id = msg_id.wrapping_mul(0x9E37_79B9) | 1;
    let span_id = msg_id.rotate_left(11) | 1;
    let parent_id = msg_id.rotate_right(23);
    let bytes = Envelope {
        msg_id,
        correlation_id,
        trace_id,
        span_id,
        parent_id,
        party: from,
        payload,
    }
    .to_bytes();
    let back: Envelope<T> = Envelope::from_bytes(&bytes).expect("well-formed frame must decode");
    prop_assert_eq!(back.msg_id, msg_id);
    prop_assert_eq!(back.correlation_id, correlation_id);
    prop_assert_eq!(back.trace_id, trace_id);
    prop_assert_eq!(back.span_id, span_id);
    prop_assert_eq!(back.parent_id, parent_id);
    prop_assert_eq!(back.party, from);
    let re = Envelope {
        msg_id,
        correlation_id,
        trace_id,
        span_id,
        parent_id,
        party: back.party,
        payload: back.payload,
    }
    .to_bytes();
    prop_assert_eq!(bytes, re);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip(
        variant in 0u64..13,
        a in any::<u64>(),
        b in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..48),
        raw_text in prop::collection::vec(any::<u8>(), 0..24),
        ids in any::<u64>(),
        p in 0u64..3,
    ) {
        let text = String::from_utf8_lossy(&raw_text).into_owned();
        let req = build_request(variant, a, b, &blob, &text);
        assert_envelope_roundtrip(ids, ids.wrapping_mul(3), party(p), req)?;
    }

    #[test]
    fn responses_roundtrip(
        variant in 0u64..12,
        a in any::<u64>(),
        b in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..48),
        raw_text in prop::collection::vec(any::<u8>(), 0..24),
        ids in any::<u64>(),
    ) {
        let text = String::from_utf8_lossy(&raw_text).into_owned();
        let resp = build_response(variant, a, b, &blob, &text);
        assert_envelope_roundtrip(ids, ids ^ 0xF0F0, Party::Ma, resp)?;
    }

    #[test]
    fn relay_payloads_roundtrip(
        variant in 0u64..8,
        a in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..64),
        p in 0u64..3,
    ) {
        let relay = build_relay(variant, a, &blob);
        assert_envelope_roundtrip(1, 0, party(p), relay)?;
    }

    #[test]
    fn framed_len_is_id_independent(
        variant in 0u64..13,
        a in any::<u64>(),
        b in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..32),
        ids in any::<u64>(),
        p in 0u64..3,
    ) {
        let req = build_request(variant, a, b, &blob, "t");
        let expected = framed_len(party(p), &req);
        let actual = Envelope {
            msg_id: ids,
            correlation_id: !ids,
            trace_id: ids.rotate_left(17),
            span_id: ids.rotate_left(29),
            parent_id: ids.rotate_left(41),
            party: party(p),
            payload: req,
        }
        .to_bytes()
        .len();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn truncated_frames_never_decode(
        variant in 0u64..13,
        a in any::<u64>(),
        b in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..32),
        cut_frac in 0.0f64..1.0,
    ) {
        let req = build_request(variant, a, b, &blob, "payload");
        let bytes = Envelope { msg_id: 1, correlation_id: 0, trace_id: a, span_id: a ^ 2, parent_id: a ^ 3, party: Party::Jo, payload: req }.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // < len
        prop_assert!(Envelope::<MaRequest>::from_bytes(&bytes[..cut]).is_err());
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(b as u8);
        prop_assert!(matches!(
            Envelope::<MaRequest>::from_bytes(&extended),
            Err(WireError::Trailing)
        ));
    }

    #[test]
    fn foreign_versions_rejected(
        version in 0u16..u16::MAX,
        variant in 0u64..12,
        a in any::<u64>(),
    ) {
        // The current version and the still-decodable v3/v2 are
        // legitimate; everything else must be rejected.
        let version = if version == ppms_core::wire::WIRE_VERSION
            || version == ppms_core::wire::WIRE_VERSION_V3
            || version == ppms_core::wire::WIRE_VERSION_V2
        {
            ppms_core::wire::WIRE_VERSION + 1
        } else {
            version
        };
        let resp = build_response(variant, a, a, &[7, 7], "x");
        let mut bytes = Envelope { msg_id: 2, correlation_id: 1, trace_id: a, span_id: 0, parent_id: 0, party: Party::Ma, payload: resp }.to_bytes();
        bytes[0..2].copy_from_slice(&version.to_be_bytes());
        prop_assert!(matches!(
            Envelope::<MaResponse>::from_bytes(&bytes),
            Err(WireError::BadVersion(v)) if v == version
        ));
    }

    #[test]
    fn v2_frames_decode_without_trace(
        variant in 0u64..12,
        a in any::<u64>(),
        ids in any::<u64>(),
    ) {
        // A pre-trace (v2) frame still decodes; its whole span context
        // reads as 0 (untraced) and re-encoding as v2 reproduces the
        // bytes.
        let resp = build_response(variant, a, a, &[3, 1], "y");
        let v2 = Envelope {
            msg_id: ids,
            correlation_id: ids ^ 1,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            party: Party::Ma,
            payload: resp,
        }
        .to_bytes_versioned(ppms_core::wire::WIRE_VERSION_V2)
        .expect("v2 must encode");
        let back: Envelope<MaResponse> =
            Envelope::from_bytes(&v2).expect("v2 frame must decode");
        prop_assert_eq!(back.msg_id, ids);
        prop_assert_eq!(back.trace_id, 0);
        prop_assert_eq!(back.span_id, 0);
        prop_assert_eq!(back.parent_id, 0);
        let re = back
            .to_bytes_versioned(ppms_core::wire::WIRE_VERSION_V2)
            .expect("v2 must re-encode");
        prop_assert_eq!(re, v2);
        // The v4 encoding of the same envelope is exactly 24 bytes
        // (trace id + span id + parent id) longer.
        prop_assert_eq!(v2.len() + 24, {
            let back2: Envelope<MaResponse> = Envelope::from_bytes(&v2).unwrap();
            back2.to_bytes().len()
        });
    }

    #[test]
    fn v3_frames_decode_with_zero_span_ids(
        variant in 0u64..12,
        a in any::<u64>(),
        ids in any::<u64>(),
    ) {
        // A trace-only (v3) frame keeps its trace id but reads span
        // and parent ids as 0 — a v3 peer joins the trace without
        // contributing tree structure. Re-encoding at v3 reproduces
        // the bytes; upgrading to v4 costs exactly the two new ids.
        let trace = a | 1;
        let resp = build_response(variant, a, a, &[9, 9], "z");
        let v3 = Envelope {
            msg_id: ids,
            correlation_id: ids ^ 2,
            trace_id: trace,
            span_id: ids | 1, // dropped by the v3 encoding
            parent_id: ids | 2,
            party: Party::Ma,
            payload: resp,
        }
        .to_bytes_versioned(ppms_core::wire::WIRE_VERSION_V3)
        .expect("v3 must encode");
        let back: Envelope<MaResponse> =
            Envelope::from_bytes(&v3).expect("v3 frame must decode");
        prop_assert_eq!(back.msg_id, ids);
        prop_assert_eq!(back.trace_id, trace);
        prop_assert_eq!(back.span_id, 0);
        prop_assert_eq!(back.parent_id, 0);
        let re = back
            .to_bytes_versioned(ppms_core::wire::WIRE_VERSION_V3)
            .expect("v3 must re-encode");
        prop_assert_eq!(re, v3);
        let v4 = Envelope::<MaResponse>::from_bytes(&v3).unwrap().to_bytes();
        prop_assert_eq!(v3.len() + 16, v4.len());
    }

    // The framing layer's reassembly law: a concatenation of frames
    // split at *arbitrary* byte boundaries — including one byte at a
    // time — decodes to exactly the same frame sequence as the
    // contiguous stream, with nothing left in the buffer.
    #[test]
    fn frames_reassemble_across_arbitrary_splits(
        variants in prop::collection::vec(0u64..13, 1..5),
        a in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..32),
        cuts in prop::collection::vec(1usize..64, 1..8),
        one_byte in any::<bool>(),
    ) {
        use ppms_core::FrameDecoder;

        let frames: Vec<Vec<u8>> = variants
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Envelope {
                    msg_id: i as u64 + 1,
                    correlation_id: i as u64,
                    trace_id: a.rotate_left(i as u32),
                    span_id: a.rotate_left(i as u32 + 7),
                    parent_id: a.rotate_left(i as u32 + 13),
                    party: party(v),
                    payload: build_request(v, a, a ^ 1, &blob, "split"),
                }
                .to_bytes()
            })
            .collect();
        let stream: Vec<u8> = frames.concat();

        // Contiguous decode: one push yields every frame verbatim.
        let mut whole = FrameDecoder::default();
        whole.push(&stream);
        let mut contiguous = Vec::new();
        while let Some(f) = whole.next_frame().expect("contiguous stream decodes") {
            contiguous.push(f.to_vec());
        }
        prop_assert_eq!(&contiguous, &frames);
        prop_assert_eq!(whole.buffered(), 0);

        // Split decode: feed chunks whose sizes cycle through `cuts`
        // (or single bytes), draining after every push.
        let mut split = FrameDecoder::default();
        let mut reassembled = Vec::new();
        let mut offset = 0usize;
        let mut cut_idx = 0usize;
        while offset < stream.len() {
            let step = if one_byte {
                1
            } else {
                cuts[cut_idx % cuts.len()].min(stream.len() - offset)
            };
            cut_idx += 1;
            split.push(&stream[offset..offset + step]);
            offset += step;
            while let Some(f) = split.next_frame().expect("split stream decodes") {
                reassembled.push(f.to_vec());
            }
        }
        prop_assert_eq!(&reassembled, &frames);
        prop_assert_eq!(split.buffered(), 0);

        // Every reassembled frame still passes envelope decoding
        // (prefix, trailer and version checks included).
        for f in &reassembled {
            prop_assert!(Envelope::<MaRequest>::from_bytes(f).is_ok());
        }
    }

    // Reassembly is position-oblivious: cutting one frame at every
    // single interior byte boundary yields the identical frame.
    #[test]
    fn single_frame_survives_every_split_point(
        variant in 0u64..13,
        a in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        use ppms_core::FrameDecoder;

        let frame = Envelope {
            msg_id: a | 1,
            correlation_id: a,
            trace_id: !a,
            span_id: a.rotate_left(3),
            parent_id: a.rotate_left(5),
            party: party(variant),
            payload: build_request(variant, a, a.rotate_left(7), &blob, "cutpoint"),
        }
        .to_bytes();
        for cut in 1..frame.len() {
            let mut dec = FrameDecoder::default();
            dec.push(&frame[..cut]);
            prop_assert!(
                dec.next_frame().expect("prefix alone never errors").is_none(),
                "partial frame (cut {cut}) must not decode"
            );
            dec.push(&frame[cut..]);
            let got = dec
                .next_frame()
                .expect("completed frame decodes")
                .expect("frame present")
                .to_vec();
            prop_assert_eq!(&got, &frame);
            prop_assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn ecash_spend_bytes_roundtrip(cut_frac in 0.0f64..1.0) {
        // The e-cash layer's own wire types obey the same laws: exact
        // byte round-trip, and no truncated prefix parses.
        let spend = fixture_spend();
        let bytes = spend.to_bytes();
        let back = Spend::from_bytes(&bytes).expect("spend decodes");
        prop_assert_eq!(&back.to_bytes(), &bytes);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(Spend::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn ecash_payment_bundle_roundtrip(n_real in 0usize..3, pad in 0usize..3) {
        let spend = fixture_spend();
        let items: Vec<ppms_ecash::PaymentItem> = (0..n_real)
            .map(|_| ppms_ecash::PaymentItem::Real(spend.clone()))
            .chain((0..pad).map(|i| {
                let mut rng = StdRng::seed_from_u64(i as u64);
                let params = DecParams::fixture(2, 6);
                ppms_ecash::PaymentItem::Fake(ppms_ecash::FakeCoin::matching(
                    &mut rng, &params, 2, 64,
                ))
            }))
            .collect();
        let bytes = ppms_ecash::encode_payment(&items);
        let back = ppms_ecash::decode_payment(&bytes).expect("bundle decodes");
        prop_assert_eq!(ppms_ecash::encode_payment(&back), bytes);
    }
}
