//! Allocation discipline of the reactor's per-frame hot path, pinned
//! by a counting global allocator (same technique as `ppms-obs`'s
//! `span_alloc` and `ppms-bigint`'s `alloc_free`): once the decoder's
//! buffer and the write queue have warmed to steady-state capacity,
//! one full ingress+egress cycle — push raw bytes, borrow the frame
//! in place, decode the envelope, dispatch on the request, enqueue
//! the reply frame and flush it — performs **zero** heap allocations.
//! This is the proof behind DESIGN.md §16's zero-copy claim: the old
//! decoder returned each frame as a fresh `Vec<u8>`, one guaranteed
//! allocation per request, which this test would catch immediately.

use ppms_core::frame::{FrameDecoder, WriteQueue, DEFAULT_MAX_FRAME_BYTES};
use ppms_core::gate::{GateRequest, GateResponse};
use ppms_core::service::{MaRequest, MaResponse};
use ppms_core::stream::ByteStream;
use ppms_core::wire::Envelope;
use ppms_core::{AccountId, Party};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::io;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed by `f` on this thread (growth only).
fn allocs_in(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

/// A write sink that swallows everything — the reactor's socket, as
/// far as `WriteQueue::flush` is concerned, minus the kernel.
struct Sink;

impl ByteStream for Sink {
    fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
        Ok(0)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }
    fn shutdown(&mut self) {}
}

fn request_frame(msg_id: u64) -> Vec<u8> {
    Envelope {
        msg_id,
        correlation_id: 0,
        trace_id: 0x41,
        span_id: 0,
        parent_id: 0,
        party: Party::Jo,
        payload: GateRequest::App {
            token: 7,
            request: MaRequest::Balance {
                account: AccountId(3),
            },
        },
    }
    .to_bytes()
}

fn reply_frame(msg_id: u64) -> Vec<u8> {
    Envelope {
        msg_id: 1,
        correlation_id: msg_id,
        trace_id: 0x41,
        span_id: 0,
        parent_id: 0,
        party: Party::Ma,
        payload: GateResponse::App(MaResponse::Balance(42)),
    }
    .to_bytes()
}

/// One reactor-shaped cycle: raw bytes in, borrowed frame out,
/// envelope decoded in place, request dispatched, reply coalesced
/// into the connection's write queue and flushed.
fn cycle(
    dec: &mut FrameDecoder,
    outq: &mut WriteQueue,
    sink: &mut Sink,
    ingress: &[u8],
    reply: &[u8],
) -> u64 {
    dec.push(ingress);
    let frame = dec
        .next_frame()
        .expect("well-formed frame")
        .expect("complete frame");
    let env = Envelope::<GateRequest>::from_bytes(frame).expect("decodes");
    // Dispatch: the reactor's routing match, minus the shard channel.
    let answered = match env.payload {
        GateRequest::App { token, request } => {
            black_box(token);
            matches!(request, MaRequest::Balance { .. })
        }
        _ => false,
    };
    assert!(answered, "dispatched the app request");
    outq.enqueue(reply).expect("queue has room");
    let flushed = outq.flush(sink).expect("sink never errors") as u64;
    assert!(outq.is_empty(), "fully flushed");
    flushed
}

/// The tentpole claim: a *warmed* decode+dispatch+reply cycle is
/// allocation-free. The first cycle is allowed to allocate (buffer
/// growth, name interning); the next 256 must not.
#[test]
fn warmed_frame_cycle_does_not_allocate() {
    let ingress = request_frame(9);
    let reply = reply_frame(9);
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
    let mut outq = WriteQueue::new(1 << 20);
    let mut sink = Sink;

    // Warm: buffers grow to steady-state capacity here.
    for _ in 0..4 {
        cycle(&mut dec, &mut outq, &mut sink, &ingress, &reply);
    }

    let mut bytes = 0u64;
    let n = allocs_in(|| {
        for _ in 0..256 {
            bytes += cycle(&mut dec, &mut outq, &mut sink, &ingress, &reply);
        }
    });
    assert_eq!(bytes, 256 * reply.len() as u64);
    assert_eq!(
        n, 0,
        "a warmed decode+dispatch+reply cycle must not touch the heap"
    );
}

/// Same discipline when frames arrive fragmented: the decoder's
/// compaction strategy (shift-on-half) must not reallocate at steady
/// state either.
#[test]
fn warmed_fragmented_decode_does_not_allocate() {
    let ingress = request_frame(11);
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
    let split = ingress.len() / 2;

    for _ in 0..4 {
        dec.push(&ingress[..split]);
        assert!(dec.next_frame().expect("ok").is_none(), "incomplete");
        dec.push(&ingress[split..]);
        let frame = dec.next_frame().expect("ok").expect("complete");
        black_box(Envelope::<GateRequest>::from_bytes(frame).expect("decodes"));
    }

    let n = allocs_in(|| {
        for _ in 0..256 {
            dec.push(&ingress[..split]);
            assert!(dec.next_frame().expect("ok").is_none());
            dec.push(&ingress[split..]);
            let frame = dec.next_frame().expect("ok").expect("complete");
            black_box(Envelope::<GateRequest>::from_bytes(frame).expect("decodes"));
        }
    });
    assert_eq!(n, 0, "fragmented reassembly is allocation-free once warmed");
}
