//! Shared helpers for the workspace-level integration tests and
//! examples (which live in the top-level `tests/` and `examples/`
//! directories and are wired into this crate via explicit target
//! paths).

use ppms_core::ppmsdec::DecMarket;
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// RSA modulus size used across tests — small enough to keep the
/// suite fast, structurally identical to production sizes.
pub const TEST_RSA_BITS: usize = 512;

/// Pairing group order bits for tests.
pub const TEST_PAIRING_BITS: usize = 48;

/// Stadler rounds for tests (soundness 2^-12 is plenty for tests;
/// production would use 32+).
pub const TEST_ZKP_ROUNDS: usize = 12;

/// Builds a deterministic RNG for a test.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Builds a DEC market with fixture parameters at `levels`.
pub fn dec_market(seed: u64, levels: usize) -> (DecMarket, StdRng) {
    let mut r = rng(seed);
    let params = DecParams::fixture(levels, TEST_ZKP_ROUNDS);
    let market = DecMarket::new(&mut r, params, TEST_RSA_BITS, TEST_PAIRING_BITS);
    (market, r)
}
