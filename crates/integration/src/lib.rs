//! Shared helpers for the workspace-level integration tests and
//! examples (which live in the top-level `tests/` and `examples/`
//! directories and are wired into this crate via explicit target
//! paths).

use ppms_core::ppmsdec::DecMarket;
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// RSA modulus size used across tests — small enough to keep the
/// suite fast, structurally identical to production sizes.
pub const TEST_RSA_BITS: usize = 512;

/// Pairing group order bits for tests.
pub const TEST_PAIRING_BITS: usize = 48;

/// Stadler rounds for tests (soundness 2^-12 is plenty for tests;
/// production would use 32+).
pub const TEST_ZKP_ROUNDS: usize = 12;

/// Builds a deterministic RNG for a test.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Builds a DEC market with fixture parameters at `levels`.
pub fn dec_market(seed: u64, levels: usize) -> (DecMarket, StdRng) {
    let mut r = rng(seed);
    let params = DecParams::fixture(levels, TEST_ZKP_ROUNDS);
    let market = DecMarket::new(&mut r, params, TEST_RSA_BITS, TEST_PAIRING_BITS);
    (market, r)
}

/// The seeded fault/crash harness shared by `tests/chaos.rs` and
/// `tests/recovery.rs`: one market schedule, one fault-plan builder
/// and one kill grid, so the chaos convergence tests and the durable
/// crash-matrix tests compare against the *same* fault-free ledger.
pub mod harness {
    use ppms_core::sim::{
        drive_market_keyed, run_service_market, spawn_durable_market, KeyedDrive,
        ServiceMarketOutcome, TransportKind,
    };
    use ppms_core::{DurabilityConfig, FaultPlan, SimNetConfig, SimStorage, SyncPolicy};
    use std::sync::Arc;

    /// Seed of the shared deterministic market schedule.
    pub const SEED: u64 = 0xE0;
    /// Service providers in the schedule.
    pub const N_SPS: usize = 3;
    /// Payment each SP receives.
    pub const W: u64 = 3;
    /// Keyed requests the full schedule issues for `N_SPS` (2 setup +
    /// 8 per SP + 1 data fetch + 1 + `N_SPS` balance audits) — kill
    /// points must stay below this.
    pub const SCHEDULE_CALLS: u64 = 2 + 8 * N_SPS as u64 + 2 + N_SPS as u64;

    /// The fault-free outcome every faulted run must converge to.
    pub fn baseline() -> ServiceMarketOutcome {
        run_service_market(SEED, 1, N_SPS, W, TransportKind::InProc).expect("fault-free baseline")
    }

    /// A seeded transport-fault schedule.
    pub fn plan(seed: u64, drop: f64, dup: f64, reorder: f64, corrupt: f64) -> FaultPlan {
        FaultPlan {
            net: SimNetConfig {
                latency_micros: 0,
                jitter_micros: 0,
                drop_rate: drop,
                seed,
            },
            duplicate_rate: dup,
            reorder_rate: reorder,
            corrupt_rate: corrupt,
        }
    }

    /// Kill points of the crash matrix: the schedule is cut after
    /// this many calls (early setup, mid-market, near the audit).
    pub const KILL_POINTS: [u64; 3] = [3, 11, 23];

    /// fsync disciplines of the crash matrix: every append durable
    /// before its ack, and a group-commit window where acknowledged
    /// work may die with the crash and must be re-driven.
    pub const SYNC_POLICIES: [SyncPolicy; 2] = [SyncPolicy::Always, SyncPolicy::Batch { every: 4 }];

    /// Shard counts of the crash matrix.
    pub const MATRIX_SHARDS: [usize; 2] = [1, 4];

    /// The fault-free outcome of the *keyed durable* drive — what
    /// every crash-matrix cell must recover to. Identical to
    /// [`baseline`] (asserted by `recovery.rs`), computed through the
    /// durable path so the comparison stays apples-to-apples.
    pub fn durable_baseline() -> ServiceMarketOutcome {
        let durability = DurabilityConfig::new(Arc::new(SimStorage::new()));
        let svc = spawn_durable_market(SEED, 1, durability).expect("durable spawn");
        let drive = drive_market_keyed(&svc, SEED, N_SPS, W, u64::MAX).expect("fault-free drive");
        let KeyedDrive::Complete(mut outcome) = drive else {
            panic!("unlimited budget cannot pause");
        };
        outcome.undelivered_payments = svc.shutdown();
        *outcome
    }
}
