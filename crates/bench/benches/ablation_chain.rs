//! **Ablation A5** — sequential vs rayon-parallel Cunningham chain
//! search (the `Setup(DEC)` hot loop of Fig. 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_primes::{find_chain, find_chain_parallel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_chain_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_chain");
    group.sample_size(10);
    for length in [3usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("sequential", length),
            &length,
            |b, &len| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = StdRng::seed_from_u64(seed);
                    std::hint::black_box(find_chain(&mut rng, 20, len))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("parallel", length), &length, |b, &len| {
            let mut seed = 10_000u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(find_chain_parallel(20, len, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_search);
criterion_main!(benches);
