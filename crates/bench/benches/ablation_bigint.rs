//! **Ablation A4** — bignum design choices: the two `ModRing` backends
//! (Montgomery for odd moduli, Barrett for even) against the naive
//! square-and-multiply reference, and Karatsuba vs schoolbook
//! multiplication around the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bigint::{
    modpow_plain, mul_karatsuba_pub, mul_karatsuba_ws_pub, mul_schoolbook_pub, random_bits,
    random_odd_bits, sqr_karatsuba_pub, sqr_schoolbook_pub, BigUint, ModRing,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_modpow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("ablation_modpow");
    for bits in [256usize, 512, 1024] {
        let m_odd = random_odd_bits(&mut rng, bits);
        let m_even = &m_odd + &BigUint::one();
        let base = random_bits(&mut rng, bits - 1);
        let exp = random_bits(&mut rng, bits);
        // Odd modulus → the ring picks the Montgomery backend.
        let ring_mont = ModRing::new(&m_odd);
        group.bench_with_input(BenchmarkId::new("montgomery", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(ring_mont.pow(&base, &exp)));
        });
        // Even modulus → Barrett fallback.
        let ring_barrett = ModRing::new(&m_even);
        group.bench_with_input(BenchmarkId::new("barrett", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(ring_barrett.pow(&base, &exp)));
        });
        group.bench_with_input(BenchmarkId::new("plain", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(modpow_plain(&base, &exp, &m_odd)));
        });
    }
    group.finish();
}

fn bench_mul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let mut group = c.benchmark_group("ablation_mul");
    for limbs in [16usize, 32, 64, 128] {
        let a = random_bits(&mut rng, limbs * 64);
        let b_ = random_bits(&mut rng, limbs * 64);
        group.bench_with_input(BenchmarkId::new("schoolbook", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(mul_schoolbook_pub(&a, &b_)));
        });
        group.bench_with_input(BenchmarkId::new("karatsuba", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(mul_karatsuba_pub(&a, &b_)));
        });
        // Workspace-slice recursion: same algorithm, scratch reused
        // down the tree instead of a fresh allocation per level.
        group.bench_with_input(BenchmarkId::new("karatsuba_ws", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(mul_karatsuba_ws_pub(&a, &b_)));
        });
        group.bench_with_input(BenchmarkId::new("dispatching", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(&a * &b_));
        });
    }
    group.finish();
}

fn bench_sqr(c: &mut Criterion) {
    // The dedicated squaring kernel against plain multiplication —
    // the Montgomery pow ladder spends most of its muls on squares.
    let mut rng = StdRng::seed_from_u64(9);
    let mut group = c.benchmark_group("ablation_sqr");
    for limbs in [16usize, 32, 64, 128] {
        let a = random_bits(&mut rng, limbs * 64);
        group.bench_with_input(BenchmarkId::new("mul_self", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(&a * &a));
        });
        group.bench_with_input(BenchmarkId::new("sqr_schoolbook", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(sqr_schoolbook_pub(&a)));
        });
        group.bench_with_input(BenchmarkId::new("sqr_karatsuba", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(sqr_karatsuba_pub(&a)));
        });
        group.bench_with_input(BenchmarkId::new("dispatching", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(a.square()));
        });
    }
    group.finish();
}

fn bench_karatsuba_threshold(c: &mut Criterion) {
    // Probes the mul and sqr recursion cutoffs: KARATSUBA_THRESHOLD
    // (32) and KARATSUBA_SQR_THRESHOLD (48) in mul.rs are set where
    // the schoolbook and workspace-Karatsuba curves cross here.
    let mut rng = StdRng::seed_from_u64(10);
    let mut group = c.benchmark_group("ablation_karatsuba_threshold");
    for limbs in [16usize, 24, 32, 40, 48, 64] {
        let a = random_bits(&mut rng, limbs * 64);
        let b_ = random_bits(&mut rng, limbs * 64);
        group.bench_with_input(BenchmarkId::new("mul_schoolbook", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(mul_schoolbook_pub(&a, &b_)));
        });
        group.bench_with_input(
            BenchmarkId::new("mul_karatsuba_ws", limbs),
            &limbs,
            |b, _| {
                b.iter(|| std::hint::black_box(mul_karatsuba_ws_pub(&a, &b_)));
            },
        );
        group.bench_with_input(BenchmarkId::new("sqr_schoolbook", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(sqr_schoolbook_pub(&a)));
        });
        group.bench_with_input(BenchmarkId::new("sqr_karatsuba", limbs), &limbs, |b, _| {
            b.iter(|| std::hint::black_box(sqr_karatsuba_pub(&a)));
        });
    }
    group.finish();
}

fn bench_sha_hash_to_int(c: &mut Criterion) {
    // The Fiat–Shamir hot path.
    let data = vec![0xA5u8; 1024];
    c.bench_function("sha256_1k", |b| {
        b.iter(|| std::hint::black_box(ppms_crypto::Sha256::digest(&data)));
    });
    let bound = BigUint::parse_hex("ffffffffffffffffffffffffffffff61").unwrap();
    c.bench_function("hash_to_int_128", |b| {
        b.iter(|| std::hint::black_box(ppms_crypto::hash::hash_to_int("bench", &[&data], &bound)));
    });
}

criterion_group!(
    benches,
    bench_modpow,
    bench_mul,
    bench_sqr,
    bench_karatsuba_threshold,
    bench_sha_hash_to_int
);
criterion_main!(benches);
