//! Durable-tier recovery: cold-start latency versus log length with
//! and without a checkpoint (the compaction payoff), plus the
//! write-path cost of each fsync discipline over the same keyed
//! market schedule. Emits `BENCH_recovery.json` at the repo root
//! (EXPERIMENTS.md A14).
//!
//! ```text
//! cargo bench -p ppms-bench --bench recovery
//! ```

use ppms_core::sim::{
    drive_market_keyed, recover_durable_market, spawn_durable_market, KeyedDrive,
    ServiceMarketOutcome,
};
use ppms_core::{DurabilityConfig, MaService, SimStorage, SyncPolicy};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0xE0;
const N_SPS: usize = 3;
const W: u64 = 3;
const SHARDS: usize = 2;
/// Keyed requests the full schedule issues (see the harness module in
/// `ppms-integration`): 2 setup + 8 per SP + data fetch + audits.
const SCHEDULE_CALLS: u64 = 2 + 8 * N_SPS as u64 + 2 + N_SPS as u64;
/// Log lengths (in keyed calls) the recovery sweep cuts at.
const LOG_LENGTHS: [u64; 3] = [11, 23, SCHEDULE_CALLS];

struct RecoveryRow {
    calls: u64,
    records: u64,
    compacted: bool,
    snapshot_lsn: u64,
    replayed: usize,
    recover_ms: f64,
}

struct FsyncRow {
    policy: &'static str,
    drive_ms: f64,
    fsyncs: u64,
    per_call_us: f64,
}

fn durability(storage: Arc<SimStorage>) -> DurabilityConfig {
    let mut dur = DurabilityConfig::new(storage);
    dur.segment_bytes = 4096;
    dur
}

/// Drives `svc` for exactly `calls` requests (the full schedule runs
/// to completion instead of pausing).
fn drive(svc: &MaService, calls: u64) {
    match drive_market_keyed(svc, SEED, N_SPS, W, calls).expect("keyed drive") {
        KeyedDrive::Paused { calls: got } => assert_eq!(got, calls),
        KeyedDrive::Complete(_) => assert_eq!(calls, SCHEDULE_CALLS),
    }
}

/// Builds a durable log of `calls` keyed requests, optionally
/// checkpointing halfway, kills the instance, and times the cold
/// restart from the crash image.
fn measure_recovery(calls: u64, compacted: bool) -> RecoveryRow {
    let storage = SimStorage::new();
    let svc =
        spawn_durable_market(SEED, SHARDS, durability(Arc::new(storage.clone()))).expect("spawn");
    let mut covered = 0;
    if compacted {
        // Checkpoint halfway: the re-drive below replays the first
        // half from the dedup cache (no new log records) and only the
        // second half lands past the snapshot.
        drive(&svc, calls / 2);
        covered = svc.checkpoint().expect("checkpoint");
    }
    drive(&svc, calls);
    let image = storage.crash_image(0xBE4C ^ calls);
    svc.shutdown();

    let t0 = Instant::now();
    let (recovered, report) =
        recover_durable_market(SEED, SHARDS, durability(Arc::new(image))).expect("recover");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    recovered.shutdown();

    // Every call journals Begin + Commit; compaction must shed
    // exactly the records the snapshot covers.
    let records = 2 * calls;
    assert_eq!(report.snapshot_lsn, covered, "snapshot coverage");
    assert_eq!(
        report.replayed_records as u64,
        records - covered,
        "replay length must be records past the snapshot"
    );
    RecoveryRow {
        calls,
        records,
        compacted,
        snapshot_lsn: report.snapshot_lsn,
        replayed: report.replayed_records,
        recover_ms,
    }
}

/// Runs the full keyed schedule under `sync` and times the write
/// path; returns the sealed outcome for the convergence gate.
fn measure_fsync(policy: &'static str, sync: SyncPolicy) -> (FsyncRow, ServiceMarketOutcome) {
    let mut dur = DurabilityConfig::new(Arc::new(SimStorage::new()));
    dur.sync = sync;
    let svc = spawn_durable_market(SEED, SHARDS, dur).expect("spawn");
    let t0 = Instant::now();
    let outcome = drive_market_keyed(&svc, SEED, N_SPS, W, u64::MAX).expect("full drive");
    let drive_ms = t0.elapsed().as_secs_f64() * 1e3;
    let KeyedDrive::Complete(mut outcome) = outcome else {
        panic!("unlimited budget cannot pause");
    };
    let fsyncs = svc.obs.snapshot().counter("wal.fsyncs");
    outcome.undelivered_payments = svc.shutdown();
    let row = FsyncRow {
        policy,
        drive_ms,
        fsyncs,
        per_call_us: drive_ms * 1e3 / SCHEDULE_CALLS as f64,
    };
    (row, *outcome)
}

fn main() {
    println!("recovery: cold restart vs log length, {SHARDS} shards");
    println!(
        "{:>6} {:>8} {:>10} {:>9} {:>9} {:>11}",
        "calls", "records", "compacted", "snap-lsn", "replayed", "recover-ms"
    );
    let mut recovery_rows: Vec<RecoveryRow> = Vec::new();
    for &calls in &LOG_LENGTHS {
        for compacted in [false, true] {
            let row = measure_recovery(calls, compacted);
            println!(
                "{:>6} {:>8} {:>10} {:>9} {:>9} {:>11.2}",
                row.calls,
                row.records,
                row.compacted,
                row.snapshot_lsn,
                row.replayed,
                row.recover_ms
            );
            recovery_rows.push(row);
        }
    }

    println!("fsync discipline: full {SCHEDULE_CALLS}-call schedule");
    println!(
        "{:>8} {:>10} {:>8} {:>12}",
        "policy", "drive-ms", "fsyncs", "per-call-us"
    );
    let mut fsync_rows: Vec<FsyncRow> = Vec::new();
    let mut outcomes: Vec<ServiceMarketOutcome> = Vec::new();
    for (policy, sync) in [
        ("always", SyncPolicy::Always),
        ("batch8", SyncPolicy::Batch { every: 8 }),
    ] {
        let (row, outcome) = measure_fsync(policy, sync);
        println!(
            "{:>8} {:>10.2} {:>8} {:>12.1}",
            row.policy, row.drive_ms, row.fsyncs, row.per_call_us
        );
        fsync_rows.push(row);
        outcomes.push(outcome);
    }

    // Hand-rolled JSON (the workspace's serde_json is a build stub).
    let recovery_cells: Vec<String> = recovery_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"calls\": {}, \"records\": {}, \"compacted\": {}, \
                 \"snapshot_lsn\": {}, \"replayed\": {}, \"recover_ms\": {:.3}}}",
                r.calls, r.records, r.compacted, r.snapshot_lsn, r.replayed, r.recover_ms
            )
        })
        .collect();
    let fsync_cells: Vec<String> = fsync_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"policy\": \"{}\", \"drive_ms\": {:.3}, \"fsyncs\": {}, \
                 \"per_call_us\": {:.2}}}",
                r.policy, r.drive_ms, r.fsyncs, r.per_call_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"recovery\": [\n{}\n  ],\n  \"fsync\": [\n{}\n  ]\n}}\n",
        recovery_cells.join(",\n"),
        fsync_cells.join(",\n")
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{dir}/BENCH_recovery.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json -> BENCH_recovery.json]"),
        Err(e) => eprintln!("  [json write failed: {e}]"),
    }

    // Correctness gates (the `-- --test` smoke relies on these).
    for pair in recovery_rows.chunks(2) {
        let (plain, compact) = (&pair[0], &pair[1]);
        assert_eq!(plain.replayed as u64, plain.records);
        assert!(
            compact.replayed < plain.replayed,
            "compaction must shorten replay at {} calls",
            plain.calls
        );
        assert!(compact.snapshot_lsn > 0 && plain.snapshot_lsn == 0);
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "both fsync disciplines must drive to the identical ledger"
    );
    // Counters stay live under `no-op`; group commit must batch.
    assert!(
        fsync_rows[1].fsyncs < fsync_rows[0].fsyncs,
        "group commit must issue fewer fsyncs than fsync-always"
    );
}
