//! **Fig. 3** — Executing time of each possible node level.
//!
//! The paper measures the post-setup "main steps" per tree node: with
//! the level fixed, deeper nodes (`Ni`) cost more. Our spend+verify of
//! a node at depth `Ni` reproduces exactly that growth: each extra
//! level adds a key derivation, a group-membership check and an OR
//! proof.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bench::cfg;
use ppms_ecash::{DecBank, DecParams, NodePath};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_node_levels(c: &mut Criterion) {
    let levels = 8;
    let mut rng = StdRng::seed_from_u64(3);
    let params = DecParams::fixture(levels, cfg::ZKP_ROUNDS);
    let bank = DecBank::new(&mut rng, params.clone(), cfg::RSA_BITS);
    let coin = bank.withdraw_coin(&mut rng);

    let mut group = c.benchmark_group("fig3_node");
    group.sample_size(20);
    for depth in 1..=levels {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let path = NodePath::from_index(d, 0);
            b.iter(|| {
                let spend = coin.spend(&mut rng, &params, &path, b"bench");
                std::hint::black_box(spend.verify(&params, bank.public_key(), b"bench").unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_node_levels);
criterion_main!(benches);
