//! Chaos availability: runs the full service market under increasing
//! frame-drop rates (plus mild duplication) with the retrying clients,
//! and reports availability (fraction of runs that converge to the
//! fault-free ledger) and the latency the retry layer adds. Emits
//! `BENCH_chaos.json` at the repo root (EXPERIMENTS.md A9).
//!
//! ```text
//! cargo bench -p ppms-bench --bench chaos_availability
//! ```

use ppms_core::sim::{run_service_market, run_service_market_chaos, TransportKind};
use ppms_core::{FaultPlan, SimNetConfig};
use std::time::Instant;

const SEED: u64 = 0xE0;
const SHARDS: usize = 2;
const N_SPS: usize = 3;
const W: u64 = 3;
const RUNS_PER_RATE: u64 = 3;
const DROP_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];

struct Row {
    drop_rate: f64,
    availability: f64,
    mean_ms: f64,
    added_ms: f64,
    retries: u64,
    dedup_replays: u64,
}

fn main() {
    // Ground truth: the fault-free in-process ledger.
    let expected =
        run_service_market(SEED, 1, N_SPS, W, TransportKind::InProc).expect("baseline market");

    let mut rows: Vec<Row> = Vec::new();
    println!("chaos availability: {RUNS_PER_RATE} seeded runs per drop rate");
    println!(
        "{:>6} {:>6} {:>9} {:>9} {:>8} {:>8}",
        "drop", "avail", "mean-ms", "added-ms", "retries", "replays"
    );
    for &drop_rate in &DROP_RATES {
        let mut ok = 0u64;
        let mut total_ms = 0.0;
        let mut retries = 0u64;
        let mut replays = 0u64;
        for run in 0..RUNS_PER_RATE {
            let plan = FaultPlan {
                net: SimNetConfig {
                    latency_micros: 0,
                    jitter_micros: 0,
                    drop_rate,
                    seed: 0xC4A0 + run,
                },
                duplicate_rate: drop_rate / 2.0,
                reorder_rate: 0.0,
                corrupt_rate: 0.0,
            };
            let t0 = Instant::now();
            let result = run_service_market_chaos(SEED, SHARDS, N_SPS, W, plan, None);
            total_ms += t0.elapsed().as_secs_f64() * 1e3;
            if let Ok((outcome, faults)) = result {
                if outcome == expected {
                    ok += 1;
                }
                retries += faults.retries;
                replays += faults.dedup_replays;
            }
        }
        let mean_ms = total_ms / RUNS_PER_RATE as f64;
        let added_ms = rows
            .first()
            .map(|base: &Row| mean_ms - base.mean_ms)
            .unwrap_or(0.0);
        let availability = ok as f64 / RUNS_PER_RATE as f64;
        println!(
            "{drop_rate:>6.2} {availability:>6.2} {mean_ms:>9.2} {added_ms:>9.2} {retries:>8} {replays:>8}"
        );
        rows.push(Row {
            drop_rate,
            availability,
            mean_ms,
            added_ms,
            retries,
            dedup_replays: replays,
        });
    }

    // Hand-rolled JSON (the workspace's serde_json is a build stub).
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"drop_rate\": {:.2}, \"availability\": {:.3}, \"mean_ms\": {:.3}, \
                 \"added_ms\": {:.3}, \"retries\": {}, \"dedup_replays\": {}}}",
                r.drop_rate, r.availability, r.mean_ms, r.added_ms, r.retries, r.dedup_replays
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", cells.join(",\n"));
    // `cargo bench` runs with the package dir as cwd; anchor the
    // artifact at the repo root, where it is committed alongside the
    // code it measures.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{dir}/BENCH_chaos.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json -> BENCH_chaos.json]"),
        Err(e) => eprintln!("  [json write failed: {e}]"),
    }

    assert!(
        rows.iter().all(|r| r.availability == 1.0),
        "every seeded run must converge"
    );
}
