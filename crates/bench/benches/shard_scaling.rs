//! Shard-scaling throughput: concurrent clients drive deposit batches
//! (the verification-heavy MA hot path) into a service running 1, 2, 4
//! and 8 shard workers. Each batch routes to the shard owning its
//! account, so per-spend ZK verification parallelizes across shards
//! while the ledger stays serialized behind the shared bank.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bench::cfg;
use ppms_core::service::{MaService, ServiceConfig};
use ppms_core::sim::{mint_deposit_batches, run_deposit_workload};
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_BATCHES: usize = 16;
const CLIENTS: usize = 8;
const LEVELS: usize = 2;

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter_with_setup(
                    || {
                        // Fresh service and fresh coins every
                        // iteration: a spend deposits exactly once, so
                        // the workload cannot be replayed.
                        let mut rng = StdRng::seed_from_u64(0x5CA1E + shards as u64);
                        let svc = MaService::spawn_with_config(
                            &mut rng,
                            DecParams::fixture(LEVELS, cfg::ZKP_ROUNDS),
                            cfg::RSA_BITS,
                            40,
                            ServiceConfig {
                                shards,
                                queue_depth: 64,
                                ..ServiceConfig::default()
                            },
                        );
                        let batches = mint_deposit_batches(&svc, 0xD0 + shards as u64, N_BATCHES)
                            .expect("mint deposit workload");
                        (svc, batches)
                    },
                    |(svc, batches)| {
                        let total = run_deposit_workload(&svc, &batches, CLIENTS).expect("deposit");
                        let expected = N_BATCHES as u64 * (1u64 << LEVELS);
                        assert_eq!(total, expected, "every spend must be credited");
                        std::hint::black_box(total);
                        svc.shutdown();
                    },
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
