//! **Ablation A3** — rayon-parallel vs sequential verification of a
//! unitary payment bundle (the SP-side hot loop: `2^L` coins arrive in
//! one payment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bench::cfg;
use ppms_core::sim::{verify_bundle_parallel, verify_bundle_sequential};
use ppms_ecash::{build_payment, plan_break, CashBreak, DecBank, DecParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_parallel_verify(c: &mut Criterion) {
    let levels = 5;
    let mut rng = StdRng::seed_from_u64(6);
    let params = DecParams::fixture(levels, cfg::ZKP_ROUNDS);
    let bank = DecBank::new(&mut rng, params.clone(), cfg::RSA_BITS);
    let coin = bank.withdraw_coin(&mut rng);
    let plan = plan_break(CashBreak::Unitary, 1 << levels, levels).unwrap();
    let items = build_payment(
        &mut rng,
        &params,
        &coin,
        &plan,
        b"",
        bank.public_key().size_bytes(),
    )
    .unwrap();

    let mut group = c.benchmark_group("ablation_parallel_verify");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("sequential"),
        &items,
        |b, items| {
            b.iter(|| {
                std::hint::black_box(verify_bundle_sequential(
                    &params,
                    bank.public_key(),
                    items,
                    b"",
                ))
            });
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("rayon"), &items, |b, items| {
        b.iter(|| {
            std::hint::black_box(verify_bundle_parallel(
                &params,
                bank.public_key(),
                items,
                b"",
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_verify);
criterion_main!(benches);
