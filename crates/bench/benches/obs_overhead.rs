//! Observability overhead: runs full PPMSdec and PPMSpbs rounds with
//! the `ppms-obs` layer recording (the default) and with it disabled
//! at runtime (`set_enabled(false)` — the same cheap check the `no-op`
//! feature compiles away entirely), and reports the relative cost of
//! instrumentation. Emits `BENCH_obs.json` at the repo root
//! (EXPERIMENTS.md A10).
//!
//! ```text
//! cargo bench -p ppms-bench --bench obs_overhead
//! ```

use ppms_bench::cfg;
use ppms_core::sim::{run_dec_rounds, run_pbs_rounds};
use ppms_ecash::CashBreak;
use std::time::Instant;

const RUNS: usize = 15;
const ROUNDS: usize = 2;
const N_SPS: usize = 3;
const W: u64 = 5;

struct Row {
    mechanism: &'static str,
    on_ms: f64,
    off_ms: f64,
    overhead_pct: f64,
    spans: u64,
}

fn main() {
    let dec = |seed: u64| {
        run_dec_rounds(
            seed,
            ROUNDS,
            N_SPS,
            cfg::ZKP_ROUNDS,
            cfg::RSA_BITS,
            cfg::PAIRING_BITS,
            W,
            CashBreak::Pcba,
        )
        .expect("dec rounds")
    };
    let pbs = |seed: u64| run_pbs_rounds(seed, ROUNDS, cfg::RSA_BITS).expect("pbs rounds");

    // Warm both paths once (prime table, allocator, page cache).
    ppms_obs::set_enabled(true);
    dec(1);
    pbs(1);

    let mut rows: Vec<Row> = Vec::new();
    println!("obs overhead: median of {RUNS} paired runs, {ROUNDS} market rounds each");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9}",
        "mech", "on-ms", "off-ms", "ovh-%", "spans"
    );
    for (mechanism, run) in [
        (
            "PPMSdec",
            &mut (|s: u64| {
                let _ = dec(s);
            }) as &mut dyn FnMut(u64),
        ),
        ("PPMSpbs", &mut |s: u64| {
            let _ = pbs(s);
        }),
    ] {
        // Each run executes the *same seed* once per configuration,
        // alternating which goes first so neither systematically
        // inherits the warmer cache / CPU-frequency state. Overhead is
        // the median of the per-seed paired ratios: pairing cancels
        // the (large) seed-to-seed key-generation variance, and the
        // median discards runs the scheduler perturbed.
        let spans_before: u64 = sum_span_counts();
        let mut on_times = [0.0f64; RUNS];
        let mut off_times = [0.0f64; RUNS];
        for r in 0..RUNS {
            let seed = 100 + r as u64;
            let order = if r % 2 == 0 {
                [true, false]
            } else {
                [false, true]
            };
            for on in order {
                ppms_obs::set_enabled(on);
                let t0 = Instant::now();
                run(seed);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                if on {
                    on_times[r] = ms;
                } else {
                    off_times[r] = ms;
                }
            }
        }
        ppms_obs::set_enabled(true);
        let spans = sum_span_counts() - spans_before;

        let on_ms = on_times.iter().sum::<f64>() / RUNS as f64;
        let off_ms = off_times.iter().sum::<f64>() / RUNS as f64;
        let mut per_seed: Vec<f64> = on_times
            .iter()
            .zip(&off_times)
            .map(|(on, off)| (on - off) / off * 100.0)
            .collect();
        per_seed.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let overhead_pct = per_seed[RUNS / 2];
        println!("{mechanism:>8} {on_ms:>9.2} {off_ms:>9.2} {overhead_pct:>9.2} {spans:>9}");
        assert!(spans > 0, "{mechanism}: instrumentation never fired");
        rows.push(Row {
            mechanism,
            on_ms,
            off_ms,
            overhead_pct,
            spans,
        });
    }

    // Hand-rolled JSON (the workspace's serde_json is a build stub).
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"mechanism\": \"{}\", \"enabled_ms\": {:.3}, \"disabled_ms\": {:.3}, \
                 \"overhead_pct\": {:.3}, \"spans_recorded\": {}}}",
                r.mechanism, r.on_ms, r.off_ms, r.overhead_pct, r.spans
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", cells.join(",\n"));
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{dir}/BENCH_obs.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json -> BENCH_obs.json]"),
        Err(e) => eprintln!("  [json write failed: {e}]"),
    }

    // Acceptance: instrumented runs stay within 3% of the disabled
    // path. The spans live on millisecond-scale crypto operations, so
    // a clock read per span is lost in the noise floor.
    for r in &rows {
        assert!(
            r.overhead_pct < 3.0,
            "{}: observability overhead {:.2}% exceeds the 3% budget",
            r.mechanism,
            r.overhead_pct
        );
    }
}

/// Total number of span samples in the process-global registry —
/// proof the instrumentation actually recorded during the run.
fn sum_span_counts() -> u64 {
    ppms_obs::global()
        .snapshot()
        .histograms
        .values()
        .map(|h| h.count)
        .sum()
}
