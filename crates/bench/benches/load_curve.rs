//! Open-loop latency under load: a fixed-arrival-rate generator drives
//! balance queries plus pre-minted deposit spends through the TCP
//! front door at a sweep of offered rates and reports client-observed
//! p50/p99/p999 *measured from the scheduled arrival time*, so queueing
//! delay past the capacity knee is charged to the curve instead of
//! silently throttling the generator (no coordinated omission). A
//! mid-run scrape of the admission-exempt ops plane proves the live
//! metrics path works while the door is under load. Per-rate shard
//! batching stats (mean cross-client batch size, flush reasons) come
//! from the service registry's `batch.*` counters, deltaed around each
//! run. Emits `BENCH_load.json` at the repo root (EXPERIMENTS.md A15,
//! A16).
//!
//! ```text
//! cargo bench -p ppms-bench --bench load_curve            # full sweep
//! cargo bench -p ppms-bench --bench load_curve -- --test  # CI smoke
//! ```

use ppms_core::gate::OpsRequest;
use ppms_core::service::{MaClient, MaRequest, MaResponse, MaService, ServiceConfig};
use ppms_core::sim::mint_deposit_batches;
use ppms_core::{AccountId, Party, TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport};
use ppms_core::{AdmissionConfig, MarketError};
use ppms_ecash::{DecParams, Spend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 0x10AD;
const SHARDS: usize = 2;
const LEVELS: usize = 2;
/// Every Nth scheduled arrival is a deposit (while the pool lasts);
/// the rest are balance reads. Deposits walk the verification + WAL
/// path, reads stay on the fast path, mirroring a mostly-read market.
const DEPOSIT_EVERY: usize = 64;

/// One pre-minted, single-spend deposit unit. Each is consumable
/// exactly once (a spend deposits once), so the pool is drained by a
/// global cursor shared across the whole sweep.
struct DepositUnit {
    account: AccountId,
    spend: Spend,
}

struct RateResult {
    offered: f64,
    achieved: f64,
    scheduled: usize,
    completed: usize,
    abandoned: usize,
    deposits: usize,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    /// Mean shard batch size over this run (`batch.items` /
    /// `batch.drains` deltas from the service registry).
    mean_batch: f64,
}

fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Sleep until `t`, coarsely via the OS then yielding the last stretch
/// so scheduled arrivals land close to their slot. Yielding (rather
/// than `spin_loop`) matters on small machines: a hard spin steals CPU
/// from the server under test and deflates the measured knee.
fn sleep_until(t: Instant) {
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        let rem = t - now;
        if rem > Duration::from_micros(800) {
            std::thread::sleep(rem - Duration::from_micros(500));
        } else {
            std::thread::yield_now();
        }
    }
}

fn make_client(addr: SocketAddr) -> (MaClient, AccountId) {
    let client = MaClient::new(
        Arc::new(TcpTransport::new(TcpClientConfig::new(addr))),
        Party::Sp,
    );
    let account = match client.call(MaRequest::RegisterSpAccount) {
        MaResponse::Account(a) => a,
        other => panic!("account: {other:?}"),
    };
    (client, account)
}

/// Closed-loop calibration: hammer the door with `workers` blocking
/// clients and take the completed rate as the saturation estimate the
/// open-loop sweep is anchored on (so the knee lands inside the sweep
/// on any machine).
fn calibrate(addr: SocketAddr, workers: usize, duration: Duration) -> f64 {
    let done = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let (client, account) = make_client(addr);
                while t0.elapsed() < duration {
                    match client.call(MaRequest::Balance { account }) {
                        MaResponse::Balance(_) => {}
                        other => panic!("balance: {other:?}"),
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

/// One open-loop run at a fixed offered rate. Arrival `i` is owed at
/// `start + i/rate`; whichever worker draws it sleeps until the slot,
/// issues the request, and charges the *full* time since the slot —
/// including any backlog the saturated door imposed — as its latency.
#[allow(clippy::too_many_arguments)]
fn run_rate(
    addr: SocketAddr,
    rate: f64,
    duration: Duration,
    workers: usize,
    pool: &[DepositUnit],
    pool_cursor: &AtomicUsize,
    deposit_face: u64,
    credited: &AtomicUsize,
) -> RateResult {
    let scheduled = (rate * duration.as_secs_f64()).ceil() as usize;
    let interval = Duration::from_secs_f64(1.0 / rate);
    // Give every run the same escape hatch: past-capacity rates may
    // leave a backlog, but never more than ~2 extra durations of it.
    let grace = duration.mul_saturating(2).max(Duration::from_secs(2));
    let next = AtomicUsize::new(0);
    let abandoned = AtomicUsize::new(0);
    let deposits = AtomicUsize::new(0);
    let lat = Mutex::new(Vec::<u64>::with_capacity(scheduled));
    let last_done = Mutex::new(Instant::now());

    // Admit every connection before the clock starts.
    let clients: Vec<(MaClient, AccountId)> = (0..workers).map(|_| make_client(addr)).collect();
    let start = Instant::now() + Duration::from_millis(30);
    let deadline = start + duration + grace;

    std::thread::scope(|s| {
        for (client, account) in &clients {
            s.spawn(|| {
                let mut local = Vec::with_capacity(scheduled / workers + 1);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= scheduled {
                        break;
                    }
                    let slot = start + interval.mul_f64(i as f64);
                    sleep_until(slot);
                    if Instant::now() >= deadline {
                        abandoned.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let unit = i
                        .is_multiple_of(DEPOSIT_EVERY)
                        .then(|| {
                            let d = pool_cursor.fetch_add(1, Ordering::Relaxed);
                            pool.get(d)
                        })
                        .flatten();
                    let resp = match unit {
                        Some(u) => {
                            deposits.fetch_add(1, Ordering::Relaxed);
                            client.try_call(MaRequest::DepositBatch {
                                account: u.account,
                                spends: vec![u.spend.clone()],
                            })
                        }
                        None => client.try_call(MaRequest::Balance { account: *account }),
                    };
                    match resp {
                        Ok(MaResponse::Balance(_)) => {}
                        Ok(MaResponse::BatchDeposited {
                            total,
                            accepted,
                            rejected,
                        }) => {
                            assert_eq!((accepted, rejected), (1, 0), "pre-minted spend rejected");
                            credited.fetch_add(total as usize, Ordering::Relaxed);
                        }
                        Ok(other) => panic!("unexpected response: {other:?}"),
                        Err(e) => panic!("request failed under load: {e}"),
                    }
                    local.push(slot.elapsed().as_nanos() as u64);
                }
                *last_done.lock().unwrap() = Instant::now();
                lat.lock().unwrap().append(&mut local);
            });
        }
    });

    let mut sorted = lat.into_inner().unwrap();
    sorted.sort_unstable();
    let completed = sorted.len();
    let wall = (*last_done.lock().unwrap() - start).as_secs_f64().max(1e-9);
    let _ = deposit_face; // face value only matters to the caller's credit check
    RateResult {
        offered: rate,
        achieved: completed as f64 / wall,
        scheduled,
        completed,
        abandoned: abandoned.load(Ordering::Relaxed),
        deposits: deposits.load(Ordering::Relaxed),
        p50_ns: pct(&sorted, 0.50),
        p99_ns: pct(&sorted, 0.99),
        p999_ns: pct(&sorted, 0.999),
        max_ns: sorted.last().copied().unwrap_or(0),
        mean_batch: 0.0, // filled in by the caller from registry deltas
    }
}

trait DurationExt {
    fn mul_saturating(self, k: u32) -> Duration;
}
impl DurationExt for Duration {
    fn mul_saturating(self, k: u32) -> Duration {
        self.checked_mul(k).unwrap_or(Duration::MAX)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (duration, fractions, workers, n_batches, cal) = if smoke {
        (
            Duration::from_millis(250),
            vec![0.4, 1.3],
            4,
            1,
            Duration::from_millis(150),
        )
    } else {
        (
            Duration::from_millis(1200),
            vec![0.25, 0.5, 0.75, 0.9, 1.1, 1.4],
            4,
            6,
            Duration::from_millis(400),
        )
    };

    let mut rng = StdRng::seed_from_u64(SEED);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(LEVELS, 6),
        512,
        40,
        ServiceConfig {
            shards: SHARDS,
            queue_depth: 256,
            ..ServiceConfig::default()
        },
    );
    // Price 0: the sweep measures transport + service capacity; the
    // admission handshake still runs on every fresh connection.
    let config = TcpConfig {
        admission: AdmissionConfig {
            price: 0,
            requests_per_token: u64::MAX,
            ..AdmissionConfig::default()
        },
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");
    let addr = door.addr();

    // Pre-mint the deposit pool in-proc (minting is JO-side work and
    // must not pollute the door's load), flattened to one-spend units.
    let deposit_face = svc.params.face_value() >> LEVELS; // leaf value
    let pool: Vec<DepositUnit> = mint_deposit_batches(&svc, SEED ^ 0xDEE9, n_batches)
        .expect("mint deposit pool")
        .into_iter()
        .flat_map(|(account, spends)| {
            spends
                .into_iter()
                .map(move |spend| DepositUnit { account, spend })
        })
        .collect();
    let pool_cursor = AtomicUsize::new(0);
    let credited = AtomicUsize::new(0);

    let capacity = calibrate(addr, workers, cal);
    println!("load curve: closed-loop calibration {capacity:.0} req/s ({workers} workers)");

    // Ops-plane scrape taken mid-sweep, while the door is loaded.
    let scrape = Mutex::new(None::<(String, String)>);
    let mut results = Vec::with_capacity(fractions.len());
    let batch_items = svc.obs.counter("batch.items");
    let batch_drains = svc.obs.counter("batch.drains");
    for (k, f) in fractions.iter().enumerate() {
        let rate = (capacity * f).max(50.0);
        let mid_sweep = k == fractions.len() / 2;
        let (items0, drains0) = (batch_items.get(), batch_drains.get());
        let mut r = std::thread::scope(|s| {
            if mid_sweep {
                s.spawn(|| {
                    std::thread::sleep(duration / 2);
                    let t = TcpTransport::new(TcpClientConfig::new(addr));
                    let health = t.ops(OpsRequest::Health).expect("ops health under load");
                    let metrics = t
                        .ops(OpsRequest::MetricsJson)
                        .expect("ops metrics under load");
                    *scrape.lock().unwrap() = Some((health, metrics));
                });
            }
            run_rate(
                addr,
                rate,
                duration,
                workers,
                &pool,
                &pool_cursor,
                deposit_face,
                &credited,
            )
        });
        let (items, drains) = (
            batch_items.get() - items0,
            (batch_drains.get() - drains0).max(1),
        );
        r.mean_batch = items as f64 / drains as f64;
        println!(
            "  offered {:>7.0}/s achieved {:>7.0}/s  p50 {:>8.1}us p99 {:>9.1}us p999 {:>9.1}us  ({} deposits, {} abandoned, mean batch {:.2})",
            r.offered,
            r.achieved,
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.p999_ns as f64 / 1e3,
            r.deposits,
            r.abandoned,
            r.mean_batch
        );
        results.push(r);
    }

    // Capacity knee: the highest offered rate the door still keeps up
    // with (achieved >= 92% of offered). Everything past it is the
    // overload regime where open-loop latency grows without bound.
    let knee = results
        .iter()
        .filter(|r| r.achieved >= 0.92 * r.offered)
        .map(|r| r.offered)
        .fold(0.0f64, f64::max);
    let peak = results.iter().map(|r| r.achieved).fold(0.0f64, f64::max);
    println!("  capacity knee ~{knee:.0} req/s (peak achieved {peak:.0} req/s)");
    // The batching claim the CI gate greps for: under load (the
    // highest offered rate) shards must be coalescing across clients.
    let loaded_mean_batch = results.iter().map(|r| r.mean_batch).fold(0.0f64, f64::max);
    println!("  mean batch size under load {loaded_mean_batch:.2}");

    let (health, metrics) = scrape
        .into_inner()
        .unwrap()
        .expect("mid-sweep ops scrape ran");
    println!(
        "  mid-run ops scrape: health {health} ({} bytes of metrics JSON)",
        metrics.len()
    );

    // Hand-rolled JSON (the workspace's serde_json is a build stub).
    let rate_cells: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"offered_per_sec\": {:.1}, \"achieved_per_sec\": {:.1}, \
                 \"scheduled\": {}, \"completed\": {}, \"abandoned\": {}, \"deposits\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \
                 \"mean_batch_size\": {:.3}}}",
                r.offered,
                r.achieved,
                r.scheduled,
                r.completed,
                r.abandoned,
                r.deposits,
                r.p50_ns,
                r.p99_ns,
                r.p999_ns,
                r.max_ns,
                r.mean_batch
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": {{\"shards\": {SHARDS}, \"workers\": {workers}, \
         \"duration_ms\": {}, \"deposit_every\": {DEPOSIT_EVERY}, \
         \"calibrated_capacity_per_sec\": {capacity:.1}}},\n  \"rates\": [\n{}\n  ],\n  \
         \"knee_per_sec\": {knee:.1},\n  \"peak_achieved_per_sec\": {peak:.1},\n  \
         \"mean_batch_size_under_load\": {loaded_mean_batch:.3},\n  \
         \"ops_scrape\": {{\"health\": {health}, \"metrics_bytes\": {}}}\n}}\n",
        duration.as_millis(),
        rate_cells.join(",\n"),
        metrics.len()
    );
    // Benchmark artifacts live at the repo root, committed alongside
    // the code they measure, so a diff shows the perf delta.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{dir}/BENCH_load.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json -> BENCH_load.json]"),
        Err(e) => eprintln!("  [json write failed: {e}]"),
    }

    // Correctness gates (the `-- --test` smoke relies on these).
    for r in &results {
        assert!(r.completed > 0, "rate {:.0} completed nothing", r.offered);
        assert!(r.p999_ns >= r.p99_ns && r.p99_ns >= r.p50_ns);
        assert_eq!(r.completed + r.abandoned, r.scheduled);
    }
    let lowest = &results[0];
    assert!(
        lowest.achieved >= 0.5 * lowest.offered,
        "the door must keep up with the lightest offered rate \
         ({:.0}/s achieved of {:.0}/s offered)",
        lowest.achieved,
        lowest.offered
    );
    let consumed = pool_cursor.load(Ordering::Relaxed).min(pool.len());
    assert_eq!(
        credited.load(Ordering::Relaxed) as u64,
        consumed as u64 * deposit_face,
        "every pre-minted spend driven through the door must credit its leaf value"
    );
    // The equivalence claim the CI gate greps for: batching changed
    // the schedule, not the money.
    println!(
        "  ledger unchanged: {} spends credited {} (= {} x face {})",
        consumed,
        credited.load(Ordering::Relaxed),
        consumed,
        deposit_face
    );
    assert!(health.contains("\"status\""), "health probe body: {health}");
    // Counters stay real even under no-op (only timing is stubbed),
    // so the merged metrics body always carries the gate counters.
    assert!(
        metrics.contains("tcp."),
        "metrics scrape must expose the door's counters: {metrics}"
    );
    if let Err(e) = verify_slow_log(addr) {
        panic!("slow-log probe failed: {e}");
    }

    drop(door);
    svc.shutdown();
}

/// The slow-request log is part of the ops surface the harness proves
/// out: ask for it once after the sweep — overloaded runs usually
/// tripped the threshold — and require a well-formed JSON array.
fn verify_slow_log(addr: SocketAddr) -> Result<(), MarketError> {
    let t = TcpTransport::new(TcpClientConfig::new(addr));
    let body = t.ops(OpsRequest::SlowLog)?;
    if !(body.starts_with('[') && body.ends_with(']')) {
        return Err(MarketError::Transport(format!(
            "slow log is not a JSON array: {body}"
        )));
    }
    Ok(())
}
