//! Batch-verification amortization: per-item cost of the combined
//! small-exponent batch checks against the sequential per-item path,
//! at batch sizes 1/4/16/64, for Schnorr proofs, RSA-FDH signatures
//! and full e-cash spend deposits, plus a Straus-vs-Pippenger
//! crossover table for the underlying multi-exponentiation kernel.
//! Emits `BENCH_batch.json` at the repo root (EXPERIMENTS.md A11).
//!
//! ```text
//! cargo bench -p ppms-bench --bench batch_verify          # full run
//! cargo bench -p ppms-bench --bench batch_verify -- --test  # CI smoke
//! ```
//!
//! The smoke mode runs one repetition of the small sizes and checks
//! verdict correctness only; the full run also asserts the headline
//! amortization: ≥2× lower per-item cost at batch 64 for Schnorr
//! proofs at a deployment-grade 1024-bit group. The deposit rows run
//! on the toy fixture tower (66–78-bit groups), where fixed per-item
//! costs (hashing, screens) bound the gain — they are gated at "never
//! slower", and the schnorr rows show the regime the gain scales to.
//! The `rsa` rows time the dispatched entry point (whose cost model
//! routes e = 65537 batches to sequential verification, gated at
//! parity); the `rsa_comb` rows force the combined check to document
//! the loss that motivates the gate.

use ppms_bench::cfg;
use ppms_bigint::{random_bits, random_odd_bits, BigUint, ModRing};
use ppms_crypto::group::SchnorrGroup;
use ppms_crypto::rsa;
use ppms_crypto::zkp::schnorr::{self, BatchItem, SchnorrProof};
use ppms_ecash::{verify_batch, DecBank, DecParams, NodePath, Spend};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const SIZES: [usize; 4] = [1, 4, 16, 64];
const MAX_N: usize = 64;

struct Row {
    scheme: &'static str,
    n: usize,
    seq_item_us: f64,
    batch_item_us: f64,
    speedup: f64,
}

fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn push_row(
    rows: &mut Vec<Row>,
    scheme: &'static str,
    n: usize,
    seq_item_us: f64,
    batch_item_us: f64,
) {
    let speedup = seq_item_us / batch_item_us;
    println!("{scheme:>8} n={n:<3} seq/item {seq_item_us:>9.1}us  batch/item {batch_item_us:>9.1}us  speedup {speedup:>5.2}x");
    rows.push(Row {
        scheme,
        n,
        seq_item_us,
        batch_item_us,
        speedup,
    });
}

/// The 1024-bit MODP safe prime of RFC 2409 (Second Oakley Group):
/// a deployment-grade modulus where exponentiation dominates the
/// fixed per-item costs (hashing, membership screens) that batching
/// cannot remove. Embedded so the bench needs no safe-prime search.
const MODP_1024_HEX: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1\
                             29024E088A67CC74020BBEA63B139B22514A08798E3404DD\
                             EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245\
                             E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
                             EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381\
                             FFFFFFFFFFFFFFFF";

fn modp_group() -> SchnorrGroup {
    let p = BigUint::parse_hex(MODP_1024_HEX).expect("RFC 2409 modulus");
    let q = &(&p - 1u64) >> 1usize;
    SchnorrGroup::from_safe_prime(&p, &q)
}

fn bench_schnorr(rows: &mut Vec<Row>, sizes: &[usize], reps: usize) {
    let mut rng = StdRng::seed_from_u64(0xBA7C1);
    let group = modp_group();
    let mut proofs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..MAX_N {
        let x = group.random_exponent(&mut rng);
        let y = group.g_exp(&x);
        let g = group.g.clone();
        proofs.push(SchnorrProof::prove(
            &mut rng, &group, &g, &y, &x, "bench", b"",
        ));
        ys.push(y);
    }
    let items: Vec<BatchItem> = proofs
        .iter()
        .zip(&ys)
        .map(|(proof, y)| BatchItem {
            proof,
            g: &group.g,
            y,
            domain: "bench",
            extra: b"",
        })
        .collect();
    for &n in sizes {
        let seq = time_us(reps, || {
            for item in &items[..n] {
                assert!(item.proof.verify(&group, item.g, item.y, "bench", b""));
            }
        }) / n as f64;
        let bat = time_us(reps, || {
            let got = schnorr::batch_verify(&mut rng, &group, &items[..n]);
            assert!(got.iter().all(|&ok| ok));
        }) / n as f64;
        push_row(rows, "schnorr", n, seq, bat);
    }
}

fn bench_rsa(rows: &mut Vec<Row>, sizes: &[usize], reps: usize) {
    let mut rng = StdRng::seed_from_u64(0xBA7C2);
    let key = rsa::keygen(&mut rng, cfg::RSA_BITS);
    let msgs: Vec<Vec<u8>> = (0..MAX_N).map(|i| vec![i as u8; 24]).collect();
    let sigs: Vec<BigUint> = msgs.iter().map(|m| rsa::sign(&key, m)).collect();
    let items: Vec<(&[u8], &BigUint)> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    for &n in sizes {
        let seq = time_us(reps, || {
            for (m, s) in &items[..n] {
                assert!(rsa::verify(&key.public, m, s));
            }
        }) / n as f64;
        // The dispatched entry point: the cost model routes e = 65537
        // batches to the sequential path, so this row must sit at ~1x.
        let bat = time_us(reps, || {
            let got = rsa::batch_verify(&mut rng, &key.public, &items[..n]);
            assert!(got.iter().all(|&ok| ok));
        }) / n as f64;
        push_row(rows, "rsa", n, seq, bat);
        // The combined check forced on, documenting why it is gated
        // out (0.18–0.70x at e = 65537 on the Vec-path kernels).
        let comb = time_us(reps, || {
            let got = rsa::batch_verify_combined(&mut rng, &key.public, &items[..n]);
            assert!(got.iter().all(|&ok| ok));
        }) / n as f64;
        push_row(rows, "rsa_comb", n, seq, comb);
    }
}

fn bench_deposit(rows: &mut Vec<Row>, sizes: &[usize], reps: usize) {
    // The MA's phase-8 hot path: full spend verification. Spends come
    // from several coins (a realistic mixed deposit batch); all claims
    // still share the tower's group slots.
    let mut rng = StdRng::seed_from_u64(0xBA7C3);
    let params = DecParams::fixture(2, cfg::ZKP_ROUNDS);
    let bank = DecBank::new(&mut rng, params.clone(), cfg::RSA_BITS);
    let mut spends: Vec<Spend> = Vec::with_capacity(MAX_N);
    while spends.len() < MAX_N {
        let coin = bank.withdraw_coin(&mut rng);
        for leaf in 0..4u64 {
            spends.push(coin.spend(&mut rng, &params, &NodePath::from_index(2, leaf), b"rcv"));
        }
    }
    for &n in sizes {
        let seq = time_us(reps, || {
            for s in &spends[..n] {
                assert!(s.verify(&params, bank.public_key(), b"rcv").is_ok());
            }
        }) / n as f64;
        let bat = time_us(reps, || {
            let got = verify_batch(&mut rng, &params, bank.public_key(), b"rcv", &spends[..n]);
            assert!(got.iter().all(|r| r.is_ok()));
        }) / n as f64;
        push_row(rows, "deposit", n, seq, bat);
    }
}

struct XRow {
    n: usize,
    straus_us: f64,
    pippenger_us: f64,
}

fn bench_crossover(reps: usize) -> Vec<XRow> {
    // Full-width exponents at a 512-bit odd modulus — the combined
    // check's left-hand shape. PIPPENGER_CROSSOVER in ring.rs is
    // chosen from this table.
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let m = random_odd_bits(&mut rng, 512);
    let ring = ModRing::new(&m);
    let mut out = Vec::new();
    println!("multi-exp crossover (512-bit modulus, full-width exponents):");
    for n in [4usize, 8, 16, 32, 64, 128] {
        let pairs: Vec<(BigUint, BigUint)> = (0..n)
            .map(|_| (random_bits(&mut rng, 511), random_bits(&mut rng, 512)))
            .collect();
        let refs: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
        let straus_us = time_us(reps, || {
            std::hint::black_box(ring.multi_pow_n_straus(&refs));
        });
        let pippenger_us = time_us(reps, || {
            std::hint::black_box(ring.multi_pow_n_pippenger(&refs));
        });
        println!("  n={n:<4} straus {straus_us:>9.1}us  pippenger {pippenger_us:>9.1}us");
        out.push(XRow {
            n,
            straus_us,
            pippenger_us,
        });
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (sizes, reps): (&[usize], usize) = if smoke { (&SIZES[..2], 1) } else { (&SIZES, 8) };
    let xreps = if smoke { 1 } else { 16 };

    let mut rows = Vec::new();
    bench_schnorr(&mut rows, sizes, reps);
    bench_rsa(&mut rows, sizes, reps);
    bench_deposit(&mut rows, sizes, reps);
    let xrows = bench_crossover(xreps);

    // Hand-rolled JSON (the workspace's serde_json is a build stub).
    let batch_cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"scheme\": \"{}\", \"n\": {}, \"seq_item_us\": {:.2}, \
                 \"batch_item_us\": {:.2}, \"speedup\": {:.3}}}",
                r.scheme, r.n, r.seq_item_us, r.batch_item_us, r.speedup
            )
        })
        .collect();
    let x_cells: Vec<String> = xrows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"straus_us\": {:.2}, \"pippenger_us\": {:.2}}}",
                r.n, r.straus_us, r.pippenger_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"smoke\": {},\n  \"batch\": [\n{}\n  ],\n  \"multi_exp_crossover\": [\n{}\n  ]\n}}\n",
        smoke,
        batch_cells.join(",\n"),
        x_cells.join(",\n")
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{dir}/BENCH_batch.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json -> BENCH_batch.json]"),
        Err(e) => eprintln!("  [json write failed: {e}]"),
    }

    if !smoke {
        // Acceptance: at a deployment-grade group the combined check
        // must amortize ≥2× at batch 64. The deposit path runs on the
        // toy fixture tower where per-item hashing bounds the gain, so
        // it is gated at "never slower". RSA with e = 65537 is where
        // the combined check loses (a 17-squaring sequential verify
        // leaves nothing for small-exponent batching to save — the
        // rsa_comb rows document it); the dispatched rsa rows must
        // show the cost model routing around that loss, i.e. parity
        // with the sequential path.
        let row64 = |scheme: &str| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.n == 64)
                .expect("batch-64 row")
        };
        let s = row64("schnorr");
        assert!(
            s.speedup >= 2.0,
            "schnorr: batch-64 speedup {:.2}x below the 2x bar",
            s.speedup
        );
        let d = row64("deposit");
        assert!(
            d.speedup >= 1.0,
            "deposit: batch-64 path slower than sequential ({:.2}x)",
            d.speedup
        );
        let r = row64("rsa");
        assert!(
            r.speedup >= 0.9,
            "rsa: cost-model dispatch must not pick a losing strategy ({:.2}x)",
            r.speedup
        );
    }
}
