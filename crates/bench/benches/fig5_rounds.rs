//! **Fig. 5** — Executing time comparison over multiple rounds.
//!
//! Multi-round end-to-end runs of both mechanisms, setup included,
//! exactly as the paper plots. The crossover never happens: PPMSpbs
//! stays far below PPMSdec at every round count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bench::cfg;
use ppms_core::sim::{run_dec_rounds, run_pbs_rounds};
use ppms_ecash::CashBreak;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_rounds");
    group.sample_size(10);
    for rounds in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::new("PPMSdec", rounds), &rounds, |b, &r| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(
                    run_dec_rounds(
                        seed,
                        r,
                        3,
                        cfg::ZKP_ROUNDS,
                        cfg::RSA_BITS,
                        cfg::PAIRING_BITS,
                        5,
                        CashBreak::Pcba,
                    )
                    .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("PPMSpbs", rounds), &rounds, |b, &r| {
            let mut seed = 1_000;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(run_pbs_rounds(seed, r, cfg::RSA_BITS).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
