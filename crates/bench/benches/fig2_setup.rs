//! **Fig. 2** — Setup executing time of each level.
//!
//! The dominant setup cost is finding the Cunningham chain of
//! `L + 2` links (paper §VI-A: "it's unreasonable to compute this
//! chain in setup stage for each time"). The paper's curve is flat for
//! small `L` and explodes around `L = 7`; we benchmark the same
//! search at the levels that finish in bench-friendly time and leave
//! the blow-up tail to `report fig2`, which enforces a wall-clock
//! budget instead of Criterion's statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_primes::find_chain_parallel;

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_setup");
    group.sample_size(10);
    for levels in [0usize, 1, 2, 3] {
        let chain_len = levels + 2;
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(find_chain_parallel(20, chain_len, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_setup);
criterion_main!(benches);
