//! TCP front door: loopback throughput/latency through the reactor
//! and the admission gate, plus the Table-II-style framing overhead
//! of the socket path measured against the simnet wire. Emits
//! `BENCH_tcp.json` at the repo root (EXPERIMENTS.md A13).
//!
//! ```text
//! cargo bench -p ppms-bench --bench tcp_front_door
//! ```

use ppms_core::gate::AdmissionConfig;
use ppms_core::service::{MaClient, MaRequest, MaResponse, MaService, ServiceConfig};
use ppms_core::sim::{run_service_market_traffic, TcpEquivConfig, TransportKind};
use ppms_core::{
    Party, SimNetConfig, TcpClientConfig, TcpConfig, TcpFrontDoor, TcpTransport, TrafficLog,
};
use ppms_ecash::DecParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0xE0;
const SHARDS: usize = 2;
const N_SPS: usize = 3;
const W: u64 = 3;
const CLIENTS: usize = 2;
const REQUESTS_PER_CLIENT: usize = 500;

struct Table2Row {
    transport: &'static str,
    jo_out: usize,
    sp_out: usize,
    ma_out: usize,
    total: usize,
    frames: usize,
    gate_frames: usize,
    gate_bytes: usize,
}

fn table2_row(transport: &'static str, traffic: &TrafficLog) -> Table2Row {
    let (gate_frames, gate_bytes) = traffic
        .snapshot()
        .iter()
        .filter(|e| e.label.starts_with("gate-") || e.label == "busy")
        .fold((0usize, 0usize), |(n, b), e| (n + 1, b + e.bytes));
    Table2Row {
        transport,
        jo_out: traffic.output_bytes(Party::Jo),
        sp_out: traffic.output_bytes(Party::Sp),
        ma_out: traffic.output_bytes(Party::Ma),
        total: traffic.total_bytes(),
        frames: traffic.message_count(),
        gate_frames,
        gate_bytes,
    }
}

fn main() {
    // ---- loopback throughput/latency through the open door ----
    let mut rng = StdRng::seed_from_u64(SEED);
    let svc = MaService::spawn_with_config(
        &mut rng,
        DecParams::fixture(2, 6),
        512,
        40,
        ServiceConfig {
            shards: SHARDS,
            ..ServiceConfig::default()
        },
    );
    // Price 0 isolates transport cost from admission cost; the
    // admission protocol itself (Hello/Admitted) still runs.
    let config = TcpConfig {
        admission: AdmissionConfig {
            price: 0,
            requests_per_token: u64::MAX,
            ..AdmissionConfig::default()
        },
        ..TcpConfig::default()
    };
    let door = TcpFrontDoor::spawn(&svc, "127.0.0.1:0", config).expect("front door");
    let addr = door.addr();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(move || {
                let client = MaClient::new(
                    Arc::new(TcpTransport::new(TcpClientConfig::new(addr))),
                    Party::Sp,
                );
                let account = match client.call(MaRequest::RegisterSpAccount) {
                    MaResponse::Account(a) => a,
                    other => panic!("account: {other:?}"),
                };
                for _ in 0..REQUESTS_PER_CLIENT {
                    match client.call(MaRequest::Balance { account }) {
                        MaResponse::Balance(_) => {}
                        other => panic!("balance: {other:?}"),
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let total_requests = CLIENTS * (REQUESTS_PER_CLIENT + 1);
    let rps = total_requests as f64 / elapsed.as_secs_f64();

    let snap = door.obs_snapshot();
    let hist = snap
        .histogram("tcp.request_ns")
        .expect("request histogram populated");
    let (p50_ns, p99_ns, served) = (hist.p50(), hist.p99(), hist.count);
    println!("tcp front door loopback: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests");
    println!(
        "  {rps:.0} req/s, service-side p50 {:.1}us p99 {:.1}us over {served} served",
        p50_ns as f64 / 1e3,
        p99_ns as f64 / 1e3
    );
    drop(door);
    svc.shutdown();

    // ---- Table II: framing overhead of the socket path ----
    let (simnet_outcome, simnet_traffic) = run_service_market_traffic(
        SEED,
        SHARDS,
        N_SPS,
        W,
        TransportKind::SimNet(SimNetConfig::default()),
    )
    .expect("simnet market");
    let (tcp_outcome, tcp_traffic) = run_service_market_traffic(
        SEED,
        SHARDS,
        N_SPS,
        W,
        TransportKind::Tcp(TcpEquivConfig::default()),
    )
    .expect("tcp market");
    assert_eq!(
        simnet_outcome, tcp_outcome,
        "socket path must not change the ledger"
    );

    let rows = [
        table2_row("simnet", &simnet_traffic),
        table2_row("tcp", &tcp_traffic),
    ];
    println!("table II ({N_SPS} SPs, w={W}), bytes on the wire:");
    println!(
        "  {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>11}",
        "", "jo-out", "sp-out", "ma-out", "total", "frames", "gate-bytes"
    );
    for r in &rows {
        println!(
            "  {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>11}",
            r.transport, r.jo_out, r.sp_out, r.ma_out, r.total, r.frames, r.gate_bytes
        );
    }
    let overhead = (rows[1].total as f64 - rows[0].total as f64) / rows[0].total as f64 * 100.0;
    println!("  tcp adds {overhead:.1}% bytes (admission handshakes + gate framing)");

    // Hand-rolled JSON (the workspace's serde_json is a build stub).
    let table_cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"transport\": \"{}\", \"jo_out\": {}, \"sp_out\": {}, \"ma_out\": {}, \
                 \"total\": {}, \"frames\": {}, \"gate_frames\": {}, \"gate_bytes\": {}}}",
                r.transport,
                r.jo_out,
                r.sp_out,
                r.ma_out,
                r.total,
                r.frames,
                r.gate_frames,
                r.gate_bytes
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"loopback\": {{\"clients\": {CLIENTS}, \"requests\": {total_requests}, \
         \"requests_per_sec\": {rps:.1}, \"p50_ns\": {p50_ns}, \"p99_ns\": {p99_ns}, \
         \"served\": {served}}},\n  \"table2\": [\n{}\n  ],\n  \
         \"tcp_overhead_pct\": {overhead:.2}\n}}\n",
        table_cells.join(",\n")
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{dir}/BENCH_tcp.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json -> BENCH_tcp.json]"),
        Err(e) => eprintln!("  [json write failed: {e}]"),
    }

    // Correctness gates (the `-- --test` smoke relies on these).
    assert!(rps > 0.0);
    if cfg!(feature = "no-op") {
        // Histogram recording is stubbed out in this config; seeing
        // samples here would mean the no-op path stopped being no-op.
        assert_eq!(served, 0, "no-op build must not record latencies");
    } else {
        assert!(p99_ns >= p50_ns);
        assert!(served as usize >= total_requests, "every request timed");
    }
    assert!(
        rows[1].total > rows[0].total,
        "the socket path must account its gate frames"
    );
    assert!(rows[1].gate_frames > 0 && rows[0].gate_frames == 0);
}
