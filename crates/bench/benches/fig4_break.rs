//! **Fig. 4** — Executing time of each breaking node.
//!
//! The paper fixes `L = 12` and derives "every child node and their
//! path values to root": the deeper the breaking node, the costlier.
//! Our equivalent is the node-key derivation `t_1 … t_d` (one modular
//! exponentiation pair per level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bench::cfg;
use ppms_ecash::{Coin, DecParams, NodePath};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_breaking(c: &mut Criterion) {
    let levels = 12;
    let mut rng = StdRng::seed_from_u64(4);
    let params = DecParams::fixture(levels, cfg::ZKP_ROUNDS);
    let coin = Coin::mint(&mut rng, &params);

    let mut group = c.benchmark_group("fig4_break");
    for depth in 1..=10usize {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let path = NodePath::from_index(d, (1 << d) - 1);
            b.iter(|| std::hint::black_box(coin.node_key(&params, &path)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_breaking);
criterion_main!(benches);
