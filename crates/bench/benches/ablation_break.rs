//! **Ablation A2** — cash-break strategies: payment construction and
//! receiver-side verification cost for unitary vs PCBA vs EPCBA, for
//! the same amount. Quantifies the privacy/efficiency trade-off the
//! paper's §IV-C motivates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bench::cfg;
use ppms_ecash::{build_payment, plan_break, receive_payment, CashBreak, DecBank, DecParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_strategies(c: &mut Criterion) {
    let levels = 5;
    let w = 21; // 10101b: mid-weight amount
    let mut rng = StdRng::seed_from_u64(5);
    let params = DecParams::fixture(levels, cfg::ZKP_ROUNDS);
    let bank = DecBank::new(&mut rng, params.clone(), cfg::RSA_BITS);
    let coin = bank.withdraw_coin(&mut rng);
    let sig_bytes = bank.public_key().size_bytes();

    let mut group = c.benchmark_group("ablation_break_build");
    group.sample_size(10);
    for strategy in [CashBreak::Unitary, CashBreak::Pcba, CashBreak::Epcba] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &s| {
                let plan = plan_break(s, w, levels).unwrap();
                b.iter(|| {
                    std::hint::black_box(
                        build_payment(&mut rng, &params, &coin, &plan, b"", sig_bytes).unwrap(),
                    )
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_break_verify");
    group.sample_size(10);
    for strategy in [CashBreak::Unitary, CashBreak::Pcba, CashBreak::Epcba] {
        let plan = plan_break(strategy, w, levels).unwrap();
        let items = build_payment(&mut rng, &params, &coin, &plan, b"", sig_bytes).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &items,
            |b, items| {
                b.iter(|| {
                    std::hint::black_box(receive_payment(&params, bank.public_key(), items, b""))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
