//! Fixed-width vs dynamic arithmetic ablation: the same `ModRing`
//! operations timed on the monomorphized `FpMont` kernels (the default
//! for protocol-width moduli) and on the heap-`Vec` dynamic path they
//! replaced, at the 1024- and 2048-bit protocol widths, plus the
//! Straus↔Pippenger crossover re-measured on the fixed kernels (the
//! Vec-path table put it near n≈128 full-width / n≈150 small-exponent —
//! `pick_bucketed` in `ring.rs` is tuned from this bench's table).
//! Emits `BENCH_fixed.json` at the repo root (EXPERIMENTS.md A12).
//!
//! ```text
//! cargo bench -p ppms-bench --bench ablation_fixed           # full run
//! cargo bench -p ppms-bench --bench ablation_fixed -- --test # CI smoke
//! ```
//!
//! The smoke mode runs one repetition of each shape and checks
//! fixed ≡ dynamic result equality only; the full run also asserts the
//! headline claim — the fixed-width path beats the dynamic path on
//! `pow` and `multi_pow_n` at both protocol widths.

use ppms_bigint::{random_bits, random_odd_bits, BigUint, ModRing};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

struct OpRow {
    op: &'static str,
    bits: usize,
    dynamic_us: f64,
    fixed_us: f64,
    speedup: f64,
}

fn push_op(rows: &mut Vec<OpRow>, op: &'static str, bits: usize, dynamic_us: f64, fixed_us: f64) {
    let speedup = dynamic_us / fixed_us;
    println!(
        "{op:>12} {bits:>4}-bit  dynamic {dynamic_us:>9.1}us  fixed {fixed_us:>9.1}us  speedup {speedup:>5.2}x"
    );
    rows.push(OpRow {
        op,
        bits,
        dynamic_us,
        fixed_us,
        speedup,
    });
}

fn bench_ops(rows: &mut Vec<OpRow>, bits: usize, reps: usize, npairs: usize) {
    let mut rng = StdRng::seed_from_u64(0xF1D0 + bits as u64);
    let m = random_odd_bits(&mut rng, bits);
    let ring = ModRing::new(&m);
    assert!(
        ring.has_fixed_width(),
        "{bits}-bit modulus must land on a monomorphized width"
    );
    let base = random_bits(&mut rng, bits - 1);
    let exp = random_bits(&mut rng, bits);

    // pow: full-width exponent, the protocols' dominant operation.
    assert_eq!(ring.pow(&base, &exp), ring.pow_dynamic(&base, &exp));
    let dyn_us = time_us(reps, || {
        std::hint::black_box(ring.pow_dynamic(&base, &exp));
    });
    let fix_us = time_us(reps, || {
        std::hint::black_box(ring.pow(&base, &exp));
    });
    push_op(rows, "pow", bits, dyn_us, fix_us);

    // multi_pow (Shamir, 2 bases): the Pedersen / ZKP response shape.
    let b2 = random_bits(&mut rng, bits - 1);
    let e2 = random_bits(&mut rng, bits);
    let prod = ring.mul(&ring.pow_dynamic(&base, &exp), &ring.pow_dynamic(&b2, &e2));
    assert_eq!(ring.multi_pow(&[(&base, &exp), (&b2, &e2)]), prod);
    let dyn_us = time_us(reps, || {
        std::hint::black_box(ring.mul(&ring.pow_dynamic(&base, &exp), &ring.pow_dynamic(&b2, &e2)));
    });
    let fix_us = time_us(reps, || {
        std::hint::black_box(ring.multi_pow(&[(&base, &exp), (&b2, &e2)]));
    });
    push_op(rows, "multi_pow2", bits, dyn_us, fix_us);

    // multi_pow_n: the batch-verification shape (full-width exponents).
    let pairs: Vec<(BigUint, BigUint)> = (0..npairs)
        .map(|_| (random_bits(&mut rng, bits - 1), random_bits(&mut rng, bits)))
        .collect();
    let refs: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
    assert_eq!(ring.multi_pow_n(&refs), ring.multi_pow_n_dynamic(&refs));
    let dyn_us = time_us(reps, || {
        std::hint::black_box(ring.multi_pow_n_dynamic(&refs));
    });
    let fix_us = time_us(reps, || {
        std::hint::black_box(ring.multi_pow_n(&refs));
    });
    push_op(rows, "multi_pow_n", bits, dyn_us, fix_us);
}

struct XRow {
    n: usize,
    exp_bits: usize,
    straus_us: f64,
    pippenger_us: f64,
}

fn bench_crossover(xrows: &mut Vec<XRow>, exp_bits: usize, sizes: &[usize], reps: usize) {
    // 1024-bit modulus on the fixed kernels; exponent width selects the
    // regime (full-width = combined-check left side, 64-bit = the
    // small-exponent multipliers of batch verification).
    let mut rng = StdRng::seed_from_u64(0xF1D0C + exp_bits as u64);
    let m = random_odd_bits(&mut rng, 1024);
    let ring = ModRing::new(&m);
    assert!(ring.has_fixed_width());
    println!("fixed-kernel crossover (1024-bit modulus, {exp_bits}-bit exponents):");
    for &n in sizes {
        let pairs: Vec<(BigUint, BigUint)> = (0..n)
            .map(|_| (random_bits(&mut rng, 1023), random_bits(&mut rng, exp_bits)))
            .collect();
        let refs: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
        assert_eq!(
            ring.multi_pow_n_straus(&refs),
            ring.multi_pow_n_pippenger(&refs)
        );
        let straus_us = time_us(reps, || {
            std::hint::black_box(ring.multi_pow_n_straus(&refs));
        });
        let pippenger_us = time_us(reps, || {
            std::hint::black_box(ring.multi_pow_n_pippenger(&refs));
        });
        println!("  n={n:<4} straus {straus_us:>9.1}us  pippenger {pippenger_us:>9.1}us");
        xrows.push(XRow {
            n,
            exp_bits,
            straus_us,
            pippenger_us,
        });
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (reps, npairs) = if smoke { (1, 4) } else { (16, 16) };
    let xsizes: &[usize] = if smoke {
        &[4, 16]
    } else {
        &[16, 48, 96, 128, 192, 256]
    };
    let xreps = if smoke { 1 } else { 4 };

    let mut rows = Vec::new();
    bench_ops(&mut rows, 1024, reps, npairs);
    bench_ops(&mut rows, 2048, reps.max(4), npairs);
    let mut xrows = Vec::new();
    bench_crossover(&mut xrows, 1024, xsizes, xreps);
    bench_crossover(&mut xrows, 64, xsizes, xreps);

    // Hand-rolled JSON (the workspace's serde_json is a build stub).
    let op_cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"op\": \"{}\", \"bits\": {}, \"dynamic_us\": {:.2}, \
                 \"fixed_us\": {:.2}, \"speedup\": {:.3}}}",
                r.op, r.bits, r.dynamic_us, r.fixed_us, r.speedup
            )
        })
        .collect();
    let x_cells: Vec<String> = xrows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"exp_bits\": {}, \"straus_us\": {:.2}, \"pippenger_us\": {:.2}}}",
                r.n, r.exp_bits, r.straus_us, r.pippenger_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"smoke\": {},\n  \"ops\": [\n{}\n  ],\n  \"fixed_crossover\": [\n{}\n  ]\n}}\n",
        smoke,
        op_cells.join(",\n"),
        x_cells.join(",\n")
    );
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{dir}/BENCH_fixed.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("  [json -> BENCH_fixed.json]"),
        Err(e) => eprintln!("  [json write failed: {e}]"),
    }

    if !smoke {
        // Acceptance: the fixed-width path must beat the dynamic path
        // on pow and multi_pow_n at both protocol widths.
        for op in ["pow", "multi_pow_n"] {
            for bits in [1024usize, 2048] {
                let r = rows
                    .iter()
                    .find(|r| r.op == op && r.bits == bits)
                    .expect("ablation row");
                assert!(
                    r.speedup > 1.0,
                    "{op} at {bits}-bit: fixed path not faster ({:.2}x)",
                    r.speedup
                );
            }
        }
    }
}
