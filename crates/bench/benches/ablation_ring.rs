//! **Ablation A5** — the `ModRing` exponentiation stack: per-call
//! plain `modpow` (the seed's RSA path, context rebuilt every call)
//! vs a cached ring context vs fixed-base window evaluation vs
//! RSA-CRT for private-key operations.
//!
//! The acceptance bar for the refactor is cached fixed-base ≥ 2× over
//! per-call plain `modpow` — in practice the gap is far larger, since
//! the window tables remove every squaring from the hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppms_bigint::{random_below, random_odd_bits, ModRing};
use ppms_crypto::rsa;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_exponentiation_paths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x51u64);
    let mut group = c.benchmark_group("ablation_ring");
    for bits in [512usize, 1024] {
        let m = random_odd_bits(&mut rng, bits);
        let base = random_below(&mut rng, &m);
        let exp = random_below(&mut rng, &m);

        // Seed behaviour: BigUint::modpow builds a fresh Montgomery
        // context (one division for R² mod n) on every single call.
        group.bench_with_input(BenchmarkId::new("plain_per_call", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(base.modpow(&exp, &m)));
        });

        // Constructed-once ring: same square-and-multiply, context
        // amortized across calls.
        let ring = ModRing::new(&m);
        group.bench_with_input(BenchmarkId::new("ring_cached", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(ring.pow(&base, &exp)));
        });

        // Fixed-base window table: one multiplication per nonzero
        // 4-bit digit, no squarings at all.
        ring.register_base(&base);
        ring.precompute();
        group.bench_with_input(BenchmarkId::new("ring_fixed_base", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(ring.pow_fixed(&base, &exp)));
        });
    }
    group.finish();
}

fn bench_rsa_crt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x52u64);
    let mut group = c.benchmark_group("ablation_ring_crt");
    for bits in [512usize, 1024] {
        let sk = rsa::keygen(&mut rng, bits);
        let n = &sk.public.n;
        let msg = random_below(&mut rng, n);

        // Full-width private exponent, context rebuilt per call.
        group.bench_with_input(BenchmarkId::new("d_plain_per_call", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(msg.modpow(&sk.d, n)));
        });

        // Full-width private exponent on the cached ring.
        let ring = ModRing::new(n);
        group.bench_with_input(BenchmarkId::new("d_ring_cached", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(ring.pow(&msg, &sk.d)));
        });

        // CRT split: two half-width exponentiations + Garner lift.
        group.bench_with_input(BenchmarkId::new("d_crt", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(sk.crt().pow_secret(&msg)));
        });
    }
    group.finish();
}

fn bench_multi_pow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x53u64);
    let mut group = c.benchmark_group("ablation_ring_multi");
    for bits in [512usize, 1024] {
        let m = random_odd_bits(&mut rng, bits);
        let ring = ModRing::new(&m);
        let g = random_below(&mut rng, &m);
        let h = random_below(&mut rng, &m);
        let a = random_below(&mut rng, &m);
        let b_ = random_below(&mut rng, &m);

        // The Pedersen/ZKP shape g^a·h^b as two separate pows…
        group.bench_with_input(BenchmarkId::new("two_single_pows", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(ring.mul(&ring.pow(&g, &a), &ring.pow(&h, &b_))));
        });

        // …vs Shamir's trick sharing one squaring chain.
        group.bench_with_input(BenchmarkId::new("multi_pow", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(ring.multi_pow(&[(&g, &a), (&h, &b_)])));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exponentiation_paths,
    bench_rsa_crt,
    bench_multi_pow
);
criterion_main!(benches);
