//! Shared measurement helpers for the Criterion benches and the
//! `report` binary that regenerates every figure and table of the
//! paper's evaluation (§VI).

use std::time::{Duration, Instant};

/// Times `f` once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Times `f` over `iters` runs and returns the mean duration.
/// The paper ran every experiment 100 times and reported the average
/// (§VI-D); the report harness mirrors that with a caller-chosen
/// iteration count.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters >= 1);
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters as u32
}

/// Formats a duration in fractional milliseconds (the paper's unit).
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Standard bench parameters, matching the integration tests:
/// structurally faithful, sized for quick turnaround.
pub mod cfg {
    /// RSA modulus bits.
    pub const RSA_BITS: usize = 512;
    /// Pairing group-order bits.
    pub const PAIRING_BITS: usize = 48;
    /// Stadler rounds.
    pub const ZKP_ROUNDS: usize = 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_mean_counts() {
        let mut n = 0;
        let _ = time_mean(5, || n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn ms_converts() {
        assert!((ms(Duration::from_millis(1500)) - 1500.0).abs() < 1e-9);
    }
}
