//! `report` — regenerates every figure and table of the paper's
//! evaluation section (§VI) as text series, and dumps machine-readable
//! JSON next to them.
//!
//! ```text
//! cargo run --release -p ppms-bench --bin report -- all
//! cargo run --release -p ppms-bench --bin report -- fig2 --budget-secs 120
//! ```
//!
//! Subcommands: `fig2`, `fig3`, `fig4`, `fig5`, `table1`, `table2`,
//! `attack`, `break`, `all`.

use ppms_bench::{cfg, ms, time_mean, time_once};
use ppms_core::attack::{run_denomination_attack, run_timing_attack};
use ppms_core::ppmsdec::DecMarket;
use ppms_core::ppmspbs::PbsMarket;
use ppms_core::sim::{drive_market_keyed, run_dec_rounds, run_pbs_rounds, spawn_durable_market};
use ppms_core::{DurabilityConfig, Party, SimStorage};
use ppms_ecash::{
    build_payment, plan_break, receive_payment, CashBreak, Coin, DecBank, DecParams, NodePath,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let budget = args
        .iter()
        .position(|a| a == "--budget-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(90);

    std::fs::create_dir_all("target/report").ok();
    match cmd {
        "fig2" => fig2(Duration::from_secs(budget)),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "table1" => table1(),
        "table2" => table2(),
        "attack" => attack(),
        "timing" => timing(),
        "break" => break_report(),
        "obs" => obs(),
        "all" => {
            fig2(Duration::from_secs(budget));
            fig3();
            fig4();
            fig5();
            table1();
            table2();
            attack();
            timing();
            break_report();
            obs();
        }
        other => {
            eprintln!("unknown subcommand {other}; use fig2|fig3|fig4|fig5|table1|table2|attack|timing|break|obs|all");
            std::process::exit(2);
        }
    }
}

fn dump_json<T: Serialize>(name: &str, value: &T) {
    let path = format!("target/report/{name}.json");
    if let Ok(json) = serde_json::to_string_pretty(value) {
        if std::fs::write(&path, json).is_ok() {
            println!("  [json -> {path}]");
        }
    }
}

#[derive(Serialize)]
#[allow(dead_code)] // fields feed the (stubbed) serde derive
struct Series {
    x: Vec<f64>,
    y_ms: Vec<f64>,
    note: String,
}

/// Fig. 2 — setup (Cunningham chain search) time per level, with a
/// wall-clock budget: the search cost explodes with the level, exactly
/// as the paper observes around L = 7 (our absolute blow-up point
/// depends on the start-prime width; the *shape* is the result).
///
/// Each level `L` needs a chain of `L + 2` links, and a length-`k`
/// chain only exists above a minimum start magnitude, so the search
/// width follows [`ppms_primes::cunningham::min_start_bits`] — pushing
/// the search to the density frontier where the blow-up lives.
fn fig2(budget: Duration) {
    println!(
        "== Fig. 2: Setup executing time of each level (chain search at the frontier width) =="
    );
    println!("{:>6} {:>12} {:>14}", "L", "start bits", "time (ms)");
    let t_start = Instant::now();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for levels in 0..=12usize {
        let remaining = budget.saturating_sub(t_start.elapsed());
        if remaining.is_zero() {
            println!("  (budget exhausted before L = {levels} — the blow-up the paper reports)");
            break;
        }
        let chain_len = levels + 2;
        let bits = ppms_primes::cunningham::min_start_bits(chain_len.min(14)).max(16);
        let deadline = Instant::now() + remaining;
        let (found, d) = time_once(|| {
            ppms_primes::cunningham::find_chain_parallel_deadline(
                bits,
                chain_len,
                42 + levels as u64,
                Some(deadline),
            )
        });
        match found {
            Some(_) => {
                println!("{levels:>6} {bits:>12} {:>14.1}", ms(d));
                xs.push(levels as f64);
                ys.push(ms(d));
            }
            None => {
                println!("{levels:>6} {bits:>12} {:>14}", "> budget");
                println!("  (search at L = {levels} exceeded the remaining budget — the paper's blow-up)");
                break;
            }
        }
    }
    dump_json(
        "fig2",
        &Series {
            x: xs,
            y_ms: ys,
            note: "setup time vs level; cost explodes with chain length".into(),
        },
    );
    println!();
}

/// Fig. 3 — executing time (spend + verify) per node level `Ni`,
/// across tree levels `L` — the paper plots one curve per `Ni` over
/// the x-axis `L`; we print the full grid.
fn fig3() {
    println!("== Fig. 3: Executing time of each possible node level (grid over L and Ni, ms) ==");
    let ni_cols = [1usize, 2, 4, 6, 8, 10];
    print!("{:>4}", "L");
    for ni in ni_cols {
        print!(" {:>8}", format!("Ni={ni}"));
    }
    println!();

    let mut rng = StdRng::seed_from_u64(3);
    let mut grid: Vec<(usize, Vec<(usize, f64)>)> = Vec::new();
    for levels in (2..=12usize).step_by(2) {
        let params = DecParams::fixture(levels, cfg::ZKP_ROUNDS);
        let bank = DecBank::new(&mut rng, params.clone(), cfg::RSA_BITS);
        let coin = bank.withdraw_coin(&mut rng);
        print!("{levels:>4}");
        let mut row = Vec::new();
        for &ni in &ni_cols {
            if ni > levels {
                print!(" {:>8}", "-");
                continue;
            }
            let path = NodePath::from_index(ni, 0);
            let d = time_mean(5, || {
                let spend = coin.spend(&mut rng, &params, &path, b"r");
                spend.verify(&params, bank.public_key(), b"r").unwrap();
            });
            print!(" {:>8.2}", ms(d));
            row.push((ni, ms(d)));
        }
        println!();
        grid.push((levels, row));
    }

    #[derive(Serialize)]
    #[allow(dead_code)] // fields feed the (stubbed) serde derive
    struct Fig3Grid {
        rows: Vec<(usize, Vec<(usize, f64)>)>,
        note: String,
    }
    dump_json(
        "fig3",
        &Fig3Grid {
            rows: grid,
            note: "spend+verify time per (L, Ni); grows with Ni, mildly with L".into(),
        },
    );
    println!();
}

/// Fig. 4 — cash-breaking (node-key derivation) time per node level,
/// L = 12 fixed.
fn fig4() {
    println!("== Fig. 4: Executing time of each breaking node (L = 12) ==");
    let levels = 12;
    let mut rng = StdRng::seed_from_u64(4);
    let params = DecParams::fixture(levels, cfg::ZKP_ROUNDS);
    let coin = Coin::mint(&mut rng, &params);
    println!("{:>6} {:>14}", "level", "time (ms)");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for depth in 1..=10usize {
        let path = NodePath::from_index(depth, (1 << depth) - 1);
        let d = time_mean(50, || {
            std::hint::black_box(coin.node_key(&params, &path));
        });
        println!("{depth:>6} {:>14.3}", ms(d));
        xs.push(depth as f64);
        ys.push(ms(d));
    }
    dump_json(
        "fig4",
        &Series {
            x: xs,
            y_ms: ys,
            note: "deeper breaking node => higher derivation cost".into(),
        },
    );
    println!();
}

#[derive(Serialize)]
#[allow(dead_code)] // fields feed the (stubbed) serde derive
struct Fig5Row {
    rounds: usize,
    dec_ms: f64,
    pbs_ms: f64,
}

/// Fig. 5 — multi-round executing time comparison, setup included.
fn fig5() {
    println!("== Fig. 5: Executing time over multiple rounds (setup included) ==");
    println!(
        "{:>8} {:>14} {:>14}",
        "rounds", "PPMSdec (ms)", "PPMSpbs (ms)"
    );
    let mut rows = Vec::new();
    for rounds in (10..=100).step_by(10) {
        // Paper scale: L = 12 coin trees, full-strength Stadler proofs
        // and a multi-coin payment — the ZKP-heavy regime where
        // PPMSdec's growth rate dwarfs PPMSpbs's (Fig. 5's message).
        let (dec, _) = run_dec_rounds(
            rounds as u64,
            rounds,
            12,
            32,
            cfg::RSA_BITS,
            cfg::PAIRING_BITS,
            1365, // 10101010101b: six coins per payment under PCBA
            CashBreak::Pcba,
        )
        .expect("dec rounds");
        let pbs = run_pbs_rounds(rounds as u64, rounds, cfg::RSA_BITS).expect("pbs rounds");
        println!(
            "{rounds:>8} {:>14.1} {:>14.1}",
            ms(dec.total()),
            ms(pbs.total())
        );
        rows.push(Fig5Row {
            rounds,
            dec_ms: ms(dec.total()),
            pbs_ms: ms(pbs.total()),
        });
    }
    dump_json("fig5", &rows);
    println!();
}

#[derive(Serialize)]
#[allow(dead_code)] // fields feed the (stubbed) serde derive
struct Table1Row {
    mechanism: String,
    jo: String,
    sp: String,
    ma: String,
}

/// Table I — core operation complexity per party, measured.
fn table1() {
    println!("== Table I: core operation complexity (measured, one round) ==");
    let mut rng = StdRng::seed_from_u64(10);
    let params = DecParams::fixture(3, cfg::ZKP_ROUNDS);
    let mut dec = DecMarket::new(&mut rng, params, cfg::RSA_BITS, cfg::PAIRING_BITS);
    let mut jo = dec.register_jo(&mut rng, 100, cfg::RSA_BITS);
    let sp = dec.register_sp(&mut rng, cfg::RSA_BITS);
    dec.run_round(&mut rng, &mut jo, &sp, "job", 5, CashBreak::Pcba, b"data")
        .unwrap();

    let mut pbs = PbsMarket::new();
    let pjo = pbs.register_jo(&mut rng, 10, cfg::RSA_BITS);
    let psp = pbs.register_sp(&mut rng, cfg::RSA_BITS);
    pbs.run_round(&mut rng, &pjo, &psp, "job", b"data").unwrap();

    // The table renders from detached *snapshots*, not the live
    // counters: the same serde type the service and obs layers export,
    // so shard-local snapshots can be merged before printing.
    let dec_snap = dec.metrics.snapshot();
    let pbs_snap = pbs.metrics.snapshot();
    println!("{:<10} {:<28} {:<22} {:<18}", "mechanism", "JO", "SP", "MA");
    let mut rows = Vec::new();
    for (name, m) in [("PPMSdec", &dec_snap), ("PPMSpbs", &pbs_snap)] {
        let row = Table1Row {
            mechanism: name.into(),
            jo: m.formula(Party::Jo),
            sp: m.formula(Party::Sp),
            ma: m.formula(Party::Ma),
        };
        println!(
            "{:<10} {:<28} {:<22} {:<18}",
            row.mechanism, row.jo, row.sp, row.ma
        );
        rows.push(row);
    }
    println!("paper:     JO=(8+i)ZKP+4Enc+1Dec+1H   SP=4Dec               MA=1Enc  (PPMSdec)");
    println!("           JO=2Enc+1H                 SP=2Dec+3H            MA=1Dec+2H  (PPMSpbs)");
    dump_json("table1", &rows);
    println!();
}

#[derive(Serialize)]
#[allow(dead_code)] // fields feed the (stubbed) serde derive
struct Table2Row {
    mechanism: String,
    jo_in: usize,
    jo_out: usize,
    sp_in: usize,
    sp_out: usize,
    total_kb: f64,
}

/// Table II — communication traffic per party; like the paper, the
/// PPMSdec scenario uses the minimum level and node index.
fn table2() {
    println!("== Table II: communication traffic (one round, minimal DEC level) ==");
    let mut rng = StdRng::seed_from_u64(11);
    let params = DecParams::fixture(1, cfg::ZKP_ROUNDS);
    let mut dec = DecMarket::new(&mut rng, params, cfg::RSA_BITS, cfg::PAIRING_BITS);
    let mut jo = dec.register_jo(&mut rng, 100, cfg::RSA_BITS);
    let sp = dec.register_sp(&mut rng, cfg::RSA_BITS);
    dec.run_round(&mut rng, &mut jo, &sp, "j", 1, CashBreak::Pcba, b"d")
        .unwrap();

    let mut pbs = PbsMarket::new();
    let pjo = pbs.register_jo(&mut rng, 10, cfg::RSA_BITS);
    let psp = pbs.register_sp(&mut rng, cfg::RSA_BITS);
    pbs.run_round(&mut rng, &pjo, &psp, "j", b"d").unwrap();

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "mechanism", "JO in", "JO out", "SP in", "SP out", "total (kb)"
    );
    let mut rows = Vec::new();
    for (name, t) in [("PPMSdec", &dec.traffic), ("PPMSpbs", &pbs.traffic)] {
        let row = Table2Row {
            mechanism: name.into(),
            jo_in: t.input_bytes(Party::Jo),
            jo_out: t.output_bytes(Party::Jo),
            sp_in: t.input_bytes(Party::Sp),
            sp_out: t.output_bytes(Party::Sp),
            total_kb: t.total_kb(),
        };
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>11.2}",
            row.mechanism, row.jo_in, row.jo_out, row.sp_in, row.sp_out, row.total_kb
        );
        rows.push(row);
    }
    println!(
        "paper:     PPMSdec 664/4864 + 3840/2176 = 11.27 kb; PPMSpbs 256/784 + 768/384 = 2.14 kb"
    );
    dump_json("table2", &rows);
    println!();
}

#[derive(Serialize)]
#[allow(dead_code)] // fields feed the (stubbed) serde derive
struct AttackRow {
    strategy: String,
    unique_success: f64,
    mean_candidates: f64,
}

/// Extension A1 — the denomination attack per break strategy.
fn attack() {
    println!("== A1: denomination attack (12 jobs, payments in [1, 256], 2000 trials) ==");
    println!(
        "{:<10} {:>20} {:>20}",
        "strategy", "unique success", "mean candidates"
    );
    let mut rows = Vec::new();
    for strategy in [
        CashBreak::None,
        CashBreak::Pcba,
        CashBreak::Epcba,
        CashBreak::Unitary,
    ] {
        let r = run_denomination_attack(0xA77AC4, strategy, 12, 8, 2000);
        println!(
            "{:<10} {:>19.1}% {:>20.2}",
            format!("{strategy:?}"),
            r.unique_success_rate * 100.0,
            r.mean_candidate_jobs
        );
        rows.push(AttackRow {
            strategy: format!("{strategy:?}"),
            unique_success: r.unique_success_rate,
            mean_candidates: r.mean_candidate_jobs,
        });
    }
    dump_json("attack", &rows);
    println!();
}

#[derive(Serialize)]
#[allow(dead_code)] // fields feed the (stubbed) serde derive
struct TimingRow {
    n_sps: usize,
    max_delay: u64,
    clustering_success: f64,
}

/// Extension A6 — deposit-timing mixing (the paper's random waits in
/// §IV-A8, quantified): how often can the bank reassemble one SP's
/// deposit burst from the interleaved global stream?
fn timing() {
    println!("== A6: deposit-timing clustering attack (PCBA coins, L = 6, 1000 trials) ==");
    println!("{:<8} {:<10} {:>22}", "SPs", "max delay", "cluster success");
    let mut rows = Vec::new();
    for &n_sps in &[2usize, 4, 8, 16] {
        for &max_delay in &[5u64, 20, 80] {
            let r = run_timing_attack(0x71417, CashBreak::Pcba, n_sps, 6, max_delay, 1000);
            println!(
                "{n_sps:<8} {max_delay:<10} {:>21.1}%",
                r.clustering_success_rate * 100.0
            );
            rows.push(TimingRow {
                n_sps,
                max_delay,
                clustering_success: r.clustering_success_rate,
            });
        }
    }
    println!("more concurrent depositors and wider random waits both cut the");
    println!("bank's ability to reassemble a participant's deposit burst.");
    dump_json("timing", &rows);
    println!();
}

/// Extension A10 — observability: per-operation latency spans
/// accumulated in the process-global `ppms-obs` registry over one
/// round of each mechanism, printed as quantiles and dumped via the
/// layer's own snapshot serializer.
fn obs() {
    println!("== A10: observability spans (one round of each mechanism) ==");
    let mut rng = StdRng::seed_from_u64(13);
    let params = DecParams::fixture(2, cfg::ZKP_ROUNDS);
    let mut dec = DecMarket::new(&mut rng, params, cfg::RSA_BITS, cfg::PAIRING_BITS);
    let mut jo = dec.register_jo(&mut rng, 100, cfg::RSA_BITS);
    let sp = dec.register_sp(&mut rng, cfg::RSA_BITS);
    dec.run_round(&mut rng, &mut jo, &sp, "job", 3, CashBreak::Pcba, b"data")
        .unwrap();
    let mut pbs = PbsMarket::new();
    let pjo = pbs.register_jo(&mut rng, 10, cfg::RSA_BITS);
    let psp = pbs.register_sp(&mut rng, cfg::RSA_BITS);
    pbs.run_round(&mut rng, &pjo, &psp, "job", b"data").unwrap();

    // Durable-tier instruments (`wal.*`, DESIGN.md §14): one keyed
    // market schedule journaled into simulated storage, checkpointed
    // and sealed; the service's private registry is merged into the
    // global snapshot so obs.json carries both layers.
    let mut dur = DurabilityConfig::new(Arc::new(SimStorage::new()));
    dur.segment_bytes = 4096;
    let svc = spawn_durable_market(0xE0, 2, dur).expect("durable spawn");
    drive_market_keyed(&svc, 0xE0, 3, 3, u64::MAX).expect("durable drive");
    svc.checkpoint().expect("checkpoint");
    let wal = svc.obs.snapshot();
    svc.shutdown();

    let snap = ppms_obs::global().snapshot().merge(&wal);
    println!(
        "{:<20} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "span", "count", "p50-us", "p90-us", "p99-us", "max-us"
    );
    for (name, h) in &snap.histograms {
        if h.is_empty() {
            continue;
        }
        println!(
            "{name:<20} {:>8} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            h.count,
            h.p50() as f64 / 1e3,
            h.p90() as f64 / 1e3,
            h.p99() as f64 / 1e3,
            h.max as f64 / 1e3,
        );
    }
    println!("(quantiles are log2-bucket upper bounds; spans cover both rounds above)");
    println!("durable tier (one checkpointed market schedule):");
    for name in [
        "wal.fsyncs",
        "wal.snapshots",
        "wal.compactions",
        "wal.segments_compacted",
    ] {
        println!("  {name:<26} {:>8}", snap.counter(name));
    }
    for name in [
        "wal.records",
        "wal.disk_bytes",
        "wal.segments",
        "wal.last_snapshot_lsn",
        "wal.records_since_snapshot",
    ] {
        println!("  {name:<26} {:>8}", snap.gauge(name));
    }
    match snap.histogram("wal.fsync_ns") {
        Some(h) if !h.is_empty() => println!(
            "  {:<26} p50 {:.1}us  p99 {:.1}us  ({} syncs timed)",
            "wal.fsync_ns",
            h.p50() as f64 / 1e3,
            h.p99() as f64 / 1e3,
            h.count
        ),
        _ => println!("  wal.fsync_ns               (no samples — no-op build)"),
    }
    let path = "target/report/obs.json";
    if std::fs::write(path, snap.to_json()).is_ok() {
        println!("  [json -> {path}]");
    }
    println!();
}

#[derive(Serialize)]
#[allow(dead_code)] // fields feed the (stubbed) serde derive
struct BreakRow {
    strategy: String,
    real_coins: usize,
    total_items: usize,
    wire_bytes: usize,
    verify_ms: f64,
}

/// Extension A2 — break-strategy cost table (coins, bytes, verify time).
fn break_report() {
    println!("== A2: cash-break trade-off (L = 5, w = 21) ==");
    let levels = 5;
    let w = 21;
    let mut rng = StdRng::seed_from_u64(12);
    let params = DecParams::fixture(levels, cfg::ZKP_ROUNDS);
    let bank = DecBank::new(&mut rng, params.clone(), cfg::RSA_BITS);
    let sig_bytes = bank.public_key().size_bytes();
    println!(
        "{:<10} {:>11} {:>12} {:>12} {:>12}",
        "strategy", "real coins", "total items", "wire bytes", "verify (ms)"
    );
    let mut rows = Vec::new();
    for strategy in [
        CashBreak::None,
        CashBreak::Pcba,
        CashBreak::Epcba,
        CashBreak::Unitary,
    ] {
        let coin = bank.withdraw_coin(&mut rng);
        let plan = plan_break(strategy, w, levels).unwrap();
        let items = build_payment(&mut rng, &params, &coin, &plan, b"", sig_bytes).unwrap();
        let wire: usize = items.iter().map(|i| i.wire_size(&params, sig_bytes)).sum();
        let d = time_mean(5, || {
            std::hint::black_box(receive_payment(&params, bank.public_key(), &items, b""));
        });
        let row = BreakRow {
            strategy: format!("{strategy:?}"),
            real_coins: plan.real_coins(),
            total_items: items.len(),
            wire_bytes: wire,
            verify_ms: ms(d),
        };
        println!(
            "{:<10} {:>11} {:>12} {:>12} {:>12.2}",
            row.strategy, row.real_coins, row.total_items, row.wire_bytes, row.verify_ms
        );
        rows.push(row);
    }
    dump_json("break", &rows);
    println!();
}
