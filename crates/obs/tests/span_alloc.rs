//! Allocation discipline of the span machinery, pinned by a counting
//! global allocator (same technique as `ppms-bigint`'s `alloc_free`):
//! under the `no-op` feature a [`Span`] is a pure context passthrough
//! — zero heap allocations to create, query and drop — and even in
//! the live build a *warmed* span (name already interned) records
//! into the ring without allocating. The `#![forbid(unsafe_code)]`
//! in the library crate does not extend to this test binary, which
//! needs `unsafe` only for the `GlobalAlloc` shim.

use ppms_obs::Span;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed by `f` on this thread (growth only).
fn allocs_in(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

fn span_tree_once(trace: u64) {
    let root = Span::root("alloc.root", trace);
    let child = Span::child("alloc.child", root.ctx());
    black_box(child.ctx());
    drop(child);
    drop(root);
}

#[cfg(feature = "no-op")]
#[test]
fn noop_spans_never_allocate() {
    // Cold path included: the stub has nothing to warm.
    let n = allocs_in(|| {
        for i in 0..64u64 {
            span_tree_once(0x5000 + i);
            black_box(Span::child("alloc.other", ppms_obs::SpanContext::from_trace(i)).ctx());
        }
    });
    assert_eq!(n, 0, "no-op span machinery must be a zero-cost stub");
    assert!(ppms_obs::span_events().is_empty());
}

#[cfg(not(feature = "no-op"))]
#[test]
fn live_spans_do_not_allocate_once_warmed() {
    // First use interns the names and lazily builds the ring.
    span_tree_once(0x6000);
    let n = allocs_in(|| {
        for i in 0..64u64 {
            span_tree_once(0x6001 + i);
        }
    });
    assert_eq!(n, 0, "a warmed span records into the ring allocation-free");
}

#[cfg(not(feature = "no-op"))]
#[test]
fn disabled_spans_do_not_allocate() {
    ppms_obs::set_enabled(false);
    let n = allocs_in(|| {
        for i in 0..64u64 {
            span_tree_once(0x7000 + i);
        }
    });
    ppms_obs::set_enabled(true);
    assert_eq!(n, 0, "runtime-disabled spans are context passthroughs");
}
