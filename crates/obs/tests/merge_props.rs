//! Property coverage for snapshot aggregation: merging shard-wise
//! snapshots is associative and commutative, and splitting one sample
//! stream across any number of shard registries merges back to
//! exactly the single-registry run.

#![cfg(not(feature = "no-op"))]

use ppms_obs::{bucket_index, Histogram, Registry, Snapshot};
use proptest::prelude::*;

/// One synthetic instrument update.
#[derive(Debug, Clone)]
enum Update {
    Counter(u8, u64),
    Gauge(u8, i32),
    Hist(u8, u64),
}

fn update() -> impl Strategy<Value = Update> {
    (0u8..3, 0u8..4, any::<u64>()).prop_map(|(kind, k, v)| match kind {
        0 => Update::Counter(k, v % 1_000),
        1 => Update::Gauge(k, (v % 1_000) as i32 - 500),
        _ => Update::Hist(k, v),
    })
}

fn apply(reg: &Registry, u: &Update) {
    match *u {
        Update::Counter(k, n) => reg.counter(&format!("c{k}")).add(n),
        Update::Gauge(k, n) => reg.gauge(&format!("g{k}")).add(n as i64),
        Update::Hist(k, v) => reg.histogram(&format!("h{k}")).record(v),
    }
}

/// Values chosen to sit exactly on log₂-bucket boundaries (both
/// sides), collapse into the tiny buckets, or land anywhere — the
/// distributions where a bucketed quantile is most likely to slip.
fn adversarial_value() -> impl Strategy<Value = u64> {
    (0u8..4, 0u32..64, any::<u64>()).prop_map(|(kind, b, raw)| match kind {
        0 => 1u64 << b,
        1 => (((1u128) << (b + 1)) - 1) as u64,
        2 => raw % 5,
        _ => raw,
    })
}

fn snapshot_of(updates: &[Update]) -> Snapshot {
    let reg = Registry::new();
    for u in updates {
        apply(&reg, u);
    }
    reg.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Shard-wise recording + merge equals the single-registry run,
    // for any 3-way split of the update stream.
    #[test]
    fn sharded_merge_equals_single_registry(
        updates in prop::collection::vec(update(), 0..60),
        assignment in prop::collection::vec(0usize..3, 0..60),
    ) {
        let whole = snapshot_of(&updates);
        let shards = [Registry::new(), Registry::new(), Registry::new()];
        for (i, u) in updates.iter().enumerate() {
            let shard = assignment.get(i).copied().unwrap_or(i % 3);
            apply(&shards[shard], u);
        }
        let merged = shards[0]
            .snapshot()
            .merge(&shards[1].snapshot())
            .merge(&shards[2].snapshot());
        prop_assert_eq!(merged, whole);
    }

    // Merge is commutative.
    #[test]
    fn merge_commutes(
        a in prop::collection::vec(update(), 0..40),
        b in prop::collection::vec(update(), 0..40),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    // Merge is associative.
    #[test]
    fn merge_associates(
        a in prop::collection::vec(update(), 0..30),
        b in prop::collection::vec(update(), 0..30),
        c in prop::collection::vec(update(), 0..30),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(
            sa.merge(&sb).merge(&sc),
            sa.merge(&sb.merge(&sc))
        );
    }

    // The empty snapshot is a merge identity.
    #[test]
    fn empty_is_identity(a in prop::collection::vec(update(), 0..40)) {
        let sa = snapshot_of(&a);
        prop_assert_eq!(sa.merge(&Snapshot::default()), sa.clone());
        prop_assert_eq!(Snapshot::default().merge(&sa), sa);
    }

    // Percentile accuracy on adversarial distributions: the reported
    // p50/p99/p999 is never below the exact order statistic and never
    // leaves its log₂ bucket (the histogram's advertised resolution),
    // and shard-splitting then merging changes none of the reported
    // quantiles.
    #[test]
    fn reported_quantiles_stay_in_the_exact_samples_bucket(
        samples in prop::collection::vec(adversarial_value(), 1..200),
        split in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let snap = whole.snapshot();

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = samples.len();
        for &q in &[0.50f64, 0.99, 0.999] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let reported = snap.quantile(q);
            prop_assert!(
                reported >= exact,
                "q={q}: reported {reported} < exact {exact}"
            );
            prop_assert_eq!(
                bucket_index(reported),
                bucket_index(exact),
                "q={}: reported {} left exact {}'s bucket",
                q,
                reported,
                exact
            );
        }

        // The same stream split across two shard histograms and merged
        // back reports identical quantiles, so the accuracy bound
        // survives `merge`.
        let (a, b) = (Histogram::new(), Histogram::new());
        for (i, &v) in samples.iter().enumerate() {
            let left = split.get(i).copied().unwrap_or(i % 2 == 0);
            if left { a.record(v) } else { b.record(v) }
        }
        let merged = a.snapshot().merge(&b.snapshot());
        for &q in &[0.50f64, 0.99, 0.999] {
            prop_assert_eq!(merged.quantile(q), snap.quantile(q), "q={}", q);
        }
    }
}
