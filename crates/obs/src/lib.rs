//! `ppms-obs` — the observability substrate under the whole market
//! stack (bigint → crypto → ecash → core → bench all sit above it).
//!
//! Four pieces:
//!
//! * **causal spans** ([`SpanContext`], [`Span`]): a trace/span/parent
//!   id triple that rides the wire envelope, an RAII guard minting
//!   child contexts, and a process-global lock-free span ring exported
//!   as Chrome `trace_event` JSONL ([`export_trace_jsonl`]) — one
//!   request's retries, reactor phases, admission check, shard
//!   execution, WAL append and fsync as a single tree.
//! * a **metrics registry** ([`Registry`]) of named atomic
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Histogram`]s.
//!   Handles are `Arc`s resolved once; updates are relaxed atomics —
//!   cheap enough for the modular-exponentiation hot path. Every
//!   registry exports one mergeable [`Snapshot`], so per-shard
//!   registries aggregate the same way single registries read.
//! * **span-style timing** via the [`Timed`] RAII guard over a
//!   monotonic clock, plus the [`timed!`] / [`count!`] macros that
//!   cache a global-registry handle per call site.
//! * a **flight recorder** ([`FlightRecorder`]) — a bounded ring of
//!   recent structured events per shard, dumped with the metrics
//!   snapshot to a JSON artifact when a worker panics or the chaos
//!   harness detects divergence.
//!
//! # The `no-op` feature and the runtime switch
//!
//! With the `no-op` cargo feature, the *timing* surface — clock reads
//! in [`Timed`], histogram recording, flight-recorder events —
//! compiles to inert stubs, so the paper-figure benches run
//! uncontaminated. Counters and gauges stay real in both
//! configurations: Table I / Table II correctness depends on them,
//! and a relaxed `fetch_add` costs a few nanoseconds.
//!
//! Orthogonally, [`set_enabled`]`(false)` turns timing off at runtime
//! (one relaxed bool load per span). The `obs_overhead` bench uses it
//! to measure instrumented-vs-dark inside one binary.

#![forbid(unsafe_code)]

mod hist;
mod json;
mod recorder;
mod span;

pub use hist::{bucket_index, bucket_upper_bound, HistSnapshot, Histogram, BUCKETS};
pub use json::escape;
pub use recorder::{Event, FlightRecorder};
pub use span::{
    export_trace_jsonl, next_span_id, span_events, spans_dump_json, trace_dump_json, trace_events,
    Span, SpanContext, SpanEvent,
};

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Scalar instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge (queue depths, circuit-breaker
/// states, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Inner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// A named-instrument registry. Cloning shares the instruments
/// (mirroring the market's other shared handles); registration takes
/// a write lock once per name, after which updates go through the
/// returned `Arc` without touching the registry at all.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(found) = map.read().get(name) {
            return Arc::clone(found);
        }
        Arc::clone(
            map.write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(T::default())),
        )
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.inner.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.inner.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.inner.histograms, name)
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`] — the single export
/// type every telemetry consumer reads (the report binary, benches,
/// crash dumps).
/// Merging is associative and commutative; gauges merge by sum (the
/// shards' queue depths add).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's snapshot, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of two snapshots — how shard-local registries aggregate.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *out.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            let merged = match out.histograms.get(k) {
                Some(mine) => mine.merge(v),
                None => v.clone(),
            };
            out.histograms.insert(k.clone(), merged);
        }
        out
    }

    /// Hand-rolled JSON (the workspace's serde_json is a build stub).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape(k), v.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }

    /// Prometheus-style text exposition (hand-rolled, stable order).
    /// Instrument names sanitize `.` and `-` to `_`; histograms render
    /// as summaries (`quantile` labels for p50/p90/p99/p999 plus
    /// `_sum`/`_count`/`_max`). This is what the TCP front door's ops
    /// plane serves to a scraper.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [
                ("0.5", h.p50()),
                ("0.9", h.p90()),
                ("0.99", h.p99()),
                ("0.999", h.p999()),
            ] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!(
                "{n}_sum {}\n{n}_count {}\n{n}_max {}\n",
                h.sum, h.count, h.max
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Global registry + runtime switch
// ---------------------------------------------------------------------------

/// The process-wide registry. Library layers with no registry to
/// thread (bigint, crypto, ecash) record here; the service keeps its
/// own per-instance [`Registry`] and merges both into one snapshot.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Runtime switch for the timing surface (spans and the [`timed!`]
/// paths). On by default; compiled permanently off under `no-op`.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns span timing on or off at runtime. A no-op under the `no-op`
/// feature (timing is compiled out there).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span timing is live (always `false` under `no-op`).
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "no-op")]
    {
        false
    }
    #[cfg(not(feature = "no-op"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Span timing
// ---------------------------------------------------------------------------

/// RAII span guard: measures the nanoseconds between construction and
/// drop on the monotonic clock and records them into a histogram.
/// Under `no-op` (or with [`set_enabled`]`(false)`) construction reads
/// no clock and drop records nothing.
#[derive(Debug)]
pub struct Timed<'a> {
    #[cfg(not(feature = "no-op"))]
    live: Option<(&'a Histogram, std::time::Instant)>,
    #[cfg(feature = "no-op")]
    _marker: std::marker::PhantomData<&'a Histogram>,
}

impl<'a> Timed<'a> {
    /// Starts a span recording into `hist` on drop.
    #[inline]
    pub fn new(hist: &'a Histogram) -> Timed<'a> {
        #[cfg(not(feature = "no-op"))]
        {
            Timed {
                live: enabled().then(|| (hist, std::time::Instant::now())),
            }
        }
        #[cfg(feature = "no-op")]
        {
            let _ = hist;
            Timed {
                _marker: std::marker::PhantomData,
            }
        }
    }
}

impl Drop for Timed<'_> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(not(feature = "no-op"))]
        if let Some((hist, start)) = self.live.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Owned sibling of [`Timed`]: keeps its histogram handle alive by
/// `Arc`, for spans whose handle is looked up on the fly (per-op
/// histograms named at runtime) rather than borrowed from a cache.
#[derive(Debug)]
pub struct TimedOwned {
    #[cfg(not(feature = "no-op"))]
    live: Option<(Arc<Histogram>, std::time::Instant)>,
    #[cfg(feature = "no-op")]
    _marker: std::marker::PhantomData<()>,
}

impl TimedOwned {
    /// Starts a span recording into `hist` on drop.
    #[inline]
    pub fn new(hist: Arc<Histogram>) -> TimedOwned {
        #[cfg(not(feature = "no-op"))]
        {
            TimedOwned {
                live: enabled().then(|| (hist, std::time::Instant::now())),
            }
        }
        #[cfg(feature = "no-op")]
        {
            let _ = hist;
            TimedOwned {
                _marker: std::marker::PhantomData,
            }
        }
    }
}

impl Drop for TimedOwned {
    #[inline]
    fn drop(&mut self) {
        #[cfg(not(feature = "no-op"))]
        if let Some((hist, start)) = self.live.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts a [`Timed`] span against a global-registry histogram,
/// resolving (and caching) the handle once per call site:
///
/// ```
/// fn hot_path() {
///     let _span = ppms_obs::timed!("ring.pow");
///     // ... work measured in nanoseconds into "ring.pow" ...
/// }
/// ```
#[macro_export]
macro_rules! timed {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::Timed::new(HANDLE.get_or_init(|| $crate::global().histogram($name)))
    }};
}

/// Bumps a global-registry counter, resolving (and caching) the
/// handle once per call site. Counters stay live under `no-op`.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1)
    };
    ($name:expr, $n:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::global().counter($name))
            .add($n)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_always_count() {
        // Live in both feature configurations by design.
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        let g = r.gauge("g");
        g.set(7);
        g.sub(9);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 5);
        assert_eq!(s.gauge("g"), -2);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn handles_share_one_instrument() {
        let r = Registry::new();
        r.counter("x").inc();
        let r2 = r.clone();
        r2.counter("x").inc();
        assert_eq!(r.snapshot().counter("x"), 2);
    }

    #[cfg(not(feature = "no-op"))]
    #[test]
    fn spans_follow_runtime_switch() {
        // One test owns the global ENABLED toggle (parallel tests
        // would race on it otherwise).
        let r = Registry::new();
        let h = r.histogram("span");
        {
            let _t = Timed::new(&h);
            std::hint::black_box(());
        }
        assert_eq!(h.snapshot().count, 1, "enabled span records");
        set_enabled(false);
        {
            let _t = Timed::new(&h);
        }
        set_enabled(true);
        assert_eq!(h.snapshot().count, 1, "dark span records nothing");
    }

    #[cfg(feature = "no-op")]
    #[test]
    fn noop_build_records_nothing_timed() {
        let r = Registry::new();
        let h = r.histogram("span");
        {
            let _t = Timed::new(&h);
        }
        h.record(42);
        assert!(!enabled());
        assert_eq!(h.snapshot().count, 0);
        // Counters still count (Table I/II correctness).
        r.counter("c").inc();
        assert_eq!(r.snapshot().counter("c"), 1);
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.gauge("g").set(-1);
        r.histogram("h").record(5);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"a\":3"));
        assert!(json.contains("\"g\":-1"));
        #[cfg(not(feature = "no-op"))]
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn merge_sums_everything() {
        let a = Registry::new();
        a.counter("c").add(2);
        a.gauge("g").set(3);
        a.histogram("h").record(10);
        let b = Registry::new();
        b.counter("c").add(5);
        b.counter("only-b").inc();
        b.gauge("g").set(4);
        b.histogram("h").record(1 << 30);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.counter("c"), 7);
        assert_eq!(m.counter("only-b"), 1);
        assert_eq!(m.gauge("g"), 7);
        #[cfg(not(feature = "no-op"))]
        {
            let h = m.histogram("h").expect("merged");
            assert_eq!(h.count, 2);
            assert_eq!(h.max, 1 << 30);
        }
    }
}
