//! The flight recorder: a bounded ring buffer of recent structured
//! events per shard. When a worker panics (or the chaos harness
//! detects divergence) the ring is dumped — together with a metrics
//! [`Snapshot`](crate::Snapshot) — to a JSON artifact, turning "chaos
//! test failed" into a readable timeline keyed by trace id.

use crate::json::escape;
use crate::Snapshot;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One recorded event. `seq` is a per-recorder monotonic sequence
/// number that survives ring eviction, so a dump shows how much
/// history was lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-recorder sequence number (never reused).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_micros: u64,
    /// Trace context of the request this event belongs to (0 = none).
    pub trace_id: u64,
    /// Static event kind, e.g. `"handle"`, `"dedup-replay"`, `"crash"`.
    pub label: &'static str,
    /// Free-form detail (request label, key, error text, ...).
    pub detail: String,
}

/// Process-wide dump counter — keeps concurrent dumps (parallel tests,
/// several shards crashing at once) from clobbering each other's files.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A bounded ring buffer of [`Event`]s. Recording is a short
/// mutex-guarded push (the ring is per-shard, so there is no
/// cross-worker contention); under the `no-op` feature it is inert.
#[derive(Debug)]
#[cfg_attr(feature = "no-op", allow(dead_code))]
pub struct FlightRecorder {
    name: String,
    capacity: usize,
    epoch: Instant,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` recent events.
    pub fn new(name: impl Into<String>, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            name: name.into(),
            capacity: capacity.max(1),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The recorder's name (used in dump file names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one event. `detail` is a closure so that call sites pay
    /// its formatting cost only when the recorder is live (under
    /// `no-op` the closure is never invoked).
    #[inline]
    pub fn record(&self, trace_id: u64, label: &'static str, detail: impl FnOnce() -> String) {
        #[cfg(not(feature = "no-op"))]
        {
            let event = Event {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                at_micros: self.epoch.elapsed().as_micros() as u64,
                trace_id,
                label,
                detail: detail(),
            };
            let mut ring = self.ring.lock();
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(event);
        }
        #[cfg(feature = "no-op")]
        let _ = (trace_id, label, detail);
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no event is held.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Point-in-time copy of the ring, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Renders the dump artifact: reason, recorder identity, the event
    /// timeline, the span ring's recent records (in-flight spans
    /// included — a crash shows what never finished), and the
    /// accompanying metrics snapshot.
    pub fn dump_json(&self, reason: &str, metrics: &Snapshot) -> String {
        let events: Vec<String> = self
            .snapshot()
            .iter()
            .map(|e| {
                format!(
                    "    {{\"seq\":{},\"at_micros\":{},\"trace_id\":\"{:#018x}\",\
                     \"label\":\"{}\",\"detail\":\"{}\"}}",
                    e.seq,
                    e.at_micros,
                    e.trace_id,
                    escape(e.label),
                    escape(&e.detail)
                )
            })
            .collect();
        format!(
            "{{\n  \"recorder\": \"{}\",\n  \"reason\": \"{}\",\n  \"events\": [\n{}\n  ],\n  \"spans\": {},\n  \"metrics\": {}\n}}\n",
            escape(&self.name),
            escape(reason),
            events.join(",\n"),
            crate::spans_dump_json(256),
            metrics.to_json()
        )
    }

    /// Writes the dump artifact into `dir` and returns its path.
    pub fn dump_to_dir(
        &self,
        dir: &Path,
        reason: &str,
        metrics: &Snapshot,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!(
            "{}-{}-{}.json",
            self.name,
            std::process::id(),
            DUMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, self.dump_json(reason, metrics))?;
        Ok(path)
    }

    /// Writes the dump artifact into the default dump directory:
    /// `$PPMS_OBS_DIR` if set, else the workspace's `target/obs/`.
    pub fn dump(&self, reason: &str, metrics: &Snapshot) -> std::io::Result<PathBuf> {
        let dir = std::env::var("PPMS_OBS_DIR")
            .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs").into());
        self.dump_to_dir(Path::new(&dir), reason, metrics)
    }
}

#[cfg(all(test, not(feature = "no-op")))]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let r = FlightRecorder::new("t", 3);
        for i in 0..5u64 {
            r.record(i, "evt", || format!("n{i}"));
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 3);
        // Oldest two evicted; seq keeps counting.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(events[0].trace_id, 2);
        assert_eq!(events[2].detail, "n4");
    }

    #[test]
    fn dump_contains_trace_and_reason() {
        let r = FlightRecorder::new("shard0", 8);
        r.record(0xABCD, "handle", || "withdrawal-request".into());
        let json = r.dump_json("panic: boom", &Snapshot::default());
        assert!(json.contains("\"recorder\": \"shard0\""));
        assert!(json.contains("panic: boom"));
        assert!(json.contains("0x000000000000abcd"));
        assert!(json.contains("withdrawal-request"));
    }

    #[test]
    fn dump_to_dir_writes_file() {
        let dir = std::env::temp_dir().join(format!("ppms-obs-test-{}", std::process::id()));
        let r = FlightRecorder::new("shard1", 8);
        r.record(7, "evt", || "x".into());
        let path = r
            .dump_to_dir(&dir, "test", &Snapshot::default())
            .expect("dump");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"reason\": \"test\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
