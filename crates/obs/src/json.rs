//! Tiny hand-rolled JSON helpers. The workspace's `serde_json` is an
//! offline build stub that emits placeholder documents, so every
//! artifact this crate writes (snapshots, flight-recorder dumps) is
//! formatted by hand. Only what the dumps need lives here.

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::escape;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
