//! Causal spans: a [`SpanContext`] that rides the wire envelope, an
//! RAII [`Span`] guard minting child contexts, and a process-global
//! lock-free **span ring** from which one trace's full causal tree can
//! be exported as Chrome `trace_event` JSONL — no dependencies, no
//! `unsafe`.
//!
//! # Context propagation
//!
//! A root span mints `{trace_id, span_id, parent_id: 0}`; every child
//! span keeps the trace id, mints a fresh span id and records its
//! parent's span id. The context crosses process/thread boundaries as
//! three `u64`s (the wire envelope's v4 header carries them), so the
//! server side of a request parents its spans to the client's — one
//! trace id stitches retransmits, reactor phases, admission, shard
//! execution, WAL appends and fsyncs into a single tree.
//!
//! # The ring
//!
//! Completed (and in-flight) spans land in a fixed-capacity
//! multi-producer ring of seqlock-stamped slots: a writer claims a
//! ticket with one `fetch_add`, stamps the slot odd, writes the
//! fields as relaxed atomics and stamps it back even; readers discard
//! any slot whose stamp is zero, odd, or changed under them.
//! Recording is a handful of relaxed stores — no locks, no allocation
//! — and a torn read is skipped, never blocked on. (The interior
//! field loads are relaxed: a racing reader can in principle pair a
//! stale field with a matching stamp, but readers are diagnostics —
//! the worst outcome is one garbled event in a dump, never UB; the
//! crate forbids `unsafe`.)
//!
//! Two records per span: a **begin** record at construction and a
//! **complete** record (with duration) at drop. A span that never
//! completed — in flight at a crash — is therefore visible in the
//! ring as a begin without a matching complete, which is exactly what
//! the flight-recorder crash dump wants to show.
//!
//! # `no-op` and the runtime switch
//!
//! [`SpanContext`] is plain data and stays live in every
//! configuration. The [`Span`] guard compiles to a context
//! passthrough under the `no-op` feature (no clock, no ring, no
//! allocation — the alloc-counter test pins this), and obeys
//! [`crate::set_enabled`] at runtime in the live build.

#[cfg(not(feature = "no-op"))]
use crate::json::escape;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// SpanContext
// ---------------------------------------------------------------------------

/// The causal coordinates of one span — what crosses the wire.
/// `trace_id` names the whole logical operation (preserved verbatim
/// across retransmits), `span_id` names this span, `parent_id` the
/// span that caused it (0 for a root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanContext {
    /// The logical operation this span belongs to (0 = untraced).
    pub trace_id: u64,
    /// This span's own id (0 = no span).
    pub span_id: u64,
    /// The causing span's id (0 = root).
    pub parent_id: u64,
}

impl SpanContext {
    /// The absent context: untraced, no span.
    pub const NONE: SpanContext = SpanContext {
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
    };

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0 && self.span_id == 0
    }

    /// A context carrying a trace id alone (legacy v3/v2 peers: the
    /// trace propagates, span parentage starts fresh on this side).
    pub fn from_trace(trace_id: u64) -> SpanContext {
        SpanContext {
            trace_id,
            span_id: 0,
            parent_id: 0,
        }
    }
}

/// Mints a process-unique span id (never 0).
pub fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One decoded span record from the ring. A span in flight (begun,
/// not yet dropped) has `dur_ns == None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The causing span's id (0 = root).
    pub parent_id: u64,
    /// Interned span name.
    pub name: &'static str,
    /// Small per-thread id (first-use order, not the OS tid).
    pub tid: u64,
    /// Start time, microseconds since the first span of the process.
    pub ts_micros: u64,
    /// Wall duration; `None` while the span is still in flight.
    pub dur_ns: Option<u64>,
}

// ---------------------------------------------------------------------------
// Live implementation
// ---------------------------------------------------------------------------

#[cfg(not(feature = "no-op"))]
mod live {
    use super::*;
    use parking_lot::RwLock;
    use std::cell::Cell;
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Ring capacity (slots). Two records per span → the ring holds
    /// the last ~2048 spans, plenty for one request tree plus ambient
    /// traffic.
    pub(super) const RING_CAP: usize = 4096;

    /// Span names are `&'static str`s interned to small ids so ring
    /// slots stay plain `u64` atomics (no pointer smuggling — the
    /// crate forbids `unsafe`). The table is tiny (one entry per
    /// distinct call-site name) and read-mostly.
    fn name_table() -> &'static RwLock<Vec<&'static str>> {
        static NAMES: OnceLock<RwLock<Vec<&'static str>>> = OnceLock::new();
        NAMES.get_or_init(|| RwLock::new(Vec::new()))
    }

    pub(super) fn intern(name: &'static str) -> u32 {
        let table = name_table();
        if let Some(i) = table.read().iter().position(|&n| n == name) {
            return i as u32;
        }
        let mut w = table.write();
        if let Some(i) = w.iter().position(|&n| n == name) {
            return i as u32;
        }
        w.push(name);
        (w.len() - 1) as u32
    }

    pub(super) fn name_of(id: u32) -> &'static str {
        name_table().read().get(id as usize).copied().unwrap_or("?")
    }

    /// Small dense per-thread id (the OS tid is not portably a small
    /// integer; Chrome's viewer wants one).
    pub(super) fn current_tid() -> u64 {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        thread_local! {
            static TID: Cell<u64> = const { Cell::new(0) };
        }
        TID.with(|c| {
            if c.get() == 0 {
                c.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
            }
            c.get()
        })
    }

    /// Monotonic process anchor for `ts` (Chrome wants a shared
    /// microsecond clock, not per-span instants).
    pub(super) fn anchor() -> Instant {
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        *ANCHOR.get_or_init(Instant::now)
    }

    pub(super) fn now_micros() -> u64 {
        anchor().elapsed().as_micros() as u64
    }

    /// One seqlock-stamped slot. `seq == 0` = never written, odd =
    /// write in progress, even = consistent.
    #[derive(Default)]
    pub(super) struct Slot {
        seq: AtomicU64,
        trace: AtomicU64,
        span: AtomicU64,
        parent: AtomicU64,
        /// `name_id << 32 | tid << 1 | phase` (phase 1 = complete).
        meta: AtomicU64,
        ts: AtomicU64,
        dur: AtomicU64,
    }

    fn ring() -> &'static Vec<Slot> {
        static RING: OnceLock<Vec<Slot>> = OnceLock::new();
        RING.get_or_init(|| (0..RING_CAP).map(|_| Slot::default()).collect())
    }

    static HEAD: AtomicU64 = AtomicU64::new(0);

    pub(super) fn ring_record(
        ctx: SpanContext,
        name_id: u32,
        complete: bool,
        ts_micros: u64,
        dur_ns: u64,
    ) {
        let ticket = HEAD.fetch_add(1, Ordering::Relaxed);
        let slot = &ring()[(ticket as usize) % RING_CAP];
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.trace.store(ctx.trace_id, Ordering::Relaxed);
        slot.span.store(ctx.span_id, Ordering::Relaxed);
        slot.parent.store(ctx.parent_id, Ordering::Relaxed);
        let meta =
            ((name_id as u64) << 32) | ((current_tid() & 0x7FFF_FFFF) << 1) | u64::from(complete);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.ts.store(ts_micros, Ordering::Relaxed);
        slot.dur.store(dur_ns, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Decodes every consistent slot. Each span yields its most
    /// complete view: the complete record when present, else the
    /// begin record with `dur_ns = None`.
    pub(super) fn decode_ring() -> Vec<SpanEvent> {
        struct Raw {
            trace: u64,
            span: u64,
            parent: u64,
            meta: u64,
            ts: u64,
            dur: u64,
        }
        let mut raws: Vec<Raw> = Vec::with_capacity(RING_CAP);
        for slot in ring() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let raw = Raw {
                trace: slot.trace.load(Ordering::Relaxed),
                span: slot.span.load(Ordering::Relaxed),
                parent: slot.parent.load(Ordering::Relaxed),
                meta: slot.meta.load(Ordering::Relaxed),
                ts: slot.ts.load(Ordering::Relaxed),
                dur: slot.dur.load(Ordering::Relaxed),
            };
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // torn: a writer lapped us mid-read
            }
            raws.push(raw);
        }
        // Completed span ids (their begin records are subsumed).
        let completed: std::collections::HashSet<u64> = raws
            .iter()
            .filter(|r| r.meta & 1 == 1)
            .map(|r| r.span)
            .collect();
        let mut out: Vec<SpanEvent> = raws
            .iter()
            .filter(|r| r.meta & 1 == 1 || !completed.contains(&r.span))
            .map(|r| SpanEvent {
                trace_id: r.trace,
                span_id: r.span,
                parent_id: r.parent,
                name: name_of((r.meta >> 32) as u32),
                tid: (r.meta >> 1) & 0x7FFF_FFFF,
                ts_micros: r.ts,
                dur_ns: (r.meta & 1 == 1).then_some(r.dur),
            })
            .collect();
        out.sort_by_key(|e| (e.ts_micros, e.span_id));
        out
    }
}

// ---------------------------------------------------------------------------
// Span guard
// ---------------------------------------------------------------------------

/// RAII causal-span guard. Construction mints a child [`SpanContext`]
/// and writes a begin record into the ring; drop writes the complete
/// record with the measured duration. With spans disabled (the
/// `no-op` feature, or [`crate::set_enabled`]`(false)`) the guard is a
/// pure context passthrough: the trace id still propagates, nothing
/// is minted or recorded and nothing allocates.
#[derive(Debug)]
pub struct Span {
    ctx: SpanContext,
    #[cfg(not(feature = "no-op"))]
    live: Option<(u32, u64, std::time::Instant)>,
}

impl Span {
    /// Starts a root span for `trace_id` (no parent).
    pub fn root(name: &'static str, trace_id: u64) -> Span {
        Span::start(name, SpanContext::from_trace(trace_id))
    }

    /// Starts a child span of `parent` (same trace, fresh span id).
    pub fn child(name: &'static str, parent: SpanContext) -> Span {
        Span::start(name, parent)
    }

    #[cfg(not(feature = "no-op"))]
    fn start(name: &'static str, parent: SpanContext) -> Span {
        if !crate::enabled() {
            return Span {
                ctx: parent,
                live: None,
            };
        }
        let ctx = SpanContext {
            trace_id: parent.trace_id,
            span_id: next_span_id(),
            parent_id: parent.span_id,
        };
        let name_id = live::intern(name);
        let ts = live::now_micros();
        live::ring_record(ctx, name_id, false, ts, 0);
        Span {
            ctx,
            live: Some((name_id, ts, std::time::Instant::now())),
        }
    }

    #[cfg(feature = "no-op")]
    fn start(name: &'static str, parent: SpanContext) -> Span {
        let _ = name;
        Span { ctx: parent }
    }

    /// This span's context — what children and wire envelopes carry.
    pub fn ctx(&self) -> SpanContext {
        self.ctx
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        #[cfg(not(feature = "no-op"))]
        if let Some((name_id, ts, started)) = self.live.take() {
            live::ring_record(
                self.ctx,
                name_id,
                true,
                ts,
                started.elapsed().as_nanos() as u64,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// Every decodable span record currently in the ring, oldest first.
/// Empty under the `no-op` feature.
pub fn span_events() -> Vec<SpanEvent> {
    #[cfg(not(feature = "no-op"))]
    {
        live::decode_ring()
    }
    #[cfg(feature = "no-op")]
    {
        Vec::new()
    }
}

/// The ring's records for one trace, oldest first.
pub fn trace_events(trace_id: u64) -> Vec<SpanEvent> {
    let mut events = span_events();
    events.retain(|e| e.trace_id == trace_id);
    events
}

/// One Chrome `trace_event` object (no trailing newline). Completed
/// spans are `ph:"X"` complete events; in-flight spans are `ph:"B"`
/// begins. Load the concatenated lines (wrapped in `[...]` or as-is —
/// the viewer accepts both) into `chrome://tracing` / Perfetto.
#[cfg(not(feature = "no-op"))]
fn event_json(e: &SpanEvent) -> String {
    let args = format!(
        "\"args\":{{\"trace_id\":\"{:#018x}\",\"span_id\":{},\"parent_id\":{}}}",
        e.trace_id, e.span_id, e.parent_id
    );
    match e.dur_ns {
        Some(dur) => format!(
            "{{\"name\":\"{}\",\"cat\":\"ppms\",\"ph\":\"X\",\"ts\":{},\"dur\":{:.3},\"pid\":1,\"tid\":{},{}}}",
            escape(e.name),
            e.ts_micros,
            dur as f64 / 1e3,
            e.tid,
            args
        ),
        None => format!(
            "{{\"name\":\"{}\",\"cat\":\"ppms\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{},{}}}",
            escape(e.name),
            e.ts_micros,
            e.tid,
            args
        ),
    }
}

/// Exports one trace's causal tree as Chrome `trace_event` JSONL —
/// one event object per line. Empty string under `no-op`.
pub fn export_trace_jsonl(trace_id: u64) -> String {
    #[cfg(not(feature = "no-op"))]
    {
        let mut out = String::new();
        for e in trace_events(trace_id) {
            out.push_str(&event_json(&e));
            out.push('\n');
        }
        out
    }
    #[cfg(feature = "no-op")]
    {
        let _ = trace_id;
        String::new()
    }
}

/// A compact JSON array of the ring's most recent `limit` records —
/// what the flight-recorder crash dump embeds so a post-mortem shows
/// the spans (including in-flight ones) around the failure. `[]`
/// under `no-op`.
pub fn spans_dump_json(limit: usize) -> String {
    #[cfg(not(feature = "no-op"))]
    {
        let events = span_events();
        let skip = events.len().saturating_sub(limit);
        dump_cells(events.iter().skip(skip))
    }
    #[cfg(feature = "no-op")]
    {
        let _ = limit;
        "[]".to_string()
    }
}

/// Like [`spans_dump_json`] but restricted to one trace — what a
/// slow-request log entry embeds as the request's causal tree. `[]`
/// under `no-op`.
pub fn trace_dump_json(trace_id: u64) -> String {
    #[cfg(not(feature = "no-op"))]
    {
        dump_cells(trace_events(trace_id).iter())
    }
    #[cfg(feature = "no-op")]
    {
        let _ = trace_id;
        "[]".to_string()
    }
}

#[cfg(not(feature = "no-op"))]
fn dump_cells<'a>(events: impl Iterator<Item = &'a SpanEvent>) -> String {
    let cells: Vec<String> = events
        .map(|e| {
            format!(
                "{{\"name\":\"{}\",\"trace_id\":\"{:#018x}\",\"span_id\":{},\
                 \"parent_id\":{},\"tid\":{},\"ts_micros\":{},\"dur_ns\":{},\
                 \"in_flight\":{}}}",
                escape(e.name),
                e.trace_id,
                e.span_id,
                e.parent_id,
                e.tid,
                e.ts_micros,
                e.dur_ns.map_or_else(|| "null".into(), |d| d.to_string()),
                e.dur_ns.is_none()
            )
        })
        .collect();
    format!("[{}]", cells.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_helpers() {
        assert!(SpanContext::NONE.is_none());
        let c = SpanContext::from_trace(7);
        assert!(!c.is_none() || c.span_id == 0);
        assert_eq!(c.trace_id, 7);
        assert_eq!(c.parent_id, 0);
        assert_ne!(next_span_id(), 0);
        assert_ne!(next_span_id(), next_span_id());
    }

    #[cfg(not(feature = "no-op"))]
    #[test]
    fn spans_form_a_tree_in_the_ring() {
        let trace = 0xABCD_0000_0000_0001;
        let root = Span::root("test.root", trace);
        let child = Span::child("test.child", root.ctx());
        let grandchild = Span::child("test.grandchild", child.ctx());
        assert_eq!(grandchild.ctx().trace_id, trace);
        assert_eq!(grandchild.ctx().parent_id, child.ctx().span_id);
        let (root_ctx, child_ctx) = (root.ctx(), child.ctx());

        // While alive, the ring shows them in flight.
        let in_flight = trace_events(trace);
        assert!(in_flight
            .iter()
            .any(|e| e.span_id == root_ctx.span_id && e.dur_ns.is_none()));

        drop(grandchild);
        drop(child);
        drop(root);

        let events = trace_events(trace);
        assert_eq!(events.len(), 3, "{events:?}");
        let root_ev = events.iter().find(|e| e.name == "test.root").unwrap();
        let child_ev = events.iter().find(|e| e.name == "test.child").unwrap();
        let gc_ev = events.iter().find(|e| e.name == "test.grandchild").unwrap();
        assert_eq!(root_ev.parent_id, 0);
        assert_eq!(child_ev.parent_id, root_ctx.span_id);
        assert_eq!(gc_ev.parent_id, child_ctx.span_id);
        assert!(events.iter().all(|e| e.dur_ns.is_some()));

        let jsonl = export_trace_jsonl(trace);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"ph\":\"X\""));
        assert!(jsonl.contains("test.grandchild"));
    }

    #[cfg(not(feature = "no-op"))]
    #[test]
    fn in_flight_span_appears_in_dump() {
        let trace = 0xABCD_0000_0000_0002;
        let root = Span::root("test.dangling", trace);
        let _keep = &root;
        let dump = spans_dump_json(4096);
        assert!(dump.contains("test.dangling"), "{dump}");
        assert!(dump.contains("\"in_flight\":true"));
        drop(root);
    }

    #[test]
    fn disabled_spans_pass_context_through() {
        // Under no-op this is the only behavior; under the live build
        // it must hold whenever the runtime switch is off. Exercised
        // here via an explicit parent, not the global toggle (other
        // tests own that).
        let parent = SpanContext {
            trace_id: 42,
            span_id: 9,
            parent_id: 3,
        };
        #[cfg(feature = "no-op")]
        {
            let child = Span::child("x", parent);
            assert_eq!(child.ctx(), parent, "no-op passes the context through");
            let root = Span::root("y", 42);
            assert_eq!(root.ctx(), SpanContext::from_trace(42));
            assert!(span_events().is_empty());
            assert_eq!(export_trace_jsonl(42), "");
            assert_eq!(spans_dump_json(10), "[]");
        }
        #[cfg(not(feature = "no-op"))]
        {
            let child = Span::child("test.live", parent);
            assert_eq!(child.ctx().trace_id, 42);
            assert_eq!(child.ctx().parent_id, 9);
            assert_ne!(child.ctx().span_id, 0);
        }
    }
}
