//! Log₂-bucketed histograms: fixed 65 buckets covering the full `u64`
//! range, lock-free recording (one relaxed `fetch_add` per field), and
//! a mergeable point-in-time snapshot from which p50/p90/p99 and the
//! exact max are derivable.
//!
//! Bucket layout: value `0` lands in bucket 0; a value `v > 0` lands
//! in bucket `64 - v.leading_zeros()`, i.e. bucket `i ≥ 1` covers the
//! half-open power-of-two range `[2^(i-1), 2^i)`. Bucket 64 covers
//! `[2^63, u64::MAX]`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per bit width.
pub const BUCKETS: usize = 65;

/// Bucket a value falls into (see the module docs for the layout).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket — the value a quantile query
/// reports for samples that landed there.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A lock-free log₂ histogram. Recording is a handful of relaxed
/// atomic adds — cheap enough for the modular-exponentiation hot path.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample. Under the `no-op` feature this compiles to
    /// nothing: the paper-figure benches must not pay even the atomics.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(feature = "no-op"))]
        {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(feature = "no-op")]
        let _ = value;
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy. Concurrent recording makes the copy only
    /// approximately consistent (a sample may have bumped `count` but
    /// not yet its bucket); quiesced registries snapshot exactly.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]. Merging snapshots from
/// shard-local registries is associative and commutative, so a fleet
/// of workers can be summarized in any order.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (mean = sum / count).
    pub sum: u64,
    /// Largest sample seen (exact, not bucket-rounded).
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), reported as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` sample, clamped to the
    /// exact max. Empty histograms report 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket-resolution).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (bucket-resolution) — the tail the
    /// latency-under-load curves report.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Sum of two snapshots (`max` takes the larger side). The basis
    /// of cross-shard aggregation.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i] + other.buckets[i];
        }
        HistSnapshot {
            count: self.count + other.count,
            // Recording accumulates `sum` with a (wrapping) atomic
            // add, so the merge wraps identically.
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// Hand-rolled JSON (the workspace's serde_json is a build stub).
    /// Buckets are emitted sparsely as `[index, count]` pairs.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| format!("[{i},{n}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.max,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            cells.join(",")
        )
    }
}

#[cfg(all(test, not(feature = "no-op")))]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Zero is its own bucket.
        assert_eq!(bucket_index(0), 0);
        // One starts the power-of-two ladder.
        assert_eq!(bucket_index(1), 1);
        // Every power of two opens a new bucket; its predecessor
        // closes the previous one.
        for bit in 1..64 {
            let edge = 1u64 << bit;
            assert_eq!(bucket_index(edge), bit + 1, "2^{bit} opens bucket");
            assert_eq!(bucket_index(edge - 1), bit, "2^{bit}-1 closes bucket");
        }
        // The top of the range.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
    }

    #[test]
    fn extremes_record_and_report() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn quantiles_on_uniform_fill() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // p50 of 1..=1000 has rank 500 → bucket of 500 (bucket 9,
        // upper bound 511).
        assert_eq!(s.p50(), 511);
        // p99 rank 990 → bucket 10 (513..1000 live there), upper
        // bound 1023 clamped to the exact max 1000.
        assert_eq!(s.p99(), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [0, 1, 5, 1 << 20, u64::MAX] {
            a.record(v);
            both.record(v);
        }
        for v in [3, 3, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), both.snapshot());
        // Commutative.
        assert_eq!(b.snapshot().merge(&a.snapshot()), both.snapshot());
    }
}
