//! Pedersen commitments: `commit(m, r) = g^m · h^r` in a Schnorr group.
//!
//! Used by the DEC withdrawal (the bank signs a commitment to the coin
//! secret, never the secret itself) and exercised by the
//! representation ZKP. The two-base shape maps onto the ring's Shamir
//! `multi_pow`, which at protocol widths runs on the fixed-width
//! kernels — one shared squaring chain, subset table on the stack-side
//! arena, no heap traffic (DESIGN.md §12).

use crate::group::SchnorrGroup;
use ppms_bigint::BigUint;
use rand::Rng;

/// Commitment parameters: a group and two independent generators.
#[derive(Debug, Clone)]
pub struct PedersenParams {
    /// The ambient group.
    pub group: SchnorrGroup,
    /// Message generator.
    pub g: BigUint,
    /// Randomness generator (discrete log w.r.t. `g` unknown).
    pub h: BigUint,
}

/// An opened commitment: the value plus its opening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PedersenCommitment {
    /// The committed group element `g^m h^r`.
    pub value: BigUint,
    /// Committed message (kept by the committer).
    pub message: BigUint,
    /// Blinding randomness (kept by the committer).
    pub randomness: BigUint,
}

impl PedersenParams {
    /// Standard parameters over `group`: `g` is the canonical
    /// generator, `h` is hash-derived.
    pub fn new(group: SchnorrGroup) -> PedersenParams {
        let g = group.g.clone();
        let h = group.derive_generator("pedersen-h");
        PedersenParams { group, g, h }
    }

    /// Commits to `message` with fresh randomness.
    pub fn commit<R: Rng + ?Sized>(&self, rng: &mut R, message: &BigUint) -> PedersenCommitment {
        let randomness = self.group.random_exponent(rng);
        self.commit_with(message, &randomness)
    }

    /// Commits with explicit randomness (deterministic). Uses the
    /// ring's simultaneous exponentiation for the `g^m · h^r` shape.
    pub fn commit_with(&self, message: &BigUint, randomness: &BigUint) -> PedersenCommitment {
        let value = self.group.multi_exp2(&self.g, message, &self.h, randomness);
        PedersenCommitment {
            value,
            message: message.clone(),
            randomness: randomness.clone(),
        }
    }

    /// Verifies an opening against a commitment value.
    pub fn verify(&self, value: &BigUint, message: &BigUint, randomness: &BigUint) -> bool {
        &self.commit_with(message, randomness).value == value
    }

    /// Homomorphic addition: `commit(m1, r1) · commit(m2, r2)` opens to
    /// `(m1 + m2, r1 + r2)`.
    pub fn add(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.group.mul(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> PedersenParams {
        // 2q+1 = 2879 tower top from the fixture chain; any safe prime works.
        let g = SchnorrGroup::from_safe_prime(&BigUint::from(2879u64), &BigUint::from(1439u64));
        PedersenParams::new(g)
    }

    #[test]
    fn commit_verify() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(1);
        let c = p.commit(&mut rng, &BigUint::from(42u64));
        assert!(p.verify(&c.value, &c.message, &c.randomness));
    }

    #[test]
    fn wrong_opening_rejected() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(2);
        let c = p.commit(&mut rng, &BigUint::from(42u64));
        assert!(!p.verify(&c.value, &BigUint::from(43u64), &c.randomness));
        assert!(!p.verify(&c.value, &c.message, &(&c.randomness + 1u64)));
    }

    #[test]
    fn hiding_under_fresh_randomness() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(3);
        let c1 = p.commit(&mut rng, &BigUint::from(5u64));
        let c2 = p.commit(&mut rng, &BigUint::from(5u64));
        assert_ne!(c1.value, c2.value, "same message, different commitments");
    }

    #[test]
    fn homomorphic_addition() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(4);
        let c1 = p.commit(&mut rng, &BigUint::from(10u64));
        let c2 = p.commit(&mut rng, &BigUint::from(20u64));
        let sum = p.add(&c1.value, &c2.value);
        let m = (&c1.message + &c2.message) % &p.group.q;
        let r = (&c1.randomness + &c2.randomness) % &p.group.q;
        assert!(p.verify(&sum, &m, &r));
    }
}
