//! The DEC group tower (paper §III-C1).
//!
//! A coin tree of `L + 1` levels needs groups `G_1 … G_{L+1}` such that
//! *elements* of `G_i` can act as *exponents* of `G_{i+1}`. The paper
//! achieves this with group orders forming a Cunningham chain of the
//! first kind, `o_{i+1} = 2·o_i + 1`: group `G_i` has prime order
//! `o_i` and lives in `Z*_{o_{i+1}}` — its elements are integers below
//! `o_{i+1}`, hence canonical exponents for `G_{i+1}`.
//!
//! Each level carries four derived generators:
//! * `g` — canonical,
//! * `g0`, `g1` — the left/right edge generators of the coin tree,
//! * `h` — the blinding generator (Pedersen-style, coin-secret slot).

use crate::group::SchnorrGroup;
use ppms_primes::CunninghamChain;

/// One level of the tower: a Schnorr group plus the tree generators.
#[derive(Debug, Clone)]
pub struct TowerLevel {
    /// The group `G_i` (order `chain[i]`, modulus `chain[i+1]`).
    pub group: SchnorrGroup,
    /// Left-edge generator.
    pub g0: ppms_bigint::BigUint,
    /// Right-edge generator.
    pub g1: ppms_bigint::BigUint,
    /// Blinding generator.
    pub h: ppms_bigint::BigUint,
}

impl TowerLevel {
    /// Eagerly builds the fixed-base window tables for every generator
    /// registered in this level's ring (`g`, `g0`, `g1`, `h`, plus any
    /// caller-derived bases). Tables otherwise build lazily on first
    /// use; call this before fanning work out to threads so workers
    /// share prebuilt tables.
    pub fn precompute(&self) {
        self.group.ring().precompute();
    }
}

/// The full tower `G_1 … G_k` built from a `(k+1)`-link chain.
#[derive(Debug, Clone)]
pub struct GroupTower {
    levels: Vec<TowerLevel>,
}

impl GroupTower {
    /// Builds a tower of `chain.len() - 1` levels; the chain must have
    /// at least 2 links.
    ///
    /// Level `i` (0-based) has order `chain[i]` and modulus
    /// `chain[i+1]` — the chain law makes every modulus a safe prime
    /// of its level's order.
    pub fn from_chain(chain: &CunninghamChain) -> GroupTower {
        assert!(chain.len() >= 2, "tower needs a chain of at least 2 links");
        let links = chain.links();
        let mut levels = Vec::with_capacity(links.len() - 1);
        for w in links.windows(2) {
            let group = SchnorrGroup::from_safe_prime(&w[1], &w[0]);
            let g0 = group.derive_generator("tree-left");
            let g1 = group.derive_generator("tree-right");
            let h = group.derive_generator("blind-h");
            levels.push(TowerLevel { group, g0, g1, h });
        }
        GroupTower { levels }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Level `i` (0-based from the root group `G_1`).
    pub fn level(&self, i: usize) -> &TowerLevel {
        &self.levels[i]
    }

    /// All levels, root group first.
    pub fn levels(&self) -> &[TowerLevel] {
        &self.levels
    }

    /// Precomputes the fixed-base tables of every level (see
    /// [`TowerLevel::precompute`]). Clones of the tower share the
    /// per-ring table caches, so one call benefits all of them.
    pub fn precompute(&self) {
        for level in &self.levels {
            level.precompute();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppms_bigint::BigUint;
    use ppms_primes::fixture_chain;

    #[test]
    fn tower_from_fixture_chain() {
        let chain = fixture_chain(6); // 89, 179, ..., 2879
        let tower = GroupTower::from_chain(&chain);
        assert_eq!(tower.depth(), 5);
        for (i, level) in tower.levels().iter().enumerate() {
            assert_eq!(&level.group.q, &chain.links()[i]);
            assert_eq!(&level.group.p, &chain.links()[i + 1]);
            assert!(level.group.contains(&level.g0));
            assert!(level.group.contains(&level.g1));
            assert!(level.group.contains(&level.h));
        }
    }

    #[test]
    fn elements_fit_as_next_level_exponents() {
        // The whole point of the chain: |G_i| elements are < o_{i+1} =
        // |G_{i+1}|, so they embed as exponents without reduction bias.
        let chain = fixture_chain(7);
        let tower = GroupTower::from_chain(&chain);
        for i in 0..tower.depth() - 1 {
            let elem_bound = &tower.level(i).group.p; // elements are < p = o_{i+1}
            let next_order = &tower.level(i + 1).group.q;
            assert!(elem_bound <= next_order || elem_bound == &(next_order + &BigUint::zero()));
            assert_eq!(
                elem_bound,
                next_order,
                "modulus of level {i} is order of level {}",
                i + 1
            );
        }
    }

    #[test]
    fn generators_distinct_per_level() {
        let tower = GroupTower::from_chain(&fixture_chain(8));
        for level in tower.levels() {
            // With tiny toy groups collisions are possible in principle;
            // the fixture chain levels are large enough that the four
            // derived generators must differ.
            if level.group.q > BigUint::from(1000u64) {
                assert_ne!(level.g0, level.g1);
                assert_ne!(level.g0, level.h);
                assert_ne!(level.group.g, level.h);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 links")]
    fn single_link_chain_rejected() {
        GroupTower::from_chain(&fixture_chain(1));
    }
}
