//! Chaum–Pedersen proof of discrete-log equality:
//! `PoK{ x : y1 = g1^x  ∧  y2 = g2^x }` in one group.
//!
//! Ties two statements about the same secret together — e.g. that a
//! deposit serial and a spend tag were derived from the same coin
//! secret.

use crate::group::SchnorrGroup;
use crate::zkp::transcript::Transcript;
use ppms_bigint::BigUint;
use rand::Rng;

/// A discrete-log-equality proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqProof {
    /// Commitment `t1 = g1^k`.
    pub t1: BigUint,
    /// Commitment `t2 = g2^k`.
    pub t2: BigUint,
    /// Response `s = k + c·x mod q`.
    pub s: BigUint,
}

#[allow(clippy::too_many_arguments)]
fn bind(
    tr: &mut Transcript,
    group: &SchnorrGroup,
    g1: &BigUint,
    y1: &BigUint,
    g2: &BigUint,
    y2: &BigUint,
) {
    tr.append_int("p", &group.p);
    tr.append_int("q", &group.q);
    tr.append_int("g1", g1);
    tr.append_int("y1", y1);
    tr.append_int("g2", g2);
    tr.append_int("y2", y2);
}

impl EqProof {
    /// Proves `y1 = g1^x` and `y2 = g2^x` for the same `x`.
    #[allow(clippy::too_many_arguments)]
    pub fn prove<R: Rng + ?Sized>(
        rng: &mut R,
        group: &SchnorrGroup,
        g1: &BigUint,
        y1: &BigUint,
        g2: &BigUint,
        y2: &BigUint,
        x: &BigUint,
        domain: &str,
    ) -> EqProof {
        debug_assert_eq!(&group.exp(g1, x), y1);
        debug_assert_eq!(&group.exp(g2, x), y2);
        let k = group.random_exponent(rng);
        let t1 = group.exp(g1, &k);
        let t2 = group.exp(g2, &k);
        let mut tr = Transcript::new(domain);
        bind(&mut tr, group, g1, y1, g2, y2);
        tr.append_int("t1", &t1);
        tr.append_int("t2", &t2);
        let c = tr.challenge_below("c", &group.q);
        let s = (&k + &c.modmul(x, &group.q)) % &group.q;
        EqProof { t1, t2, s }
    }

    /// Verifies both verification equations under one challenge.
    #[allow(clippy::too_many_arguments)]
    pub fn verify(
        &self,
        group: &SchnorrGroup,
        g1: &BigUint,
        y1: &BigUint,
        g2: &BigUint,
        y2: &BigUint,
        domain: &str,
    ) -> bool {
        if !group.contains(&self.t1) || !group.contains(&self.t2) {
            return false;
        }
        let mut tr = Transcript::new(domain);
        bind(&mut tr, group, g1, y1, g2, y2);
        tr.append_int("t1", &self.t1);
        tr.append_int("t2", &self.t2);
        let c = tr.challenge_below("c", &group.q);
        let neg_c = c.modneg(&group.q);
        // g^s · y^(−c) == t, one Shamir multi-exponentiation per equation.
        group.multi_exp2(g1, &self.s, y1, &neg_c) == self.t1
            && group.multi_exp2(g2, &self.s, y2, &neg_c) == self.t2
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.t1.bits().div_ceil(8) + self.t2.bits().div_ceil(8) + self.s.bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SchnorrGroup, BigUint, BigUint) {
        let mut rng = StdRng::seed_from_u64(300);
        let g = SchnorrGroup::generate(&mut rng, 64);
        let g2 = g.derive_generator("second");
        (g.clone(), g.g.clone(), g2)
    }

    #[test]
    fn prove_verify() {
        let (g, g1, g2) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.random_exponent(&mut rng);
        let y1 = g.exp(&g1, &x);
        let y2 = g.exp(&g2, &x);
        let proof = EqProof::prove(&mut rng, &g, &g1, &y1, &g2, &y2, &x, "eq");
        assert!(proof.verify(&g, &g1, &y1, &g2, &y2, "eq"));
    }

    #[test]
    fn different_exponents_rejected() {
        let (g, g1, g2) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let x = g.random_exponent(&mut rng);
        let y1 = g.exp(&g1, &x);
        let y2_wrong = g.exp(&g2, &(&x + 1u64));
        // The prover cannot even construct the proof honestly; simulate
        // an attack by proving for y2 = g2^x then swapping the statement.
        let y2 = g.exp(&g2, &x);
        let proof = EqProof::prove(&mut rng, &g, &g1, &y1, &g2, &y2, &x, "eq");
        assert!(!proof.verify(&g, &g1, &y1, &g2, &y2_wrong, "eq"));
    }

    #[test]
    fn tampered_rejected() {
        let (g, g1, g2) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let x = g.random_exponent(&mut rng);
        let y1 = g.exp(&g1, &x);
        let y2 = g.exp(&g2, &x);
        let mut proof = EqProof::prove(&mut rng, &g, &g1, &y1, &g2, &y2, &x, "eq");
        proof.s = (&proof.s + 1u64) % &g.q;
        assert!(!proof.verify(&g, &g1, &y1, &g2, &y2, "eq"));
    }

    #[test]
    fn domain_binds() {
        let (g, g1, g2) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let x = g.random_exponent(&mut rng);
        let y1 = g.exp(&g1, &x);
        let y2 = g.exp(&g2, &x);
        let proof = EqProof::prove(&mut rng, &g, &g1, &y1, &g2, &y2, &x, "ctx-1");
        assert!(!proof.verify(&g, &g1, &y1, &g2, &y2, "ctx-2"));
    }
}
