//! Stadler proof of knowledge of a **double discrete logarithm**
//! (paper ref \[36\]): `PoK{ x : y = g^(h^x) }`, cut-and-choose,
//! Fiat–Shamir non-interactive.
//!
//! This is the per-level workhorse of the DEC coin tree: node keys are
//! derived as `t_child = g_edge^(t_parent)` with the parent key itself
//! an exponentiation, so validity of a path is exactly a chain of
//! double-dlog statements. The statement spans **two adjacent tower
//! levels**: `h` generates the inner group `G_i` (order `q_in`,
//! modulus `p_in`) and `g` the outer group `G_{i+1}` whose order is
//! `p_in` — the Cunningham chain adjacency.
//!
//! Each round has soundness 1/2, so `rounds` trials give soundness
//! `2^-rounds`. This linear cost in `rounds` is why PPMSdec is so much
//! heavier than PPMSpbs (paper Fig. 5, Table I).

use crate::group::SchnorrGroup;
use crate::zkp::batch::GroupClaim;
use crate::zkp::transcript::Transcript;
use ppms_bigint::{random_below, BigUint};
use rand::Rng;

/// Default cut-and-choose rounds (soundness 2^-32).
pub const DEFAULT_ROUNDS: usize = 32;

/// The double-dlog statement `y = g^(h^x)`.
#[derive(Debug, Clone)]
pub struct DdlogStatement<'a> {
    /// Outer group (contains `g` and `y`).
    pub outer: &'a SchnorrGroup,
    /// Inner group (contains `h`); its modulus must equal the outer
    /// group's order.
    pub inner: &'a SchnorrGroup,
    /// Outer base.
    pub g: &'a BigUint,
    /// Inner base.
    pub h: &'a BigUint,
    /// The statement value.
    pub y: &'a BigUint,
}

impl DdlogStatement<'_> {
    fn check_compat(&self) {
        assert_eq!(
            self.inner.p, self.outer.q,
            "inner modulus must equal outer order (tower adjacency)"
        );
    }

    /// Evaluates `base^(h^w)` in the outer group.
    fn eval(&self, base: &BigUint, w: &BigUint) -> BigUint {
        let inner_elem = self.inner.exp(self.h, w);
        self.outer.exp(base, &inner_elem)
    }

    fn bind(&self, tr: &mut Transcript) {
        tr.append_int("outer-p", &self.outer.p);
        tr.append_int("inner-p", &self.inner.p);
        tr.append_int("g", self.g);
        tr.append_int("h", self.h);
        tr.append_int("y", self.y);
    }
}

/// A non-interactive Stadler proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdlogProof {
    /// Per-round commitments `t_j = g^(h^{w_j})`.
    pub commitments: Vec<BigUint>,
    /// Per-round responses (`w_j` or `w_j - x mod q_in`).
    pub responses: Vec<BigUint>,
}

impl DdlogProof {
    /// Proves knowledge of `x` with `y = g^(h^x)` using `rounds`
    /// cut-and-choose rounds.
    pub fn prove<R: Rng + ?Sized>(
        rng: &mut R,
        stmt: &DdlogStatement<'_>,
        x: &BigUint,
        rounds: usize,
        domain: &str,
        extra: &[u8],
    ) -> DdlogProof {
        stmt.check_compat();
        assert!(rounds >= 1);
        debug_assert_eq!(&stmt.eval(stmt.g, x), stmt.y, "witness mismatch");
        let q_in = &stmt.inner.q;
        let ws: Vec<BigUint> = (0..rounds).map(|_| random_below(rng, q_in)).collect();
        let commitments: Vec<BigUint> = ws.iter().map(|w| stmt.eval(stmt.g, w)).collect();

        let mut tr = Transcript::new(domain);
        stmt.bind(&mut tr);
        tr.append("extra", extra);
        for t in &commitments {
            tr.append_int("t", t);
        }
        let bits = tr.challenge_bits("bits", rounds);

        let responses = ws
            .iter()
            .zip(&bits)
            .map(|(w, &bit)| if bit { w.modsub(x, q_in) } else { w.clone() })
            .collect();
        DdlogProof {
            commitments,
            responses,
        }
    }

    /// Verifies the proof (recomputing the challenge bits).
    pub fn verify(
        &self,
        stmt: &DdlogStatement<'_>,
        rounds: usize,
        domain: &str,
        extra: &[u8],
    ) -> bool {
        stmt.check_compat();
        if self.commitments.len() != rounds || self.responses.len() != rounds {
            return false;
        }
        if !stmt.outer.contains(stmt.y) {
            return false;
        }
        let mut tr = Transcript::new(domain);
        stmt.bind(&mut tr);
        tr.append("extra", extra);
        for t in &self.commitments {
            tr.append_int("t", t);
        }
        let bits = tr.challenge_bits("bits", rounds);

        self.commitments
            .iter()
            .zip(&self.responses)
            .zip(&bits)
            .all(|((t, s), &bit)| {
                let base = if bit { stmt.y } else { stmt.g };
                t == &stmt.eval(base, s)
            })
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.commitments
            .iter()
            .map(|t| t.bits().div_ceil(8))
            .sum::<usize>()
            + self
                .responses
                .iter()
                .map(|s| s.bits().div_ceil(8))
                .sum::<usize>()
    }

    /// Expresses every cut-and-choose round as a [`GroupClaim`] in the
    /// *outer* group for batch combination.
    ///
    /// The inner exponentiation `h^{s_j}` must still be computed per
    /// round (it *is* the exponent of the outer equation), but it is a
    /// half-width operation; what batching removes is the full-width
    /// outer exponentiation per round — those all fold into the shared
    /// combined multi-exponentiation, where the `rounds`-per-spend
    /// base-`g` terms collapse into a single term across the batch.
    ///
    /// `None` means a screen failed (proof shape, `y` membership — both
    /// also sequential rejections — or a base outside the subgroup);
    /// the caller must decide the item with [`DdlogProof::verify`].
    pub fn batch_claims(
        &self,
        stmt: &DdlogStatement<'_>,
        rounds: usize,
        domain: &str,
        extra: &[u8],
    ) -> Option<Vec<GroupClaim>> {
        stmt.check_compat();
        if self.commitments.len() != rounds || self.responses.len() != rounds {
            return None;
        }
        if !stmt.outer.contains(stmt.y) || !stmt.outer.contains(stmt.g) {
            return None;
        }
        // Non-member commitments would fail the sequential equation
        // (its right side is always a subgroup element), but inside a
        // combined check they could bias the accept probability — so
        // they take the sequential path.
        if self.commitments.iter().any(|t| !stmt.outer.contains(t)) {
            return None;
        }
        let mut tr = Transcript::new(domain);
        stmt.bind(&mut tr);
        tr.append("extra", extra);
        for t in &self.commitments {
            tr.append_int("t", t);
        }
        let bits = tr.challenge_bits("bits", rounds);
        Some(
            self.commitments
                .iter()
                .zip(&self.responses)
                .zip(&bits)
                .map(|((t, s), &bit)| {
                    let base = if bit { stmt.y } else { stmt.g };
                    // The outer exponent h^{s_j} is an element of the
                    // inner group, hence already < q_outer.
                    let w = stmt.inner.exp(stmt.h, s);
                    GroupClaim {
                        lhs: vec![(base.clone(), w)],
                        rhs: vec![(t.clone(), BigUint::one())],
                    }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tower::GroupTower;
    use ppms_primes::fixture_chain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two adjacent levels from the fixture tower.
    fn setup() -> (GroupTower, usize) {
        (GroupTower::from_chain(&fixture_chain(8)), 2)
    }

    #[test]
    fn prove_verify() {
        let (tower, i) = setup();
        let inner = &tower.level(i).group;
        let outer = &tower.level(i + 1).group;
        let mut rng = StdRng::seed_from_u64(1);
        let x = inner.random_exponent(&mut rng);
        let h = inner.g.clone();
        let g = outer.g.clone();
        let y = outer.exp(&g, &inner.exp(&h, &x));
        let stmt = DdlogStatement {
            outer,
            inner,
            g: &g,
            h: &h,
            y: &y,
        };
        let proof = DdlogProof::prove(&mut rng, &stmt, &x, 24, "ddlog", b"");
        assert!(proof.verify(&stmt, 24, "ddlog", b""));
    }

    #[test]
    fn wrong_witness_statement_rejected() {
        let (tower, i) = setup();
        let inner = &tower.level(i).group;
        let outer = &tower.level(i + 1).group;
        let mut rng = StdRng::seed_from_u64(2);
        let x = inner.random_exponent(&mut rng);
        let h = inner.g.clone();
        let g = outer.g.clone();
        let y = outer.exp(&g, &inner.exp(&h, &x));
        let y_wrong = outer.exp(&g, &inner.exp(&h, &(&x + 1u64)));
        let stmt = DdlogStatement {
            outer,
            inner,
            g: &g,
            h: &h,
            y: &y,
        };
        let proof = DdlogProof::prove(&mut rng, &stmt, &x, 24, "ddlog", b"");
        let stmt_wrong = DdlogStatement {
            outer,
            inner,
            g: &g,
            h: &h,
            y: &y_wrong,
        };
        assert!(!proof.verify(&stmt_wrong, 24, "ddlog", b""));
    }

    #[test]
    fn tampered_response_rejected() {
        let (tower, i) = setup();
        let inner = &tower.level(i).group;
        let outer = &tower.level(i + 1).group;
        let mut rng = StdRng::seed_from_u64(3);
        let x = inner.random_exponent(&mut rng);
        let h = inner.g.clone();
        let g = outer.g.clone();
        let y = outer.exp(&g, &inner.exp(&h, &x));
        let stmt = DdlogStatement {
            outer,
            inner,
            g: &g,
            h: &h,
            y: &y,
        };
        let mut proof = DdlogProof::prove(&mut rng, &stmt, &x, 24, "ddlog", b"");
        proof.responses[5] = (&proof.responses[5] + 1u64) % &inner.q;
        assert!(!proof.verify(&stmt, 24, "ddlog", b""));
    }

    #[test]
    fn truncated_proof_rejected() {
        let (tower, i) = setup();
        let inner = &tower.level(i).group;
        let outer = &tower.level(i + 1).group;
        let mut rng = StdRng::seed_from_u64(4);
        let x = inner.random_exponent(&mut rng);
        let h = inner.g.clone();
        let g = outer.g.clone();
        let y = outer.exp(&g, &inner.exp(&h, &x));
        let stmt = DdlogStatement {
            outer,
            inner,
            g: &g,
            h: &h,
            y: &y,
        };
        let mut proof = DdlogProof::prove(&mut rng, &stmt, &x, 24, "ddlog", b"");
        proof.commitments.pop();
        proof.responses.pop();
        assert!(!proof.verify(&stmt, 24, "ddlog", b""));
    }

    #[test]
    fn extra_binds() {
        let (tower, i) = setup();
        let inner = &tower.level(i).group;
        let outer = &tower.level(i + 1).group;
        let mut rng = StdRng::seed_from_u64(5);
        let x = inner.random_exponent(&mut rng);
        let h = inner.g.clone();
        let g = outer.g.clone();
        let y = outer.exp(&g, &inner.exp(&h, &x));
        let stmt = DdlogStatement {
            outer,
            inner,
            g: &g,
            h: &h,
            y: &y,
        };
        let proof = DdlogProof::prove(&mut rng, &stmt, &x, 16, "ddlog", b"ctx-A");
        assert!(proof.verify(&stmt, 16, "ddlog", b"ctx-A"));
        assert!(!proof.verify(&stmt, 16, "ddlog", b"ctx-B"));
    }

    #[test]
    #[should_panic(expected = "tower adjacency")]
    fn incompatible_groups_panic() {
        let (tower, _) = setup();
        // Levels 0 and 2 are NOT adjacent.
        let inner = &tower.level(0).group;
        let outer = &tower.level(2).group;
        let g = outer.g.clone();
        let h = inner.g.clone();
        let y = outer.g.clone();
        let stmt = DdlogStatement {
            outer,
            inner,
            g: &g,
            h: &h,
            y: &y,
        };
        let mut rng = StdRng::seed_from_u64(6);
        DdlogProof::prove(&mut rng, &stmt, &BigUint::one(), 4, "d", b"");
    }
}
