//! Fiat–Shamir transcripts: an order-sensitive, label-separated hash
//! chain from which challenges are squeezed.

use crate::hash::{hash_parts, mgf1};
use ppms_bigint::BigUint;

/// A running Fiat–Shamir transcript.
///
/// `append` absorbs labeled data; `challenge_*` squeezes verifier
/// challenges. Squeezing also feeds the squeeze label back into the
/// state, so successive challenges are independent.
#[derive(Debug, Clone)]
pub struct Transcript {
    state: [u8; 32],
}

impl Transcript {
    /// Starts a transcript under a protocol domain label.
    pub fn new(domain: &str) -> Transcript {
        Transcript {
            state: hash_parts("ppms-transcript-init", &[domain.as_bytes()]),
        }
    }

    /// Absorbs labeled bytes.
    pub fn append(&mut self, label: &str, data: &[u8]) {
        self.state = hash_parts(
            "ppms-transcript-step",
            &[&self.state, label.as_bytes(), data],
        );
    }

    /// Absorbs a labeled big integer.
    pub fn append_int(&mut self, label: &str, v: &BigUint) {
        self.append(label, &v.to_bytes_be());
    }

    /// Squeezes a challenge uniform in `[0, bound)`.
    pub fn challenge_below(&mut self, label: &str, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        self.append("challenge", label.as_bytes());
        let nbytes = (bound.bits() + 64).div_ceil(8);
        let wide = BigUint::from_bytes_be(&mgf1(&self.state, nbytes));
        &wide % bound
    }

    /// Squeezes `n` challenge bits (for cut-and-choose proofs).
    pub fn challenge_bits(&mut self, label: &str, n: usize) -> Vec<bool> {
        self.append("challenge-bits", label.as_bytes());
        let bytes = mgf1(&self.state, n.div_ceil(8));
        (0..n).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut t1 = Transcript::new("d");
        let mut t2 = Transcript::new("d");
        t1.append("a", b"x");
        t2.append("a", b"x");
        let b = BigUint::from(1u128 << 80);
        assert_eq!(t1.challenge_below("c", &b), t2.challenge_below("c", &b));
    }

    #[test]
    fn order_sensitive() {
        let mut t1 = Transcript::new("d");
        let mut t2 = Transcript::new("d");
        t1.append("a", b"x");
        t1.append("b", b"y");
        t2.append("b", b"y");
        t2.append("a", b"x");
        let b = BigUint::from(u64::MAX);
        assert_ne!(t1.challenge_below("c", &b), t2.challenge_below("c", &b));
    }

    #[test]
    fn domain_separated() {
        let mut t1 = Transcript::new("d1");
        let mut t2 = Transcript::new("d2");
        let b = BigUint::from(u64::MAX);
        assert_ne!(t1.challenge_below("c", &b), t2.challenge_below("c", &b));
    }

    #[test]
    fn successive_challenges_differ() {
        let mut t = Transcript::new("d");
        let b = BigUint::from(u64::MAX);
        let c1 = t.challenge_below("c", &b);
        let c2 = t.challenge_below("c", &b);
        assert_ne!(c1, c2);
    }

    #[test]
    fn challenge_in_range_and_bits_len() {
        let mut t = Transcript::new("d");
        let bound = BigUint::from(97u64);
        for _ in 0..50 {
            assert!(t.challenge_below("c", &bound) < bound);
        }
        assert_eq!(t.challenge_bits("bits", 40).len(), 40);
        assert_eq!(t.challenge_bits("bits", 1).len(), 1);
    }

    #[test]
    fn bits_not_constant() {
        let mut t = Transcript::new("d");
        let bits = t.challenge_bits("b", 128);
        assert!(bits.iter().any(|&b| b));
        assert!(bits.iter().any(|&b| !b));
    }
}
