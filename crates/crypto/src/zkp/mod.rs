//! Non-interactive zero-knowledge proofs (Fiat–Shamir heuristic,
//! paper ref \[39\]).
//!
//! The paper's §VI-C lists exactly the proof types implemented here:
//!
//! * [`schnorr`] — knowledge of a discrete logarithm (ref \[34\]),
//! * [`repr`] — knowledge of a representation to several bases
//!   (ref \[35\], Okamoto-style),
//! * [`ddlog`] — knowledge of a **double discrete logarithm**
//!   (ref \[36\], Stadler cut-and-choose) — the per-level proof of the
//!   DEC coin tree,
//! * [`orproof`] — "at least one out of" discrete logs
//!   (refs \[37\]\[38\], CDS OR-composition) — the tree-edge bit proof,
//! * [`eq`] — equality of discrete logs (Chaum–Pedersen), used to tie
//!   statements together.
//!
//! All proofs are made non-interactive with the [`transcript`]
//! machinery; verification recomputes the challenge from the full
//! statement, so proofs do not transfer between statements.

pub mod batch;
pub mod ddlog;
pub mod eq;
pub mod orproof;
pub mod repr;
pub mod schnorr;
pub mod transcript;

pub use batch::{bisect_verify, BatchAccumulator, GroupClaim};
pub use ddlog::{DdlogProof, DdlogStatement};
pub use eq::EqProof;
pub use orproof::OrProof;
pub use repr::ReprProof;
pub use schnorr::SchnorrProof;
pub use transcript::Transcript;
